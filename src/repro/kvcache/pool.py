"""Server-wide paged KV block pool: refcounting, copy-on-write, prefix cache.

Production engines (vLLM, aphrodite-engine) treat GPU KV memory as one
fixed pool of fixed-size blocks shared by every in-flight sequence, not as
per-request private caches. This module brings that discipline to the
functional server:

- :class:`PagedKVPool` owns ``n_blocks`` blocks of ``block_size`` tokens
  each; every allocation and free goes through it, so aggregate occupancy
  is observable and bounded by construction.
- Blocks are **refcounted**: a sequence's :class:`BlockTable` and the
  prefix cache can hold the same physical block. Writes to a shared block
  go through :meth:`PagedKVPool.write_block`, which forks a private copy
  first (**copy-on-write**), so readers never observe the writer's data.
- **Prefix caching**: full blocks of a prompt are published under a
  chained hash of the token ids they cover. A later request whose prompt
  shares that prefix re-references the resident blocks instead of
  allocating (and recomputing) them — the classic shared-system-prompt
  saving. Entries are evicted LRU when the pool runs dry, but only while
  no sequence still references them.
- The free list is a **stack** (LIFO): the ids an allocation returns are a
  pure function of the alloc/free history, which makes pool behaviour
  reproducible run-to-run — a property the trace tests pin.

The pool tracks *capacity and sharing*; the dense per-session
:class:`~repro.kvcache.cache.ModelKVCache` remains the compute-side view.
Block payloads (one ``(keys, values)`` pair per layer) are attached where
sharing needs real data: prefix-cache entries and CoW forks.

This module also hosts the seed-era tier/slot substrate the elastic
loader builds on (consolidated here from the former ``kvcache.tiered``
and ``kvcache.slots`` modules): :class:`TieredKVStore` /
:class:`TransferLedger` model CPU/GPU residency with an explicit PCIe
transfer ledger, and :class:`GpuSlotBuffer` models the fixed-budget
on-GPU staging buffer elastic loading updates in place (Sec. 5.4's
``Tensor.copy_()``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.memory import MemoryTier

# Payload: one (keys, values) array pair per transformer layer, each shaped
# (batch, kv_heads, block_tokens, head_dim) — a slice of a ModelKVCache.
BlockPayload = list[tuple[np.ndarray, np.ndarray]]


class PoolExhausted(RuntimeError):
    """No free block available (after evicting unreferenced cached blocks)."""


class PoolAuditError(AssertionError):
    """Internal pool bookkeeping disagrees with itself (see audit())."""


@dataclass
class PoolStats:
    """Counters the serving layer and the trace tests read.

    ``prefill_blocks_allocated`` counts only blocks allocated to cover
    prompt KV (the prefix cache's savings target); ``prefix_blocks_reused``
    counts prompt blocks satisfied by a cache hit instead.
    """

    allocated: int = 0
    freed: int = 0
    cow_forks: int = 0
    prefill_blocks_allocated: int = 0
    prefix_blocks_reused: int = 0
    prefix_queries: int = 0
    prefix_hits: int = 0
    prefix_evictions: int = 0
    # Speculative-decode reservations. Promoted blocks are *also* counted
    # in ``allocated`` (they stand in for the allocations a never-drafted
    # run would have made), so allocated/freed match the non-speculative
    # reference; the spec_* counters are pure observability on top.
    spec_reserved: int = 0
    spec_promoted: int = 0
    spec_released: int = 0
    # Live-migration chain traffic (export_chain / import_chain).
    chain_exports: int = 0
    chain_blocks_exported: int = 0
    chain_blocks_imported: int = 0

    @property
    def prefix_hit_rate(self) -> float:
        if self.prefix_queries == 0:
            return 0.0
        return self.prefix_hits / self.prefix_queries


@dataclass
class BlockTable:
    """One sequence's logical-to-physical block mapping."""

    block_ids: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.block_ids)

    def __iter__(self):
        return iter(self.block_ids)


@dataclass
class BlockChainExport:
    """Portable snapshot of one sequence's full-block chain.

    Produced by :meth:`PagedKVPool.export_chain`, consumed by
    :meth:`PagedKVPool.import_chain` on another replica's pool. Payloads
    are deep copies, so the export stays valid after the source frees the
    blocks; everything here pickles, so the chain can ride a worker pipe.

    ``token_ids`` covers the whole prefix up to the last exported block
    (prefix keys hash the *entire* covered prefix); ``start_block`` is
    the logical index of ``payloads[0]`` within that prefix.
    """

    block_size: int
    token_ids: np.ndarray
    start_block: int
    payloads: list[BlockPayload]

    @property
    def n_blocks(self) -> int:
        return len(self.payloads)


def hash_token_prefix(token_ids: np.ndarray, n_tokens: int) -> bytes:
    """Stable content digest of ``token_ids[:n_tokens]``.

    Prefix-cache keys must depend on the *entire* prefix up to the block's
    end (a block's KV values are a function of every token before it), so
    the key hashes the full covered prefix, not just the block's own ids.
    A 16-byte blake2b digest makes accidental aliasing (which would splice
    wrong KV values into a request) cryptographically unlikely, and is
    stable across processes (unlike ``hash()`` under PYTHONHASHSEED).
    """
    chunk = np.ascontiguousarray(np.asarray(token_ids[:n_tokens], dtype=np.int64))
    digest = hashlib.blake2b(chunk.tobytes(), digest_size=16)
    digest.update(n_tokens.to_bytes(8, "little"))
    return digest.digest()


@dataclass
class _Block:
    block_id: int
    ref_count: int = 0
    payload: BlockPayload | None = None
    prefix_key: bytes | None = None  # set while published in the prefix cache


class PagedKVPool:
    """Fixed-capacity block pool with refcounts, CoW and a prefix cache."""

    def __init__(self, n_blocks: int, block_size: int = 16):
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self._blocks = [_Block(block_id=i) for i in range(n_blocks)]
        # LIFO free stack, seeded so that block 0 is allocated first.
        self._free: list[int] = list(range(n_blocks - 1, -1, -1))
        # prefix key -> block id, in insertion order (dict preserves it);
        # re-publication moves a key to the back, giving LRU eviction.
        self._prefix_index: dict[bytes, int] = {}
        # Block ids taken by reserve_spec and not yet promoted/released.
        # A draft-verify step must zero this before the wave ends; audit()
        # treats anything left here between waves as an orphaned leak.
        self._spec_outstanding: set[int] = set()
        self.stats = PoolStats()

    # ---- capacity --------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return len(self._blocks)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_used(self) -> int:
        return self.capacity - self.n_free

    def blocks_for_tokens(self, n_tokens: int) -> int:
        """Blocks needed to hold ``n_tokens`` tokens."""
        return -(-max(n_tokens, 0) // self.block_size)

    def n_evictable(self) -> int:
        """Cached blocks held only by the prefix cache (freeable on demand)."""
        return sum(
            1
            for block_id in self._prefix_index.values()
            if self._blocks[block_id].ref_count == 1
        )

    def can_allocate(self, n: int) -> bool:
        """Whether ``n`` blocks could be produced (free + evictable)."""
        return self.n_free + self.n_evictable() >= n

    def ref_count(self, block_id: int) -> int:
        return self._blocks[block_id].ref_count

    # ---- allocate / retain / release -------------------------------------------

    def allocate(self) -> int:
        """Pop one free block (refcount 1), evicting cached blocks if needed."""
        if not self._free and not self._evict_one_unreferenced():
            raise PoolExhausted(
                f"pool exhausted: {self.capacity} blocks all referenced"
            )
        block_id = self._free.pop()
        block = self._blocks[block_id]
        assert block.ref_count == 0
        block.ref_count = 1
        block.payload = None
        block.prefix_key = None
        self.stats.allocated += 1
        return block_id

    def retain(self, block_id: int) -> None:
        """Add one reference to an allocated block."""
        block = self._blocks[block_id]
        if block.ref_count < 1:
            raise ValueError(f"retain of free block {block_id}")
        block.ref_count += 1

    def release(self, block_id: int) -> bool:
        """Drop one reference; returns True when the block was freed."""
        block = self._blocks[block_id]
        if block.ref_count < 1:
            raise ValueError(f"release of free block {block_id}")
        block.ref_count -= 1
        if block.ref_count == 0:
            if block.prefix_key is not None:
                # Last holder was the prefix cache itself (unpublish path).
                self._prefix_index.pop(block.prefix_key, None)
                block.prefix_key = None
            block.payload = None
            self._free.append(block_id)
            self.stats.freed += 1
            return True
        return False

    def free_table(self, table: BlockTable) -> None:
        """Release every block a sequence holds and clear its table."""
        for block_id in table.block_ids:
            self.release(block_id)
        table.block_ids.clear()

    # ---- speculative reservations ----------------------------------------------

    def reserve_spec(self, n: int) -> list[int]:
        """Take up to ``n`` blocks off the free stack for a draft-verify step.

        Speculation is strictly opportunistic: this never evicts prefix-cache
        blocks, never preempts anyone and never raises — it returns however
        many blocks the free stack could supply (possibly zero) and the
        caller trims its draft length to match. Reserved blocks are held at
        refcount 1 outside any table until :meth:`promote_spec` moves them
        into a sequence (accepted tokens) or :meth:`release_spec` puts them
        back. Neither ``stats.allocated`` nor ``stats.freed`` move here, so
        a fully rejected speculation leaves the pool counters exactly as a
        never-drafted run would.
        """
        if n < 0:
            raise ValueError(f"reserve count must be non-negative, got {n}")
        taken: list[int] = []
        while len(taken) < n and self._free:
            block_id = self._free.pop()
            block = self._blocks[block_id]
            assert block.ref_count == 0
            block.ref_count = 1
            block.payload = None
            block.prefix_key = None
            taken.append(block_id)
            self._spec_outstanding.add(block_id)
            self.stats.spec_reserved += 1
        return taken

    def promote_spec(self, table: BlockTable, block_ids: list[int]) -> None:
        """Move reserved blocks into a sequence's table (accepted tokens).

        Each promotion counts as an ordinary allocation: it is the block the
        non-speculative run would have allocated for the same token growth,
        so final :class:`PoolStats` match the never-drafted reference.
        """
        for block_id in block_ids:
            block = self._blocks[block_id]
            if block.ref_count != 1:
                raise ValueError(
                    f"block {block_id} is not a live spec reservation "
                    f"(ref_count={block.ref_count})"
                )
            self._spec_outstanding.discard(block_id)
            table.block_ids.append(block_id)
            self.stats.allocated += 1
            self.stats.spec_promoted += 1

    def release_spec(self, block_ids: list[int]) -> None:
        """Return unused reservations, restoring the exact free-stack order.

        Blocks are pushed back in reverse reservation order, so the stack —
        and therefore every future allocation's block id — is bit-identical
        to the state before :meth:`reserve_spec` (minus any promoted
        blocks, which the reference run would have consumed too).
        """
        for block_id in reversed(block_ids):
            block = self._blocks[block_id]
            if block.ref_count != 1:
                raise ValueError(
                    f"block {block_id} is not a live spec reservation "
                    f"(ref_count={block.ref_count})"
                )
            self._spec_outstanding.discard(block_id)
            block.ref_count = 0
            self._free.append(block_id)
            self.stats.spec_released += 1

    # ---- payload access & copy-on-write ----------------------------------------

    def read_block(self, block_id: int) -> BlockPayload | None:
        block = self._blocks[block_id]
        if block.ref_count < 1:
            raise ValueError(f"read of free block {block_id}")
        return block.payload

    def gather_chain(self, block_ids: list[int]) -> BlockPayload | None:
        """Batch-gather a resident block chain into one payload per layer.

        Concatenates the chain's per-layer (keys, values) pairs along the
        token axis, so a prefix-cache hit loads with **one** cache append
        per layer instead of one per (block, layer) — the values written
        are exactly the per-block payloads, in chain order. Returns None
        for an empty chain; raises if any block has no payload attached.
        """
        if not block_ids:
            return None
        payloads = []
        for block_id in block_ids:
            payload = self.read_block(block_id)
            if payload is None:
                raise ValueError(
                    f"block {block_id} has no payload; only written blocks "
                    "(prefix cache, CoW forks) can be gathered"
                )
            payloads.append(payload)
        return [
            (
                np.concatenate([p[layer][0] for p in payloads], axis=2),
                np.concatenate([p[layer][1] for p in payloads], axis=2),
            )
            for layer in range(len(payloads[0]))
        ]

    def write_block(
        self, table: BlockTable, logical_index: int, payload: BlockPayload
    ) -> int:
        """Write a payload through a table slot, forking shared blocks (CoW).

        If the physical block is referenced by anyone else (another table,
        the prefix cache), a fresh block is allocated, the table is
        repointed at it, and the old block loses one reference — readers of
        the shared block keep seeing the original payload. Returns the
        physical block id written.
        """
        block_id = table.block_ids[logical_index]
        block = self._blocks[block_id]
        if block.ref_count > 1:
            fresh = self.allocate()
            self.stats.cow_forks += 1
            table.block_ids[logical_index] = fresh
            block.ref_count -= 1
            block_id = fresh
            block = self._blocks[fresh]
        block.payload = [(k.copy(), v.copy()) for k, v in payload]
        return block_id

    def fork_table(self, table: BlockTable) -> BlockTable:
        """Share every block with a new table (beam-search-style fork)."""
        for block_id in table.block_ids:
            self.retain(block_id)
        return BlockTable(block_ids=list(table.block_ids))

    # ---- prefix cache ----------------------------------------------------------

    def publish_prefix(
        self,
        token_ids: np.ndarray,
        table: BlockTable,
        n_full_blocks: int,
        start_block: int = 0,
    ) -> int:
        """Publish a sequence's first ``n_full_blocks`` blocks for reuse.

        Each published block gains one reference held by the cache and is
        indexed by the chained hash of the token prefix it completes.
        Blocks whose key is already cached are skipped. The block payloads
        must have been attached (via :meth:`write_block`) by the caller.
        Returns the number of newly published blocks.

        ``start_block`` skips blocks below that logical index entirely —
        chunked prefill publishes incrementally as chunks complete, and a
        session resuming after preemption must not re-publish its earlier
        blocks (its fresh table slots there carry no payload).
        """
        published = 0
        for i in range(start_block, min(n_full_blocks, len(table.block_ids))):
            key = hash_token_prefix(token_ids, (i + 1) * self.block_size)
            if key in self._prefix_index:
                # Refresh LRU position.
                self._prefix_index[key] = self._prefix_index.pop(key)
                continue
            block_id = table.block_ids[i]
            block = self._blocks[block_id]
            if block.payload is None:
                raise ValueError(
                    f"block {block_id} has no payload; write_block before "
                    "publishing"
                )
            self.retain(block_id)
            block.prefix_key = key
            self._prefix_index[key] = block_id
            published += 1
        return published

    def match_prefix(self, token_ids: np.ndarray, max_tokens: int) -> list[int]:
        """Longest chain of cached blocks covering a prefix of ``token_ids``.

        Only full blocks ending at or before ``max_tokens`` are considered
        (the caller caps this below the prefill length so at least one
        prompt token is always computed). Returns the physical block ids of
        the chain, longest match first broken at the first miss.
        """
        self.stats.prefix_queries += 1
        chain: list[int] = []
        token_ids = np.asarray(token_ids)
        n_candidates = min(token_ids.size, max_tokens) // self.block_size
        for i in range(n_candidates):
            key = hash_token_prefix(token_ids, (i + 1) * self.block_size)
            block_id = self._prefix_index.get(key)
            if block_id is None:
                break
            # Refresh LRU position on hit.
            self._prefix_index[key] = self._prefix_index.pop(key)
            chain.append(block_id)
        if chain:
            self.stats.prefix_hits += 1
        return chain

    def longest_prefix_match(
        self, token_ids: np.ndarray, max_tokens: int | None = None
    ) -> int:
        """Tokens of ``token_ids`` covered by the cached block chain.

        A read-only probe for routing decisions (the cluster frontend asks
        every replica before placing a request): unlike
        :meth:`match_prefix` it counts no query, scores no hit and does
        not refresh LRU positions, so probing N replicas leaves all N
        prefix caches in exactly the state a solo submission would see.
        """
        token_ids = np.asarray(token_ids)
        cap = token_ids.size if max_tokens is None else max_tokens
        matched = 0
        for i in range(min(token_ids.size, cap) // self.block_size):
            key = hash_token_prefix(token_ids, (i + 1) * self.block_size)
            if key not in self._prefix_index:
                break
            matched += self.block_size
        return matched

    def acquire_prefix(self, block_ids: list[int], table: BlockTable) -> None:
        """Attach matched prefix blocks to a sequence's table (refcounted)."""
        for block_id in block_ids:
            self.retain(block_id)
            table.block_ids.append(block_id)
        self.stats.prefix_blocks_reused += len(block_ids)

    # ---- live migration: block-chain export / import ----------------------------

    def export_chain(
        self,
        token_ids: np.ndarray,
        table: BlockTable,
        n_full_blocks: int,
        start_block: int = 0,
    ) -> "BlockChainExport":
        """Snapshot a sequence's published-eligible block chain for migration.

        Deep-copies the payloads of the table's blocks in
        ``[start_block, n_full_blocks)`` together with the token prefix
        that keys them, producing a picklable :class:`BlockChainExport` a
        destination pool can :meth:`import_chain`. The walk stops at the
        first block without an attached payload (only written blocks —
        prefix-cache entries and CoW forks — carry transferable data).

        Read-only on this pool: refcounts, the free stack and the prefix
        index are untouched; the caller frees the source table separately
        (via the ordinary preempt/abort paths) once the move commits.
        """
        payloads: list[BlockPayload] = []
        end = min(n_full_blocks, len(table.block_ids))
        for i in range(start_block, end):
            payload = self.read_block(table.block_ids[i])
            if payload is None:
                break
            payloads.append([(k.copy(), v.copy()) for k, v in payload])
        n_tokens = (start_block + len(payloads)) * self.block_size
        export = BlockChainExport(
            block_size=self.block_size,
            token_ids=np.ascontiguousarray(
                np.asarray(token_ids[:n_tokens], dtype=np.int64)
            ),
            start_block=start_block,
            payloads=payloads,
        )
        self.stats.chain_exports += 1
        self.stats.chain_blocks_exported += len(payloads)
        return export

    def import_chain(self, export: "BlockChainExport") -> int:
        """Re-publish an exported block chain into this pool's prefix cache.

        Each exported block is keyed exactly as :meth:`publish_prefix`
        would key it (chained hash of the full covered prefix), so a chain
        that migrates with a session warms the destination's prefix cache
        for every later request sharing the prefix. Blocks whose key is
        already cached are deduplicated (LRU position refreshed, no new
        allocation). Import is opportunistic like any cache warm: it stops
        quietly when the pool cannot produce another block, and returns
        the number of blocks newly published.

        Imported blocks are held by the prefix cache alone (refcount 1),
        indistinguishable from locally published entries: evictable under
        pressure, acquirable by later sequences, visible to audit().
        """
        if export.block_size != self.block_size:
            raise ValueError(
                f"chain block_size {export.block_size} != pool block_size "
                f"{self.block_size}"
            )
        imported = 0
        for i, payload in enumerate(export.payloads):
            logical = export.start_block + i
            key = hash_token_prefix(
                export.token_ids, (logical + 1) * self.block_size
            )
            if key in self._prefix_index:
                # Already resident here: refresh LRU, keep the local copy.
                self._prefix_index[key] = self._prefix_index.pop(key)
                continue
            if not self.can_allocate(1):
                break
            block_id = self.allocate()
            block = self._blocks[block_id]
            # allocate() hands back refcount 1; that single reference is
            # the prefix cache's own hold, exactly as a locally published
            # block ends up once its table releases it.
            block.payload = [(k.copy(), v.copy()) for k, v in payload]
            block.prefix_key = key
            self._prefix_index[key] = block_id
            imported += 1
        self.stats.chain_blocks_imported += imported
        return imported

    def _evict_one_unreferenced(self) -> bool:
        """Drop the least-recently-used cache-only block; True on success."""
        for key, block_id in self._prefix_index.items():
            block = self._blocks[block_id]
            if block.ref_count == 1:  # held only by the cache
                del self._prefix_index[key]
                block.prefix_key = None
                self.release(block_id)
                self.stats.prefix_evictions += 1
                return True
        return False

    def evict_all_unreferenced(self) -> int:
        """Flush every cache-only block (e.g. on reconfiguration)."""
        n = 0
        while self._evict_one_unreferenced():
            n += 1
        return n

    # ---- invariant audit (tests + chaos harness) -------------------------------

    @property
    def spec_outstanding(self) -> frozenset[int]:
        """Block ids reserved by reserve_spec and not yet promoted/released."""
        return frozenset(self._spec_outstanding)

    def audit(
        self,
        tables: "list[BlockTable] | None" = None,
        allow_spec_outstanding: bool = False,
    ) -> None:
        """Raise :class:`PoolAuditError` if internal bookkeeping disagrees.

        Always checked:

        - free-stack integrity: unique ids, refcount 0, no payload or
          prefix key attached;
        - every non-free block has a positive refcount (no limbo blocks);
        - the prefix index points at live blocks whose back-pointer
          matches, and is disjoint from the free stack;
        - counter identity: ``n_used == allocated - freed + outstanding``
          (promotions count as allocations, so outstanding spec
          reservations are the only used-but-uncounted blocks), and the
          spec counters themselves balance;
        - no orphaned spec reservations: outstanding reservations must
          be refcount 1, unpublished, and — unless
          ``allow_spec_outstanding`` (mid-wave callers) — empty, since
          every draft-verify step promotes or releases before it ends.

        With ``tables`` (every live sequence's :class:`BlockTable`), also
        cross-checks full reference accounting: each block's refcount must
        equal its appearances across tables + 1 if published + 1 if an
        outstanding reservation, and every chained block must be off the
        free stack.
        """

        def ensure(cond: bool, message: str) -> None:
            if not cond:
                raise PoolAuditError(f"pool audit: {message}")

        free_set = set(self._free)
        ensure(len(free_set) == len(self._free), "duplicate ids on free stack")
        for block in self._blocks:
            if block.block_id in free_set:
                ensure(
                    block.ref_count == 0,
                    f"free block {block.block_id} has refcount "
                    f"{block.ref_count}",
                )
                ensure(
                    block.payload is None and block.prefix_key is None,
                    f"free block {block.block_id} still carries payload/key",
                )
            else:
                ensure(
                    block.ref_count > 0,
                    f"block {block.block_id} is neither free nor referenced",
                )
        for key, block_id in self._prefix_index.items():
            block = self._blocks[block_id]
            ensure(block_id not in free_set, f"cached block {block_id} is free")
            ensure(
                block.prefix_key == key,
                f"stale prefix back-pointer on block {block_id}",
            )

        outstanding = self._spec_outstanding
        ensure(
            len(outstanding)
            == self.stats.spec_reserved
            - self.stats.spec_promoted
            - self.stats.spec_released,
            "spec counters disagree with outstanding reservations",
        )
        ensure(
            self.n_used == self.stats.allocated - self.stats.freed
            + len(outstanding),
            f"{self.n_used} used blocks but allocated-freed+outstanding = "
            f"{self.stats.allocated - self.stats.freed + len(outstanding)}",
        )
        for block_id in sorted(outstanding):
            block = self._blocks[block_id]
            ensure(
                block_id not in free_set,
                f"spec reservation {block_id} sits on the free stack",
            )
            ensure(
                block.ref_count == 1 and block.prefix_key is None,
                f"spec reservation {block_id} was shared or published",
            )
        if not allow_spec_outstanding:
            ensure(
                not outstanding,
                f"orphaned spec reservations {sorted(outstanding)}: a "
                "draft-verify step ended without promote/release",
            )

        if tables is not None:
            expected = [0] * self.capacity
            for table in tables:
                for block_id in table.block_ids:
                    ensure(
                        block_id not in free_set,
                        f"chained block {block_id} sits on the free stack",
                    )
                    expected[block_id] += 1
            for block_id in self._prefix_index.values():
                expected[block_id] += 1
            for block_id in outstanding:
                expected[block_id] += 1
            for block in self._blocks:
                ensure(
                    block.ref_count == expected[block.block_id],
                    f"block {block.block_id} refcount {block.ref_count} != "
                    f"{expected[block.block_id]} references "
                    "(tables + prefix cache + spec reservations)",
                )

    def check_consistency(self) -> None:
        """Back-compat alias for :meth:`audit` without table cross-checks."""
        self.audit(allow_spec_outstanding=True)


# ---- CPU/GPU tiered store + slot buffers (consolidated seed-era substrate) ---
#
# The elastic loader (:mod:`repro.core.elastic`) and the adaptive memory
# manager stage budgeted KV subsets onto the GPU; these classes model the
# two tiers, the per-byte PCIe ledger the experiments read, and the
# in-place slot buffer of Sec. 5.4.


@dataclass
class TransferLedger:
    """Running totals of host<->device traffic, in bytes and events."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_events: int = 0
    d2h_events: int = 0
    history: list[tuple[str, int]] = field(default_factory=list)

    def record(self, direction: str, n_bytes: int) -> None:
        """Log one transfer; ``direction`` is 'h2d' or 'd2h'."""
        if n_bytes < 0:
            raise ValueError(f"negative transfer size {n_bytes}")
        if direction == "h2d":
            self.h2d_bytes += n_bytes
            self.h2d_events += 1
        elif direction == "d2h":
            self.d2h_bytes += n_bytes
            self.d2h_events += 1
        else:
            raise ValueError(f"unknown direction {direction!r}")
        self.history.append((direction, n_bytes))

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    def reset(self) -> None:
        """Zero all counters (e.g., between experiment phases)."""
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.h2d_events = 0
        self.d2h_events = 0
        self.history.clear()


class TieredKVStore:
    """One layer's KV cache with a per-token residency tier.

    The canonical copy of every token's KV pair is kept (we are simulating
    the two tiers inside one process); what the store tracks is *residency*
    — which token indices are currently on the GPU — and the transfer
    traffic implied by moving them. ``bytes_per_token`` is the K+V footprint
    of one token in this layer at FP16.
    """

    def __init__(self, n_kv_heads: int, head_dim: int, bytes_per_value: int = 2):
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.bytes_per_token = 2 * n_kv_heads * head_dim * bytes_per_value
        self._keys = np.zeros((n_kv_heads, 0, head_dim))
        self._values = np.zeros((n_kv_heads, 0, head_dim))
        self._on_gpu: set[int] = set()
        self.ledger = TransferLedger()

    def __len__(self) -> int:
        return self._keys.shape[1]

    @property
    def gpu_resident(self) -> frozenset[int]:
        """Token indices whose KV pairs currently reside on the GPU."""
        return frozenset(self._on_gpu)

    def append(self, keys: np.ndarray, values: np.ndarray, tier: MemoryTier) -> None:
        """Append newly generated tokens, materialized on ``tier``.

        Newly generated KV pairs are born on the GPU (attention just produced
        them); appending with ``tier=CPU`` models an immediate writeback and
        is charged as a d2h transfer.
        """
        if keys.shape != values.shape:
            raise ValueError("keys and values must have identical shapes")
        start = len(self)
        self._keys = np.concatenate([self._keys, keys], axis=1)
        self._values = np.concatenate([self._values, values], axis=1)
        new_indices = range(start, len(self))
        if tier is MemoryTier.GPU:
            self._on_gpu.update(new_indices)
        else:
            self.ledger.record("d2h", keys.shape[1] * self.bytes_per_token)

    def fetch_to_gpu(self, token_indices: np.ndarray) -> int:
        """Ensure the given tokens are GPU-resident; returns bytes transferred.

        Only tokens not already resident are charged — this is exactly the
        elastic-loading saving.
        """
        token_indices = np.asarray(token_indices).ravel()
        if token_indices.size and (
            token_indices.min() < 0 or token_indices.max() >= len(self)
        ):
            raise IndexError("fetch index out of range")
        missing = [int(t) for t in token_indices if int(t) not in self._on_gpu]
        if missing:
            moved = len(missing) * self.bytes_per_token
            self.ledger.record("h2d", moved)
            self._on_gpu.update(missing)
            return moved
        return 0

    def evict_from_gpu(self, token_indices: np.ndarray) -> int:
        """Drop GPU residency for the given tokens; returns bytes freed.

        Eviction is free of PCIe traffic (the CPU copy is canonical); the
        return value is the GPU memory released.
        """
        token_indices = np.asarray(token_indices).ravel()
        present = [int(t) for t in token_indices if int(t) in self._on_gpu]
        for t in present:
            self._on_gpu.discard(t)
        return len(present) * self.bytes_per_token

    def evict_all(self) -> int:
        """Offload the entire layer to CPU (Algorithm 2's per-layer offload)."""
        freed = len(self._on_gpu) * self.bytes_per_token
        self._on_gpu.clear()
        return freed

    def gather(self, token_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Read (keys, values) for tokens; they must be GPU-resident.

        Raises RuntimeError if any requested token is not resident — in a
        real system that read would be a fault; surfacing it keeps the
        dataflow honest in tests.
        """
        token_indices = np.asarray(token_indices).ravel()
        not_resident = [int(t) for t in token_indices if int(t) not in self._on_gpu]
        if not_resident:
            raise RuntimeError(
                f"gather of non-resident tokens {not_resident[:8]}"
                f"{'...' if len(not_resident) > 8 else ''}; fetch_to_gpu first"
            )
        return self._keys[:, token_indices, :], self._values[:, token_indices, :]

    def gpu_bytes(self) -> int:
        """GPU memory currently consumed by this layer's resident tokens."""
        return len(self._on_gpu) * self.bytes_per_token


class GpuSlotBuffer:
    """Slot-addressed KV buffer of fixed capacity ``budget``.

    K/V payloads are stored per-slot with shape (kv_heads, dim); lookups by
    token index go through the slot map.
    """

    def __init__(self, budget: int, n_kv_heads: int, head_dim: int):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self._k = np.zeros((budget, n_kv_heads, head_dim))
        self._v = np.zeros((budget, n_kv_heads, head_dim))
        self._slot_of: dict[int, int] = {}
        self._free_slots: list[int] = list(range(budget - 1, -1, -1))

    @property
    def resident_tokens(self) -> frozenset[int]:
        """Token indices currently held in slots."""
        return frozenset(self._slot_of)

    def update(
        self,
        new_selection: np.ndarray,
        fetch_kv: "callable",
    ) -> tuple[int, int]:
        """Make the buffer hold exactly ``new_selection``.

        ``fetch_kv(token_index) -> (k, v)`` supplies payloads for tokens not
        already resident (each shaped (kv_heads, dim)). Returns
        ``(n_loaded, n_evicted)`` so callers can account transfer volume.

        Slots of evicted tokens are recycled for the incoming ones, which is
        the in-place ``copy_`` semantics of the paper.
        """
        wanted = {int(t) for t in np.asarray(new_selection).ravel()}
        if len(wanted) > self.budget:
            raise ValueError(
                f"selection of {len(wanted)} tokens exceeds budget {self.budget}"
            )
        current = set(self._slot_of)
        to_evict = sorted(current - wanted)
        to_load = sorted(wanted - current)

        for token in to_evict:
            slot = self._slot_of.pop(token)
            self._free_slots.append(slot)

        for token in to_load:
            if not self._free_slots:
                raise RuntimeError("slot buffer exhausted; accounting bug")
            slot = self._free_slots.pop()
            k, v = fetch_kv(token)
            k = np.asarray(k)
            v = np.asarray(v)
            if k.shape != (self.n_kv_heads, self.head_dim):
                raise ValueError(
                    f"fetched K shape {k.shape} != ({self.n_kv_heads}, {self.head_dim})"
                )
            self._k[slot] = k
            self._v[slot] = v
            self._slot_of[token] = slot

        return len(to_load), len(to_evict)

    def gather(self, token_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Read (K, V) for resident tokens, shaped (kv_heads, n, dim)."""
        token_indices = np.asarray(token_indices).ravel()
        slots = []
        for t in token_indices:
            slot = self._slot_of.get(int(t))
            if slot is None:
                raise KeyError(f"token {int(t)} not resident in slot buffer")
            slots.append(slot)
        k = self._k[slots].transpose(1, 0, 2)
        v = self._v[slots].transpose(1, 0, 2)
        return k, v

    def nbytes(self, bytes_per_value: int = 2) -> int:
        """GPU footprint of the buffer (allocated, not just used)."""
        return 2 * self.budget * self.n_kv_heads * self.head_dim * bytes_per_value
