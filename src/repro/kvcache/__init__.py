"""KV-cache substrate: dense per-layer caches plus the server-wide pool.

The paper's three challenges are all KV-cache lifecycle problems, so the
cache is a first-class subsystem here rather than an array inside the model:

- ``LayerKVCache``: the dense append/gather cache every attention variant uses.
- ``PagedKVPool``: the server-wide block pool — refcounted copy-on-write
  blocks, hash-chained prefix caching, deterministic free-list reuse.
- ``TieredKVStore``: CPU/DRAM-backed cache with an explicit transfer ledger,
  so experiments can count bytes moved over PCIe.
- ``GpuSlotBuffer``: the fixed-budget on-GPU staging buffer that elastic
  loading updates in place (Sec. 5.4's ``Tensor.copy_()``).

The tiered store and slot buffer live in :mod:`repro.kvcache.pool`
alongside the pool (the former ``tiered``/``slots``/``paged`` modules
were consolidated there; Quest's page-metadata layout now lives entirely
inside :mod:`repro.retrieval.quest`, which never used the standalone
``PagedKVCache``).
"""

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.kvcache.pool import (
    BlockChainExport,
    BlockTable,
    GpuSlotBuffer,
    PagedKVPool,
    PoolExhausted,
    PoolStats,
    TieredKVStore,
    TransferLedger,
    hash_token_prefix,
)

__all__ = [
    "BlockChainExport",
    "BlockTable",
    "GpuSlotBuffer",
    "LayerKVCache",
    "ModelKVCache",
    "PagedKVPool",
    "PoolExhausted",
    "PoolStats",
    "TieredKVStore",
    "TransferLedger",
    "hash_token_prefix",
]
