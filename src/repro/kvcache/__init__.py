"""KV-cache substrate: dense per-layer caches, paging, tiering, slot buffers.

The paper's three challenges are all KV-cache lifecycle problems, so the
cache is a first-class subsystem here rather than an array inside the model:

- ``LayerKVCache``: the dense append/gather cache every attention variant uses.
- ``PagedKVCache``: fixed-size pages with min/max metadata (Quest's layout).
- ``PagedKVPool``: the server-wide block pool — refcounted copy-on-write
  blocks, hash-chained prefix caching, deterministic free-list reuse.
- ``TieredKVStore``: CPU/DRAM-backed cache with an explicit transfer ledger,
  so experiments can count bytes moved over PCIe.
- ``GpuSlotBuffer``: the fixed-budget on-GPU staging buffer that elastic
  loading updates in place (Sec. 5.4's ``Tensor.copy_()``).
"""

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.kvcache.paged import PagedKVCache, PageMetadata
from repro.kvcache.pool import (
    BlockTable,
    PagedKVPool,
    PoolExhausted,
    PoolStats,
    hash_token_prefix,
)
from repro.kvcache.slots import GpuSlotBuffer
from repro.kvcache.tiered import TieredKVStore, TransferLedger

__all__ = [
    "BlockTable",
    "LayerKVCache",
    "ModelKVCache",
    "PagedKVCache",
    "PagedKVPool",
    "PageMetadata",
    "PoolExhausted",
    "PoolStats",
    "hash_token_prefix",
    "TieredKVStore",
    "TransferLedger",
    "GpuSlotBuffer",
]
