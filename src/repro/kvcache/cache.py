"""Dense KV caches with amortized append and index gather.

Shapes follow the (batch, heads, seq, head_dim) convention used throughout
the transformer substrate. ``LayerKVCache`` owns one layer's K and V arrays;
``ModelKVCache`` is the per-request stack of layer caches the engine threads
through prefill and decode.
"""

from __future__ import annotations

import numpy as np


class LayerKVCache:
    """Growable K/V storage for one attention layer.

    Uses capacity doubling so appending one token per decode step is O(1)
    amortized rather than O(seq) per step.
    """

    def __init__(
        self,
        batch: int,
        n_kv_heads: int,
        head_dim: int,
        capacity: int = 64,
        dtype: np.dtype = np.float64,
    ):
        if batch < 1 or n_kv_heads < 1 or head_dim < 1:
            raise ValueError("batch, n_kv_heads and head_dim must be positive")
        self.batch = batch
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.dtype = np.dtype(dtype)
        self._len = 0
        self._k = np.zeros((batch, n_kv_heads, capacity, head_dim), dtype=self.dtype)
        self._v = np.zeros((batch, n_kv_heads, capacity, head_dim), dtype=self.dtype)

    def __len__(self) -> int:
        return self._len

    @property
    def keys(self) -> np.ndarray:
        """View of the valid K entries, shape (batch, kv_heads, len, dim)."""
        return self._k[:, :, : self._len, :]

    @property
    def values(self) -> np.ndarray:
        """View of the valid V entries, shape (batch, kv_heads, len, dim)."""
        return self._v[:, :, : self._len, :]

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append new tokens; ``k``/``v`` shaped (batch, kv_heads, new, dim)."""
        if k.shape != v.shape:
            raise ValueError(f"k shape {k.shape} != v shape {v.shape}")
        expected = (self.batch, self.n_kv_heads)
        if k.shape[:2] != expected or k.shape[3] != self.head_dim:
            raise ValueError(
                f"append shape {k.shape} incompatible with cache "
                f"(batch={self.batch}, kv_heads={self.n_kv_heads}, dim={self.head_dim})"
            )
        new = k.shape[2]
        needed = self._len + new
        if needed > self._k.shape[2]:
            capacity = max(needed, 2 * self._k.shape[2])
            grown_k = np.zeros(
                (self.batch, self.n_kv_heads, capacity, self.head_dim),
                dtype=self.dtype,
            )
            grown_v = np.zeros_like(grown_k)
            grown_k[:, :, : self._len, :] = self._k[:, :, : self._len, :]
            grown_v[:, :, : self._len, :] = self._v[:, :, : self._len, :]
            self._k = grown_k
            self._v = grown_v
        self._k[:, :, self._len : needed, :] = k
        self._v[:, :, self._len : needed, :] = v
        self._len = needed

    def gather(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Select KV pairs by token index.

        ``indices`` is either 1-D (same selection for every head) or shaped
        (kv_heads, k) for head-level selection (the paper's Figure 5 gather).
        Returns (k, v) shaped (batch, kv_heads, k, dim).
        """
        indices = np.asarray(indices)
        if np.any(indices < 0) or np.any(indices >= self._len):
            raise IndexError(
                f"gather index out of range [0, {self._len}): "
                f"min={int(indices.min()) if indices.size else 0}, "
                f"max={int(indices.max()) if indices.size else 0}"
            )
        if indices.ndim == 1:
            return (
                self._k[:, :, indices, :],
                self._v[:, :, indices, :],
            )
        if indices.ndim == 2:
            if indices.shape[0] != self.n_kv_heads:
                raise ValueError(
                    f"head-level indices have {indices.shape[0]} rows, "
                    f"cache has {self.n_kv_heads} kv heads"
                )
            idx = indices[None, :, :, None]  # (1, kv_heads, k, 1)
            k_sel = np.take_along_axis(self.keys, np.broadcast_to(
                idx, (self.batch, self.n_kv_heads, indices.shape[1], self.head_dim)
            ), axis=2)
            v_sel = np.take_along_axis(self.values, np.broadcast_to(
                idx, (self.batch, self.n_kv_heads, indices.shape[1], self.head_dim)
            ), axis=2)
            return k_sel, v_sel
        raise ValueError(f"indices must be 1-D or 2-D, got ndim={indices.ndim}")

    def gather_into(
        self, indices: np.ndarray, k_out: np.ndarray, v_out: np.ndarray
    ) -> None:
        """1-D token gather written straight into caller buffers.

        Batched-decode fast path: identical values to :meth:`gather` with
        1-D indices (batch 0), but lands in the group's preallocated
        stacked K/V buffers instead of allocating per-session temporaries
        that a later ``np.stack`` would copy again. Bounds are enforced by
        ``np.take(mode="raise")``.
        """
        np.take(self._k[0, :, : self._len], indices, axis=1, out=k_out)
        np.take(self._v[0, :, : self._len], indices, axis=1, out=v_out)

    def copy_kv_into(
        self, k_out: np.ndarray, v_out: np.ndarray, limit: int | None = None
    ) -> None:
        """Copy valid K/V entries into caller buffers (full attention).

        ``limit`` caps the visible length: a speculative multi-position
        verify appends several tokens before attending, so each row must
        see only the entries at positions below its own (the causal view a
        sequential decode at that position would have had).
        """
        end = self._len if limit is None else limit
        np.copyto(k_out, self._k[0, :, :end])
        np.copyto(v_out, self._v[0, :, :end])

    def truncate(self, length: int) -> None:
        """Drop all entries at positions >= ``length`` (used by rollbacks)."""
        if length < 0 or length > self._len:
            raise ValueError(f"truncate length {length} outside [0, {self._len}]")
        self._len = length

    def clone(self) -> "LayerKVCache":
        """Deep copy (shared-prefill evaluation decodes on clones)."""
        copy = LayerKVCache(
            self.batch,
            self.n_kv_heads,
            self.head_dim,
            capacity=self._k.shape[2],
            dtype=self.dtype,
        )
        copy._k = self._k.copy()
        copy._v = self._v.copy()
        copy._len = self._len
        return copy

    def nbytes(self, bytes_per_value: int = 2) -> int:
        """Logical footprint of the valid entries at the given precision."""
        return (
            2 * self.batch * self.n_kv_heads * self._len * self.head_dim
            * bytes_per_value
        )


class ModelKVCache:
    """Per-request stack of :class:`LayerKVCache`, one per transformer layer."""

    def __init__(
        self,
        n_layers: int,
        batch: int,
        n_kv_heads: int,
        head_dim: int,
        dtype: np.dtype = np.float64,
    ):
        if n_layers < 1:
            raise ValueError("n_layers must be positive")
        self.layers = [
            LayerKVCache(batch, n_kv_heads, head_dim, dtype=dtype)
            for _ in range(n_layers)
        ]

    def __getitem__(self, layer: int) -> LayerKVCache:
        return self.layers[layer]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def seq_len(self) -> int:
        """Sequence length (identical across layers by construction)."""
        return len(self.layers[0])

    def nbytes(self, bytes_per_value: int = 2) -> int:
        """Total logical KV footprint across layers."""
        return sum(layer.nbytes(bytes_per_value) for layer in self.layers)

    def truncate(self, length: int) -> None:
        """Drop entries at positions >= ``length`` in every layer.

        Speculative decoding's rollback: rejected draft tokens' KV entries
        are discarded so the cache holds exactly what a never-drafted run
        would hold.
        """
        for layer in self.layers:
            layer.truncate(length)

    def clone(self) -> "ModelKVCache":
        """Deep copy of every layer's cache."""
        copy = ModelKVCache.__new__(ModelKVCache)
        copy.layers = [layer.clone() for layer in self.layers]
        return copy
