"""CPU/GPU tiered KV store with an explicit transfer ledger.

In resource-constrained deployments the full KV cache lives in CPU DRAM and
a budgeted subset is staged onto the GPU for each decode step. Every byte
crossing the PCIe bus is recorded in :class:`TransferLedger`, which is how
the experiments quantify elastic loading's "up to 90% transfer reduction"
(Sec. 5.4) and the fetch-vs-prefetch timelines of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.memory import MemoryTier


@dataclass
class TransferLedger:
    """Running totals of host<->device traffic, in bytes and events."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_events: int = 0
    d2h_events: int = 0
    history: list[tuple[str, int]] = field(default_factory=list)

    def record(self, direction: str, n_bytes: int) -> None:
        """Log one transfer; ``direction`` is 'h2d' or 'd2h'."""
        if n_bytes < 0:
            raise ValueError(f"negative transfer size {n_bytes}")
        if direction == "h2d":
            self.h2d_bytes += n_bytes
            self.h2d_events += 1
        elif direction == "d2h":
            self.d2h_bytes += n_bytes
            self.d2h_events += 1
        else:
            raise ValueError(f"unknown direction {direction!r}")
        self.history.append((direction, n_bytes))

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    def reset(self) -> None:
        """Zero all counters (e.g., between experiment phases)."""
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.h2d_events = 0
        self.d2h_events = 0
        self.history.clear()


class TieredKVStore:
    """One layer's KV cache with a per-token residency tier.

    The canonical copy of every token's KV pair is kept (we are simulating
    the two tiers inside one process); what the store tracks is *residency*
    — which token indices are currently on the GPU — and the transfer
    traffic implied by moving them. ``bytes_per_token`` is the K+V footprint
    of one token in this layer at FP16.
    """

    def __init__(self, n_kv_heads: int, head_dim: int, bytes_per_value: int = 2):
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.bytes_per_token = 2 * n_kv_heads * head_dim * bytes_per_value
        self._keys = np.zeros((n_kv_heads, 0, head_dim))
        self._values = np.zeros((n_kv_heads, 0, head_dim))
        self._on_gpu: set[int] = set()
        self.ledger = TransferLedger()

    def __len__(self) -> int:
        return self._keys.shape[1]

    @property
    def gpu_resident(self) -> frozenset[int]:
        """Token indices whose KV pairs currently reside on the GPU."""
        return frozenset(self._on_gpu)

    def append(self, keys: np.ndarray, values: np.ndarray, tier: MemoryTier) -> None:
        """Append newly generated tokens, materialized on ``tier``.

        Newly generated KV pairs are born on the GPU (attention just produced
        them); appending with ``tier=CPU`` models an immediate writeback and
        is charged as a d2h transfer.
        """
        if keys.shape != values.shape:
            raise ValueError("keys and values must have identical shapes")
        start = len(self)
        self._keys = np.concatenate([self._keys, keys], axis=1)
        self._values = np.concatenate([self._values, values], axis=1)
        new_indices = range(start, len(self))
        if tier is MemoryTier.GPU:
            self._on_gpu.update(new_indices)
        else:
            self.ledger.record("d2h", keys.shape[1] * self.bytes_per_token)

    def fetch_to_gpu(self, token_indices: np.ndarray) -> int:
        """Ensure the given tokens are GPU-resident; returns bytes transferred.

        Only tokens not already resident are charged — this is exactly the
        elastic-loading saving.
        """
        token_indices = np.asarray(token_indices).ravel()
        if token_indices.size and (
            token_indices.min() < 0 or token_indices.max() >= len(self)
        ):
            raise IndexError("fetch index out of range")
        missing = [int(t) for t in token_indices if int(t) not in self._on_gpu]
        if missing:
            moved = len(missing) * self.bytes_per_token
            self.ledger.record("h2d", moved)
            self._on_gpu.update(missing)
            return moved
        return 0

    def evict_from_gpu(self, token_indices: np.ndarray) -> int:
        """Drop GPU residency for the given tokens; returns bytes freed.

        Eviction is free of PCIe traffic (the CPU copy is canonical); the
        return value is the GPU memory released.
        """
        token_indices = np.asarray(token_indices).ravel()
        present = [int(t) for t in token_indices if int(t) in self._on_gpu]
        for t in present:
            self._on_gpu.discard(t)
        return len(present) * self.bytes_per_token

    def evict_all(self) -> int:
        """Offload the entire layer to CPU (Algorithm 2's per-layer offload)."""
        freed = len(self._on_gpu) * self.bytes_per_token
        self._on_gpu.clear()
        return freed

    def gather(self, token_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Read (keys, values) for tokens; they must be GPU-resident.

        Raises RuntimeError if any requested token is not resident — in a
        real system that read would be a fault; surfacing it keeps the
        dataflow honest in tests.
        """
        token_indices = np.asarray(token_indices).ravel()
        not_resident = [int(t) for t in token_indices if int(t) not in self._on_gpu]
        if not_resident:
            raise RuntimeError(
                f"gather of non-resident tokens {not_resident[:8]}"
                f"{'...' if len(not_resident) > 8 else ''}; fetch_to_gpu first"
            )
        return self._keys[:, token_indices, :], self._values[:, token_indices, :]

    def gpu_bytes(self) -> int:
        """GPU memory currently consumed by this layer's resident tokens."""
        return len(self._on_gpu) * self.bytes_per_token
