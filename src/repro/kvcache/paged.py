"""Paged KV cache with per-page min/max metadata (Quest's data layout).

Quest (Tang et al., ICML'24) partitions the KV cache into fixed-size pages
and keeps, per page, the element-wise min and max of its key vectors. At
retrieval time an upper bound on any key's dot product with the query is
computed from just the page metadata, and only the top-K pages are loaded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PageMetadata:
    """Element-wise min/max over one page's keys, per KV head.

    Shapes: (kv_heads, head_dim).
    """

    key_min: np.ndarray
    key_max: np.ndarray
    start: int  # first token index covered by this page
    length: int  # number of valid tokens in the page


class PagedKVCache:
    """KV cache organized as fixed-size pages with Quest metadata.

    Keys/values for a single batch element, shaped (kv_heads, seq, dim)
    internally; pages are recomputed lazily as tokens are appended.
    """

    def __init__(self, n_kv_heads: int, head_dim: int, page_size: int = 16):
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.page_size = page_size
        self._keys = np.zeros((n_kv_heads, 0, head_dim))
        self._values = np.zeros((n_kv_heads, 0, head_dim))

    def __len__(self) -> int:
        return self._keys.shape[1]

    @property
    def n_pages(self) -> int:
        """Number of pages covering the current sequence."""
        length = len(self)
        return (length + self.page_size - 1) // self.page_size

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append tokens; ``keys``/``values`` shaped (kv_heads, new, dim)."""
        if keys.shape != values.shape:
            raise ValueError("keys and values must have identical shapes")
        if keys.shape[0] != self.n_kv_heads or keys.shape[2] != self.head_dim:
            raise ValueError(
                f"append shape {keys.shape} incompatible with "
                f"(kv_heads={self.n_kv_heads}, dim={self.head_dim})"
            )
        self._keys = np.concatenate([self._keys, keys], axis=1)
        self._values = np.concatenate([self._values, values], axis=1)

    def page(self, index: int) -> PageMetadata:
        """Metadata for page ``index``."""
        if index < 0 or index >= self.n_pages:
            raise IndexError(f"page {index} out of range [0, {self.n_pages})")
        start = index * self.page_size
        end = min(start + self.page_size, len(self))
        chunk = self._keys[:, start:end, :]
        return PageMetadata(
            key_min=chunk.min(axis=1),
            key_max=chunk.max(axis=1),
            start=start,
            length=end - start,
        )

    def page_upper_bounds(self, query: np.ndarray) -> np.ndarray:
        """Quest's score: max over sign choices of q·k for keys in each page.

        ``query`` shaped (kv_heads, dim) (one decode-step query per KV head,
        group-reduced by the caller for GQA). Returns (kv_heads, n_pages).
        For each coordinate the bound takes ``max(q_d * min_d, q_d * max_d)``
        and sums — an upper bound on the true dot product of any key in the
        page with the query.
        """
        if query.shape != (self.n_kv_heads, self.head_dim):
            raise ValueError(
                f"query shape {query.shape} != ({self.n_kv_heads}, {self.head_dim})"
            )
        bounds = np.empty((self.n_kv_heads, self.n_pages))
        for p in range(self.n_pages):
            meta = self.page(p)
            per_dim = np.maximum(query * meta.key_min, query * meta.key_max)
            bounds[:, p] = per_dim.sum(axis=-1)
        return bounds

    def tokens_of_pages(self, page_indices: np.ndarray) -> np.ndarray:
        """Token indices contained in the given pages, sorted ascending."""
        token_ids: list[int] = []
        for p in np.asarray(page_indices).ravel():
            start = int(p) * self.page_size
            end = min(start + self.page_size, len(self))
            token_ids.extend(range(start, end))
        return np.array(sorted(set(token_ids)), dtype=np.int64)

    def gather(self, token_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fetch (keys, values) for explicit token indices."""
        token_indices = np.asarray(token_indices)
        return self._keys[:, token_indices, :], self._values[:, token_indices, :]
