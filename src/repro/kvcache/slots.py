"""Fixed-budget GPU staging buffer updated in place by elastic loading.

Section 5.4: SpeContext keeps a KV budget ``B`` of selected tokens on the
GPU. Between adjacent decode steps the selected sets overlap >80%, so only
the difference ``S_now − S_last`` is copied in, overwriting the slots held by
``S_last − S_now`` (the paper implements this with ``Tensor.copy_()``).

``GpuSlotBuffer`` models that buffer: a mapping from token index to physical
slot plus the slot-resident K/V arrays. Its invariant — the set of resident
tokens always equals the most recent selection — is property-tested.
"""

from __future__ import annotations

import numpy as np


class GpuSlotBuffer:
    """Slot-addressed KV buffer of fixed capacity ``budget``.

    K/V payloads are stored per-slot with shape (kv_heads, dim); lookups by
    token index go through the slot map.
    """

    def __init__(self, budget: int, n_kv_heads: int, head_dim: int):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self._k = np.zeros((budget, n_kv_heads, head_dim))
        self._v = np.zeros((budget, n_kv_heads, head_dim))
        self._slot_of: dict[int, int] = {}
        self._free_slots: list[int] = list(range(budget - 1, -1, -1))

    @property
    def resident_tokens(self) -> frozenset[int]:
        """Token indices currently held in slots."""
        return frozenset(self._slot_of)

    def update(
        self,
        new_selection: np.ndarray,
        fetch_kv: "callable",
    ) -> tuple[int, int]:
        """Make the buffer hold exactly ``new_selection``.

        ``fetch_kv(token_index) -> (k, v)`` supplies payloads for tokens not
        already resident (each shaped (kv_heads, dim)). Returns
        ``(n_loaded, n_evicted)`` so callers can account transfer volume.

        Slots of evicted tokens are recycled for the incoming ones, which is
        the in-place ``copy_`` semantics of the paper.
        """
        wanted = {int(t) for t in np.asarray(new_selection).ravel()}
        if len(wanted) > self.budget:
            raise ValueError(
                f"selection of {len(wanted)} tokens exceeds budget {self.budget}"
            )
        current = set(self._slot_of)
        to_evict = sorted(current - wanted)
        to_load = sorted(wanted - current)

        for token in to_evict:
            slot = self._slot_of.pop(token)
            self._free_slots.append(slot)

        for token in to_load:
            if not self._free_slots:
                raise RuntimeError("slot buffer exhausted; accounting bug")
            slot = self._free_slots.pop()
            k, v = fetch_kv(token)
            k = np.asarray(k)
            v = np.asarray(v)
            if k.shape != (self.n_kv_heads, self.head_dim):
                raise ValueError(
                    f"fetched K shape {k.shape} != ({self.n_kv_heads}, {self.head_dim})"
                )
            self._k[slot] = k
            self._v[slot] = v
            self._slot_of[token] = slot

        return len(to_load), len(to_evict)

    def gather(self, token_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Read (K, V) for resident tokens, shaped (kv_heads, n, dim)."""
        token_indices = np.asarray(token_indices).ravel()
        slots = []
        for t in token_indices:
            slot = self._slot_of.get(int(t))
            if slot is None:
                raise KeyError(f"token {int(t)} not resident in slot buffer")
            slots.append(slot)
        k = self._k[slots].transpose(1, 0, 2)
        v = self._v[slots].transpose(1, 0, 2)
        return k, v

    def nbytes(self, bytes_per_value: int = 2) -> int:
        """GPU footprint of the buffer (allocated, not just used)."""
        return 2 * self.budget * self.n_kv_heads * self.head_dim * bytes_per_value
