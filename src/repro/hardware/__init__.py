"""Hardware substrate: specs, latency model, memory accounting, streams.

The paper evaluates on two real machines (A800-80GB "cloud" and RTX 4060
Laptop 8GB "edge", Table 2). This package substitutes an analytic timing
model plus a discrete-event multi-stream simulator. The simulator is what
makes the system-level claims reproducible: CUDA-stream overlap (Sec. 5),
PCIe-bound KV transfer (Fig. 6a), and the HBM-capacity cliff (Fig. 2a) are
all properties of the *schedule*, which the simulator models explicitly.
"""

from repro.hardware.memory import MemoryLedger, MemoryTier, OutOfMemoryError
from repro.hardware.spec import CLOUD_A800, EDGE_RTX4060, EDGE_RTX4060_4GB, HardwareSpec
from repro.hardware.streams import StreamOp, StreamSimulator
from repro.hardware.timing import LatencyModel, OpCost

__all__ = [
    "HardwareSpec",
    "CLOUD_A800",
    "EDGE_RTX4060",
    "EDGE_RTX4060_4GB",
    "LatencyModel",
    "OpCost",
    "MemoryLedger",
    "MemoryTier",
    "OutOfMemoryError",
    "StreamSimulator",
    "StreamOp",
]
