"""Analytic latency model for transformer inference on a :class:`HardwareSpec`.

Each op's latency is the max of its compute-bound and memory-bound times (the
roofline model) plus a kernel-launch constant. The decode phase of an LLM is
memory-bandwidth bound (every weight and every KV byte is read once per
token), which is exactly why KV sparsity translates into speedup; the model
captures that directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec

BYTES_PER_VALUE = 2  # FP16 weights and KV cache, as in the paper (Sec. 6.2)


@dataclass(frozen=True)
class OpCost:
    """FLOPs and bytes moved for one logical GPU op."""

    flops: float
    gpu_bytes: float
    kernels: int = 1

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            flops=self.flops + other.flops,
            gpu_bytes=self.gpu_bytes + other.gpu_bytes,
            kernels=self.kernels + other.kernels,
        )


class LatencyModel:
    """Maps :class:`OpCost` and transfer sizes to seconds on a given spec."""

    def __init__(self, spec: HardwareSpec):
        self.spec = spec

    def op_seconds(self, cost: OpCost) -> float:
        """Roofline latency of an on-GPU op."""
        compute = cost.flops / self.spec.gpu_flops
        memory = cost.gpu_bytes / self.spec.gpu_bandwidth
        return max(compute, memory) + cost.kernels * self.spec.kernel_launch_overhead_s

    def transfer_seconds(self, n_bytes: float) -> float:
        """Host<->device transfer latency over PCIe."""
        if n_bytes <= 0:
            return 0.0
        return n_bytes / self.spec.pcie_bandwidth + self.spec.kernel_launch_overhead_s

    def sync_seconds(self) -> float:
        """Cost of one stream synchronization point."""
        return self.spec.sync_overhead_s

    # ---- Transformer building blocks -------------------------------------

    def matmul_cost(self, m: int, k: int, n: int, batch: int = 1) -> OpCost:
        """GEMM of (m,k) x (k,n), repeated ``batch`` times."""
        flops = 2.0 * m * k * n * batch
        io = (m * k + k * n + m * n) * batch * BYTES_PER_VALUE
        return OpCost(flops=flops, gpu_bytes=io)

    def attention_decode_cost(
        self,
        batch: int,
        n_q_heads: int,
        n_kv_heads: int,
        head_dim: int,
        kv_len: int,
    ) -> OpCost:
        """One decode-step attention over ``kv_len`` cached tokens.

        Reads the full K and V cache once (the bandwidth term that KV
        sparsity shrinks) and performs the QK^T and PV GEMVs.
        """
        flops = 2.0 * batch * n_q_heads * head_dim * kv_len * 2  # QK^T and PV
        kv_bytes = 2.0 * batch * n_kv_heads * kv_len * head_dim * BYTES_PER_VALUE
        return OpCost(flops=flops, gpu_bytes=kv_bytes, kernels=2)

    def linear_cost(
        self, batch_tokens: int, in_features: int, out_features: int
    ) -> OpCost:
        """Projection applied to ``batch_tokens`` token vectors."""
        flops = 2.0 * batch_tokens * in_features * out_features
        io = (
            in_features * out_features
            + batch_tokens * (in_features + out_features)
        ) * BYTES_PER_VALUE
        return OpCost(flops=flops, gpu_bytes=io)

    def kv_bytes(
        self, n_tokens: int, n_kv_heads: int, head_dim: int, batch: int = 1
    ) -> float:
        """Bytes of K+V cache for ``n_tokens`` tokens of one layer."""
        return 2.0 * batch * n_tokens * n_kv_heads * head_dim * BYTES_PER_VALUE
