"""Discrete-event simulator for CUDA-stream-style concurrent execution.

SpeContext's system contribution (Sec. 5) is an asynchronous dataflow on two
streams: stream 1 runs LLM compute, stream 2 prefetches KV cache over PCIe.
Whether transfer hides behind compute is a pure scheduling question, so we
model it exactly: each stream executes its ops in FIFO order, an op may wait
on events signalled by ops in other streams, and wall-clock time is the max
over streams of their completion times.

This lets the experiments reproduce Figure 7's timelines — sequential
fetch-then-attend (Quest/ClusterKV with offloading) vs overlapped prefetch
(InfiniGen/ShadowKV/SpeContext) — as numbers rather than cartoons.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StreamOp:
    """One operation enqueued on a stream.

    Attributes:
        stream: stream identifier (e.g., "compute", "transfer").
        duration_s: how long the op occupies its stream.
        label: human-readable tag, used by timeline assertions in tests.
        waits_for: event names that must be signalled before the op starts.
        signals: event names signalled when the op completes.
    """

    stream: str
    duration_s: float
    label: str = ""
    waits_for: tuple[str, ...] = ()
    signals: tuple[str, ...] = ()


@dataclass
class ScheduledOp:
    """An op with its resolved start/end times after simulation."""

    op: StreamOp
    start_s: float
    end_s: float


@dataclass
class StreamSimulator:
    """Executes enqueued :class:`StreamOp`s and resolves the timeline."""

    _ops: list[StreamOp] = field(default_factory=list)

    def enqueue(self, op: StreamOp) -> None:
        """Append an op to its stream's FIFO queue."""
        if op.duration_s < 0:
            raise ValueError(f"negative duration for op {op.label!r}")
        self._ops.append(op)

    def run(self) -> list[ScheduledOp]:
        """Resolve start/end times for every op; returns them in issue order.

        Raises ValueError if an op waits on an event that nothing signals
        (a deadlock in the dataflow graph).
        """
        stream_ready: dict[str, float] = {}
        event_time: dict[str, float] = {}
        schedule: list[ScheduledOp] = []
        pending = list(self._ops)

        # Ops must start in FIFO order per stream, but an op may have to wait
        # for events from other streams; iterate until all placed.
        progress = True
        placed = [False] * len(pending)
        while progress:
            progress = False
            for i, op in enumerate(pending):
                if placed[i]:
                    continue
                # FIFO: all earlier ops on the same stream must be placed.
                earlier_unplaced = any(
                    not placed[j]
                    for j in range(i)
                    if pending[j].stream == op.stream
                )
                if earlier_unplaced:
                    continue
                if any(ev not in event_time for ev in op.waits_for):
                    continue
                start = stream_ready.get(op.stream, 0.0)
                for ev in op.waits_for:
                    start = max(start, event_time[ev])
                end = start + op.duration_s
                stream_ready[op.stream] = end
                for ev in op.signals:
                    event_time[ev] = end
                schedule.append(ScheduledOp(op=op, start_s=start, end_s=end))
                placed[i] = True
                progress = True

        if not all(placed):
            stuck = [
                pending[i].label or f"op#{i}"
                for i in range(len(pending))
                if not placed[i]
            ]
            raise ValueError(f"dataflow deadlock; unresolved ops: {stuck}")
        return schedule

    def makespan(self) -> float:
        """Total wall-clock time of the enqueued dataflow."""
        schedule = self.run()
        if not schedule:
            return 0.0
        return max(item.end_s for item in schedule)

    def stream_busy_time(self, stream: str) -> float:
        """Sum of op durations on one stream (its occupancy)."""
        return sum(op.duration_s for op in self._ops if op.stream == stream)

    def clear(self) -> None:
        """Drop all enqueued ops, reusing the simulator for the next step."""
        self._ops.clear()
