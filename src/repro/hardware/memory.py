"""Tiered memory accounting: GPU HBM vs CPU DRAM ledgers.

The adaptive memory manager (Sec. 6) reasons about where each layer's KV
cache lives. ``MemoryLedger`` tracks named allocations per tier, enforces
capacity, and records the peak footprint so experiments can report OOM the
way the paper's Table 3 does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.spec import HardwareSpec
from repro.utils.units import human_bytes


class MemoryTier(enum.Enum):
    """Where a buffer physically resides."""

    GPU = "gpu"
    CPU = "cpu"


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the tier's capacity (paper's 'OOM')."""


@dataclass
class _Allocation:
    name: str
    n_bytes: int
    tier: MemoryTier


@dataclass
class MemoryLedger:
    """Capacity-checked allocation table over the two memory tiers."""

    spec: HardwareSpec
    _allocations: dict[str, _Allocation] = field(default_factory=dict)
    peak_gpu_bytes: int = 0

    def allocate(self, name: str, n_bytes: int, tier: MemoryTier) -> None:
        """Reserve ``n_bytes`` under ``name``; raises OutOfMemoryError if full."""
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if n_bytes < 0:
            raise ValueError(f"negative allocation size {n_bytes}")
        new_used = self.used(tier) + n_bytes
        if new_used > self.capacity(tier):
            raise OutOfMemoryError(
                f"{tier.value} OOM allocating {name!r}: need {human_bytes(n_bytes)}, "
                f"used {human_bytes(self.used(tier))} of "
                f"{human_bytes(self.capacity(tier))}"
            )
        self._allocations[name] = _Allocation(name, int(n_bytes), tier)
        self.peak_gpu_bytes = max(self.peak_gpu_bytes, self.used(MemoryTier.GPU))

    def free(self, name: str) -> None:
        """Release a named allocation."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self._allocations[name]

    def resize(self, name: str, n_bytes: int) -> None:
        """Grow/shrink an allocation in place (e.g., KV cache append)."""
        alloc = self._allocations.get(name)
        if alloc is None:
            raise KeyError(f"no allocation named {name!r}")
        delta = n_bytes - alloc.n_bytes
        if delta > 0 and self.used(alloc.tier) + delta > self.capacity(alloc.tier):
            raise OutOfMemoryError(
                f"{alloc.tier.value} OOM resizing {name!r} to {human_bytes(n_bytes)}"
            )
        alloc.n_bytes = int(n_bytes)
        self.peak_gpu_bytes = max(self.peak_gpu_bytes, self.used(MemoryTier.GPU))

    def migrate(self, name: str, tier: MemoryTier) -> int:
        """Move an allocation across tiers; returns bytes moved."""
        alloc = self._allocations.get(name)
        if alloc is None:
            raise KeyError(f"no allocation named {name!r}")
        if alloc.tier is tier:
            return 0
        if self.used(tier) + alloc.n_bytes > self.capacity(tier):
            raise OutOfMemoryError(f"{tier.value} OOM migrating {name!r}")
        alloc.tier = tier
        self.peak_gpu_bytes = max(self.peak_gpu_bytes, self.used(MemoryTier.GPU))
        return alloc.n_bytes

    def capacity(self, tier: MemoryTier) -> int:
        """Byte capacity of a tier on this hardware."""
        if tier is MemoryTier.GPU:
            return self.spec.gpu_memory_bytes
        return self.spec.cpu_memory_bytes

    def used(self, tier: MemoryTier) -> int:
        """Bytes currently allocated on ``tier``."""
        return sum(a.n_bytes for a in self._allocations.values() if a.tier is tier)

    def free_bytes(self, tier: MemoryTier) -> int:
        """Remaining capacity on ``tier``."""
        return self.capacity(tier) - self.used(tier)

    def tier_of(self, name: str) -> MemoryTier:
        """Tier currently holding the named allocation."""
        return self._allocations[name].tier

    def size_of(self, name: str) -> int:
        """Current size of the named allocation."""
        return self._allocations[name].n_bytes

    def __contains__(self, name: str) -> bool:
        return name in self._allocations
