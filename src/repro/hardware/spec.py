"""Hardware specifications mirroring Table 2 of the paper.

The numbers are the public datasheet figures for the two machines the paper
uses; "effective" fractions account for achievable (not peak) utilization,
which is what end-to-end latency tracks in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB


@dataclass(frozen=True)
class HardwareSpec:
    """A GPU + host pair with the parameters the timing/memory models need.

    Attributes:
        name: human-readable identifier.
        gpu_memory_bytes: usable GPU global memory (HBM/GDDR).
        cpu_memory_bytes: usable host DRAM for offloaded KV cache.
        gpu_flops: effective FP16 throughput (FLOP/s) for dense GEMM.
        gpu_bandwidth: effective GPU memory bandwidth (bytes/s).
        pcie_bandwidth: effective host<->device bandwidth (bytes/s).
        kernel_launch_overhead_s: fixed per-kernel launch latency.
        sync_overhead_s: cost of a stream synchronization / event wait,
            which is what makes layer-wise retrieval serialization expensive
            (Challenge 1 in the paper).
    """

    name: str
    gpu_memory_bytes: int
    cpu_memory_bytes: int
    gpu_flops: float
    gpu_bandwidth: float
    pcie_bandwidth: float
    kernel_launch_overhead_s: float = 5e-6
    sync_overhead_s: float = 2e-5

    def scaled_memory(self, gpu_memory_bytes: int) -> "HardwareSpec":
        """Return a copy with a capped GPU memory (paper Sec. 7.3.2 caps at 4GB)."""
        return HardwareSpec(
            name=f"{self.name}-{gpu_memory_bytes // GB}GB",
            gpu_memory_bytes=gpu_memory_bytes,
            cpu_memory_bytes=self.cpu_memory_bytes,
            gpu_flops=self.gpu_flops,
            gpu_bandwidth=self.gpu_bandwidth,
            pcie_bandwidth=self.pcie_bandwidth,
            kernel_launch_overhead_s=self.kernel_launch_overhead_s,
            sync_overhead_s=self.sync_overhead_s,
        )


# Cloud: NVIDIA A800 80GB (A100-class). ~310 TFLOPS FP16 tensor peak; we use
# ~45% effective for mixed GEMM/attention workloads. HBM2e ~2.0 TB/s peak,
# ~75% effective. PCIe 4.0 x16 ~25 GB/s effective of 32 GB/s peak.
CLOUD_A800 = HardwareSpec(
    name="A800-80GB",
    gpu_memory_bytes=80 * GB,
    cpu_memory_bytes=1008 * GB,
    gpu_flops=140e12,
    gpu_bandwidth=1.5e12,
    pcie_bandwidth=25e9,
)

# Edge: RTX 4060 Laptop 8GB. ~60 TFLOPS FP16 tensor peak at laptop power
# limits -> ~20 TFLOPS effective. GDDR6 272 GB/s peak, ~70% effective.
# PCIe 4.0 x8 is 16 GB/s peak, but laptop host copies from pageable DRAM
# through a mobile memory controller sustain ~8 GB/s.
EDGE_RTX4060 = HardwareSpec(
    name="RTX4060-Laptop-8GB",
    gpu_memory_bytes=8 * GB,
    cpu_memory_bytes=24 * GB,
    gpu_flops=20e12,
    gpu_bandwidth=190e9,
    pcie_bandwidth=8e9,
)

# The edge evaluation (Sec. 7.3.2) limits GPU memory usage to 4GB.
EDGE_RTX4060_4GB = EDGE_RTX4060.scaled_memory(4 * GB)

# Figure 1's motivating setup: an RTX 4090 (24GB) serving 4 requests at 16K
# context, where "model > 24GB" forces KV pressure. ~82 TFLOPS FP16 tensor
# peak -> ~35 TFLOPS effective; GDDR6X ~1.0 TB/s peak, ~75% effective;
# PCIe 4.0 x16 ~25 GB/s effective.
DESKTOP_RTX4090 = HardwareSpec(
    name="RTX4090-24GB",
    gpu_memory_bytes=24 * GB,
    cpu_memory_bytes=128 * GB,
    gpu_flops=35e12,
    gpu_bandwidth=750e9,
    pcie_bandwidth=25e9,
)
