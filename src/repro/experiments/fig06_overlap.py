"""Figure 6: prefetch latency balance and adjacent-step selection overlap.

(a) Analytic: PCIe transfer latency of a budget-sized KV slice for one
    layer versus one layer's decode compute — the imbalance that makes
    naive prefetching transfer-bound (Sec. 5.2).
(b) Functional: mean overlap of the retrieval head's selections between
    adjacent decode steps (the paper measures >80%), which is what elastic
    loading converts into transfer savings.
"""

from __future__ import annotations

import numpy as np

from repro.core.elastic import ElasticTransferTracker
from repro.experiments.common import ExperimentResult, make_functional_setup, register
from repro.hardware.spec import CLOUD_A800
from repro.models.config import LLAMA_LIKE_8B
from repro.perf.engines import SPECONTEXT
from repro.perf.simulate import PerfSimulator
from repro.workloads.harness import decode_with_policy, prepare_prompt
from repro.workloads.longwriter import make_writing_example

ANALYTIC_BUDGETS = (32, 64, 128, 256, 512, 1024, 2048)
FUNCTIONAL_BUDGETS = (16, 32, 64, 128, 256)


@register("fig06")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 6(a) and (b)."""
    result = ExperimentResult(
        experiment_id="fig06",
        title="Figure 6: (a) prefetch vs layer latency; (b) adjacent-step "
        "selection overlap",
        headers=["Part", "KV budget", "Value"],
        precision=3,
    )

    # (a) per-layer budget transfer vs one layer's decode compute at 16K.
    sim = PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, budget=2048)
    layer_s = sim.layer_compute_seconds(SPECONTEXT, attended=2048, batch=1)
    kv_tok = LLAMA_LIKE_8B.kv_bytes_per_token_layer()
    budgets = ANALYTIC_BUDGETS[:4] if quick else ANALYTIC_BUDGETS
    for budget in budgets:
        transfer_s = sim.latency.transfer_seconds(budget * kv_tok)
        result.rows.append(
            ["prefetch-latency", budget, f"{transfer_s * 1e3:.3f} ms"]
        )
    result.rows.append(
        ["layer-inference", "-", f"{layer_s * 1e3:.3f} ms per layer"]
    )

    # (b) functional overlap on a long generation.
    setup = make_functional_setup(seed=seed)
    rng = np.random.default_rng(seed + 10)
    example = make_writing_example(
        setup.tokenizer,
        rng,
        n_sections=3 if quick else 8,
        section_len=6 if quick else 10,
        prompt_len=96 if quick else 160,
    )
    prepared = prepare_prompt(setup.model, example.prompt_ids)
    budgets_b = FUNCTIONAL_BUDGETS[:3] if quick else FUNCTIONAL_BUDGETS
    for budget in budgets_b:
        policy = setup.bench.policy("Ours", budget)
        decode_with_policy(
            setup.model, prepared, policy, example.max_new_tokens, example.stop_ids
        )
        if len(policy.selection_history) < 2:
            # The budget covers the whole cache: no sparse steps occur.
            result.rows.append(
                ["selection-overlap", budget, "budget >= cache (full attention)"]
            )
            continue
        tracker = ElasticTransferTracker(bytes_per_token=kv_tok)
        for selection in policy.selection_history:
            tracker.observe(selection)
        overlap = tracker.mean_overlap
        saved = tracker.transfer_reduction_vs_full_reload()
        result.rows.append(
            ["selection-overlap", budget,
             f"{overlap:.2f} overlap, {saved:.0%} transfer saved"]
        )
    result.notes.append(
        "paper Fig. 6(b) reports >80% overlap between adjacent generations; "
        "elastic loading transfers only the complement"
    )
    return result
