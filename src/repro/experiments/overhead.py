"""Sec. 7.4 overhead evaluation: retrieval-head memory and pruning ratio.

Reports, per teacher architecture: the full DLM's parameter count, the
retrieval head's retained parameters and FP16 bytes (the paper's "only
about 60MB" for Llama3/Qwen3-scale teachers), the pruning reduction
(paper: >90%), and the head's K-cache footprint at a long context.
"""

from __future__ import annotations

from repro.distill.dlm import full_dlm_analog, pruning_report
from repro.experiments.common import ExperimentResult, make_functional_setup, register
from repro.models.config import EDGE_LIKE_1B, LLAMA_LIKE_8B, QWEN_LIKE_8B

K_CACHE_CONTEXT = 16384


@register("overhead")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate the Sec. 7.4 overhead numbers."""
    result = ExperimentResult(
        experiment_id="overhead",
        title="Sec. 7.4: retrieval-head overhead (memory and pruning)",
        headers=[
            "Teacher",
            "DLM params",
            "Head params",
            "Head FP16",
            "Reduction",
            f"K cache @ {K_CACHE_CONTEXT // 1024}K",
        ],
    )
    for teacher in (LLAMA_LIKE_8B, QWEN_LIKE_8B, EDGE_LIKE_1B):
        report = pruning_report(teacher)
        k_cache = (
            teacher.n_q_heads * K_CACHE_CONTEXT * teacher.head_dim * 2
        )
        result.rows.append(
            [
                teacher.name,
                f"{report.dlm_params / 1e9:.2f}B",
                f"{report.retained_params / 1e6:.1f}M",
                f"{report.retained_bytes_fp16 / 1e6:.0f}MB",
                f"{report.reduction:.1%}",
                f"{k_cache / 1e6:.0f}MB",
            ]
        )

    # The functional retrieval head reports the same accounting on the
    # constructed models, tying the analytic claim to running code.
    setup = make_functional_setup(seed=seed)
    head = setup.bench.head
    dlm = full_dlm_analog(setup.config)
    functional_reduction = 1.0 - head.parameter_count() / dlm.total_params()
    result.rows.append(
        [
            setup.config.name,
            f"{dlm.total_params() / 1e6:.2f}M",
            f"{head.parameter_count() / 1e3:.0f}K",
            f"{head.parameter_count() * 2 / 1e6:.2f}MB",
            f"{functional_reduction:.1%}",
            f"{head.k_cache_bytes() / 1e3:.0f}KB (current)",
        ]
    )
    result.notes.append(
        "paper reports ~60MB retrieval-head weights for Llama3/Qwen3-8B "
        "teachers and >90% parameter reduction vs the full DLM"
    )
    return result
