"""Figure 8: LongBench accuracy versus KV budget.

Four synthetic LongBench-shaped tasks, five engines (Quest, ClusterKV,
ShadowKV, Ours, plus the Full-attention reference line), swept over the
scaled budget axis (64/128/256/512 here maps to the paper's
512/1024/2048/4096 over ~8x longer contexts; DESIGN.md records the
scaling). The expected shape: accuracy rises with budget; Ours may trail
ClusterKV at the smallest budget but matches full attention from the
mid budgets on.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ACCURACY_BUDGETS,
    PAPER_BUDGET_LABELS,
    ExperimentResult,
    make_functional_setup,
    register,
)
from repro.workloads.harness import sweep_qa
from repro.workloads.longbench import generate_examples

ENGINES = ("Quest", "ClusterKV", "ShadowKV", "Ours")
TASK_PARAMS = {
    "trivia": dict(n_distractors=40, answer_len=4),
    "2wikimqa": dict(n_distractors=24, tail_len=3),
    "hotpotqa": dict(n_distractors=32, tail_len=3),
    "passage_count": dict(n_distinct=8, n_duplicates=5, body_len=16),
}


@register("fig08")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 8's four accuracy-vs-budget panels."""
    setup = make_functional_setup(seed=seed)
    rng = np.random.default_rng(seed + 100)
    context_len = 512 if quick else 1024
    n_examples = 2 if quick else 6
    budgets = list(ACCURACY_BUDGETS[:2] if quick else ACCURACY_BUDGETS)

    result = ExperimentResult(
        experiment_id="fig08",
        title="Figure 8: accuracy vs KV budget (synthetic LongBench)",
        headers=["Task", "Engine"]
        + [f"B={b} (~{PAPER_BUDGET_LABELS[b]})" for b in budgets],
        precision=3,
    )
    for task, params in TASK_PARAMS.items():
        if quick and "n_distractors" in params:
            params = dict(params)
            params["n_distractors"] = min(params["n_distractors"], 12)
        examples = generate_examples(
            task, setup.tokenizer, rng, n_examples,
            context_len=context_len, **params,
        )
        cells = sweep_qa(
            setup.model, setup.bench, examples, ["Full", *ENGINES], budgets
        )
        full_score = cells[("Full", budgets[-1])]
        result.rows.append(
            [task, "Full Attn"] + [round(full_score, 3)] * len(budgets)
        )
        for engine in ENGINES:
            result.rows.append(
                [task, engine]
                + [round(cells[(engine, b)], 3) for b in budgets]
            )
    result.notes.append(
        "scores are token-F1 (QA tasks) / relative-error count score "
        "(passage_count) in [0,1]; budgets are scaled with the 8x-shorter "
        "synthetic contexts"
    )
    return result
