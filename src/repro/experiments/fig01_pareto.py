"""Figure 1: accuracy/throughput Pareto frontiers, input vs reasoning.

Each engine is a point (normalized accuracy, normalized throughput) in two
scenarios on the motivating RTX-4090 setup (4 requests, 16K context, model
KV pressure beyond 24GB):

(a) long-context *input*: accuracy from the synthetic LongBench trivia
    task; throughput from a [16K in, 1K out] mix;
(b) long-context *reasoning*: accuracy from the LongWriter judge;
    throughput from a [1K in, 8K out] mix.

Budgets {128, 256} map to the paper's {1024, 2048}. Full-attention engines
(HF, FlashAttention, FlashInfer) sit at accuracy 1.0 with low throughput;
SpeContext should push the frontier out in both panels — further in (b),
where the baselines' retained generated KV erases their sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, make_functional_setup, register
from repro.hardware.spec import DESKTOP_RTX4090
from repro.models.config import LLAMA_LIKE_8B
from repro.perf.engines import (
    CLUSTERKV,
    FLASHINFER,
    HF_EAGER_OFFLOAD,
    HF_FLASH_OFFLOAD,
    QUEST,
    SHADOWKV,
    SPECONTEXT,
    OffloadPolicy,
)
from repro.perf.simulate import PerfSimulator, Workload
from repro.workloads.harness import decode_with_policy, prepare_prompt, sweep_qa
from repro.workloads.judge import judge_generation, mean_scores
from repro.workloads.longbench import generate_examples
from repro.workloads.longwriter import generate_writing_examples

# The RTX 4090 cannot hold 4x16K KV plus the weights, so the
# full-attention engines run with complete KV offloading (the paper's
# "Model > 24GB" pressure is the point of the figure).
PERF_ENGINES = {
    "Huggingface": HF_EAGER_OFFLOAD,
    "FlashAttention": HF_FLASH_OFFLOAD,
    "FlashInfer": FLASHINFER.with_(
        name="FlashInfer(offload)", offload=OffloadPolicy.FULL_CPU
    ),
    "Quest": QUEST,
    "ClusterKV": CLUSTERKV,
    "ShadowKV": SHADOWKV,
    "Ours": SPECONTEXT,
}
FULL_ATTENTION = ("Huggingface", "FlashAttention", "FlashInfer")
ACCURACY_ENGINE = {
    "Quest": "Quest",
    "ClusterKV": "ClusterKV",
    "ShadowKV": "ShadowKV",
    "Ours": "Ours",
}
# Paper budgets {1024, 2048}, scaled per scenario context: the QA contexts
# are ~1K tokens (budgets 128/256), the writing contexts ~250 (budgets
# 32/64).
PAPER_BUDGETS = (1024, 2048)
INPUT_BUDGETS = (128, 256)
REASONING_BUDGETS = (32, 64)
INPUT_MIX = Workload(16384, 1024, 4)
REASONING_MIX = Workload(1024, 8192, 4)


def _throughputs(quick: bool) -> dict[str, dict[str, float]]:
    sim = PerfSimulator(LLAMA_LIKE_8B, DESKTOP_RTX4090, budget=2048)
    n_samples = 6 if quick else 24
    out: dict[str, dict[str, float]] = {"input": {}, "reasoning": {}}
    for name, engine in PERF_ENGINES.items():
        for scenario, mix in (("input", INPUT_MIX), ("reasoning", REASONING_MIX)):
            batch = 1 if not engine.supports_multi_request else mix.batch
            timeline = sim.simulate(
                engine, Workload(mix.in_len, mix.out_len, batch), n_samples=n_samples
            )
            # Aggregate throughput over the 4 requests; single-request
            # engines serve them sequentially, so their aggregate equals
            # their single-request rate.
            tps = 0.0 if timeline.oom else timeline.tokens_per_second
            out[scenario][name] = tps
    return out


def _input_accuracy(setup, quick: bool, seed: int) -> dict[tuple[str, int], float]:
    rng = np.random.default_rng(seed + 11)
    examples = generate_examples(
        "trivia",
        setup.tokenizer,
        rng,
        2 if quick else 5,
        context_len=512 if quick else 1024,
        n_distractors=16 if quick else 40,
        answer_len=4,
    )
    engines = ["Full"] + list(ACCURACY_ENGINE.values())
    return sweep_qa(
        setup.model, setup.bench, examples, engines, list(INPUT_BUDGETS)
    )


def _reasoning_accuracy(setup, quick: bool, seed: int) -> dict[tuple[str, int], float]:
    rng = np.random.default_rng(seed + 23)
    examples = generate_writing_examples(
        setup.tokenizer,
        rng,
        1 if quick else 3,
        n_sections=4 if quick else 8,
        section_len=6 if quick else 10,
        prompt_len=96 if quick else 160,
    )
    cells: dict[tuple[str, int], float] = {}
    for engine in ["Full"] + list(ACCURACY_ENGINE.values()):
        for budget in REASONING_BUDGETS:
            scores = []
            for example in examples:
                prepared = prepare_prompt(setup.model, example.prompt_ids)
                policy = (
                    None if engine == "Full" else setup.bench.policy(engine, budget)
                )
                out = decode_with_policy(
                    setup.model, prepared, policy,
                    example.max_new_tokens, example.stop_ids,
                )
                scores.append(judge_generation(out.token_ids, example))
            cells[(engine, budget)] = mean_scores(scores).average
    return cells


@register("fig01")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 1's two Pareto panels."""
    setup = make_functional_setup(seed=seed)
    throughput = _throughputs(quick)
    acc_input = _input_accuracy(setup, quick, seed)
    acc_reasoning = _reasoning_accuracy(setup, quick, seed)

    base_tps = {}
    for s in ("input", "reasoning"):
        positive = [v for v in throughput[s].values() if v > 0]
        base_tps[s] = throughput[s]["Huggingface"] or min(positive)
    full_acc = {
        "input": acc_input[("Full", INPUT_BUDGETS[-1])],
        "reasoning": acc_reasoning[("Full", REASONING_BUDGETS[-1])],
    }

    result = ExperimentResult(
        experiment_id="fig01",
        title="Figure 1: Pareto points (normalized accuracy, normalized "
        "throughput) on RTX4090, 4x16K requests",
        headers=[
            "Engine", "Budget (~paper)",
            "acc(input)", "thpt(input)",
            "acc(reasoning)", "thpt(reasoning)",
        ],
        precision=3,
    )
    for name in PERF_ENGINES:
        budget_idx = (len(PAPER_BUDGETS) - 1,) if name in FULL_ATTENTION else (0, 1)
        for i in budget_idx:
            if name in FULL_ATTENTION:
                a_in, a_re = 1.0, 1.0
                label = "-"
            else:
                acc_key = ACCURACY_ENGINE[name]
                a_in = acc_input[(acc_key, INPUT_BUDGETS[i])] / max(
                    full_acc["input"], 1e-9
                )
                a_re = acc_reasoning[(acc_key, REASONING_BUDGETS[i])] / max(
                    full_acc["reasoning"], 1e-9
                )
                label = f"~{PAPER_BUDGETS[i]}"
            t_in = throughput["input"][name] / max(base_tps["input"], 1e-9)
            t_re = throughput["reasoning"][name] / max(base_tps["reasoning"], 1e-9)
            result.rows.append(
                [name, label, round(a_in, 3), round(t_in, 2),
                 round(a_re, 3), round(t_re, 2)]
            )
    result.notes.append(
        "throughput normalized to Huggingface eager, per request; accuracy "
        "normalized to full attention (the paper's normalized axes)"
    )
    return result
