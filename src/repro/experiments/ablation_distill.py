"""Extension ablation: retrieval accuracy vs distillation quality.

The paper's Sec. 3 argument — a better-distilled DLM shares more of the
teacher's information focus — implies a monotone relationship between
distillation quality and end-task accuracy under a fixed budget. The
retrieval head's ``noise`` knob models distillation imperfection
(Gaussian perturbation of the QK projections); this experiment sweeps it
and reports task accuracy, tying the information-theoretic claim to a
measurable dial. Not a paper artifact; an ablation DESIGN.md calls out.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, make_functional_setup, register
from repro.workloads.harness import sweep_qa
from repro.workloads.longbench import generate_examples

NOISE_LEVELS = (0.2, 1.0, 1.8, 2.6)
BUDGETS = (64, 128)


@register("ablation-distill")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep distillation noise at fixed budgets on the trivia task."""
    noises = NOISE_LEVELS[:2] if quick else NOISE_LEVELS
    n_examples = 2 if quick else 5
    context_len = 384 if quick else 768

    result = ExperimentResult(
        experiment_id="ablation-distill",
        title="Ablation: accuracy vs retrieval-head distillation quality "
        "(lower noise = better-distilled DLM)",
        headers=["Head noise"] + [f"F1 @ B={b}" for b in BUDGETS] + ["Full Attn"],
        precision=3,
    )
    for noise in noises:
        setup = make_functional_setup(seed=seed, head_noise=noise)
        rng = np.random.default_rng(seed + 300)  # same examples per noise
        examples = generate_examples(
            "trivia", setup.tokenizer, rng, n_examples,
            context_len=context_len, n_distractors=24, answer_len=4,
        )
        cells = sweep_qa(
            setup.model, setup.bench, examples, ["Full", "Ours"], list(BUDGETS)
        )
        result.rows.append(
            [noise]
            + [round(cells[("Ours", b)], 3) for b in BUDGETS]
            + [round(cells[("Full", BUDGETS[-1])], 3)]
        )
    result.notes.append(
        "the Sec. 3 information-focus claim as a dial: accuracy decreases "
        "as the DLM drifts from the teacher, at every budget"
    )
    return result
