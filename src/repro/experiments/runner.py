"""CLI entry point: regenerate any paper table or figure.

Usage::

    specontext-experiments --list
    specontext-experiments fig08 table3
    specontext-experiments all --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="specontext-experiments",
        description="Regenerate the SpeContext paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig08 table3), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced workload sizes (seconds instead of minutes)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    runners = registry()
    if args.list or not args.experiments:
        for experiment_id in sorted(runners):
            print(experiment_id)
        return 0

    requested = (
        sorted(runners) if args.experiments == ["all"] else args.experiments
    )
    unknown = [e for e in requested if e not in runners]
    if unknown:
        print(f"unknown experiments: {unknown}; use --list", file=sys.stderr)
        return 2

    for experiment_id in requested:
        start = time.time()
        result = runners[experiment_id](quick=args.quick, seed=args.seed)
        print(result.format())
        print(f"[{experiment_id} finished in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
