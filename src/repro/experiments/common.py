"""Shared experiment infrastructure: results, registry, model zoo.

Every experiment module exposes ``run(quick=False, seed=0) ->
ExperimentResult``. ``quick`` shrinks workload sizes so the benchmark suite
and smoke tests finish in seconds; the full setting regenerates the
paper-scale artifact. The registry maps experiment ids (fig01..fig11,
table3, overhead) to their runners for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.retrieval_head import RetrievalHeadConfig
from repro.models.builder import CircuitPlan, build_recall_model
from repro.models.config import AttentionKind, ModelConfig, tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.utils.tables import format_table
from repro.workloads.harness import PolicyBench


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` carry the same row/series structure as the paper artifact;
    ``notes`` record calibration caveats surfaced in EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    precision: int = 2

    def format(self) -> str:
        text = format_table(
            self.headers, self.rows, precision=self.precision, title=self.title
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


Runner = Callable[..., ExperimentResult]

_REGISTRY: dict[str, Runner] = {}


def register(experiment_id: str) -> Callable[[Runner], Runner]:
    """Decorator adding a runner to the experiment registry."""

    def deco(fn: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        return fn

    return deco


def registry() -> dict[str, Runner]:
    """All registered experiments (import side effects resolved)."""
    # Import the experiment modules so their @register decorators run.
    from repro.experiments import (  # noqa: F401
        ablation_distill,
        fig01_pareto,
        fig02_overhead,
        fig05_similarity,
        fig06_overlap,
        fig08_longbench,
        fig09_longwriter,
        fig10_single_request,
        fig11_ablation,
        overhead,
        table3_throughput,
    )

    return dict(_REGISTRY)


# ---- functional model zoo -----------------------------------------------------

# The accuracy experiments run on constructed recall transformers scaled to
# laptop size; the budget axis is scaled with the context (DESIGN.md):
# paper budget 512/1024/2048/4096 over ~8k contexts maps to 64/128/256/512
# over ~1k contexts.
ACCURACY_BUDGETS = (64, 128, 256, 512)
PAPER_BUDGET_LABELS = {64: 512, 128: 1024, 256: 2048, 512: 4096}

# Distillation imperfection of the retrieval head used across accuracy
# experiments; calibrated so the budget sweep produces the graded curves of
# Fig. 8 (a perfect head saturates every budget).
DEFAULT_HEAD_NOISE = 1.8


@dataclass
class FunctionalSetup:
    """A constructed model plus its tokenizer and policy bench."""

    model: TransformerLM
    tokenizer: SyntheticTokenizer
    bench: PolicyBench
    config: ModelConfig


def make_functional_setup(
    attention: AttentionKind = AttentionKind.GQA,
    vocab_size: int = 2048,
    n_layers: int = 2,
    seed: int = 0,
    head_noise: float = DEFAULT_HEAD_NOISE,
    content_correlation: float = 0.45,
) -> FunctionalSetup:
    """Build a recall model + retrieval-head bench for accuracy runs."""
    rng = np.random.default_rng(seed)
    tokenizer = SyntheticTokenizer(vocab_size)
    config = tiny_test_config(
        attention=attention, n_layers=n_layers, vocab_size=vocab_size
    )
    plan = CircuitPlan(
        content_correlation=content_correlation, induction_sharpness=10.0
    )
    model = TransformerLM(build_recall_model(config, tokenizer, rng, plan))
    bench = PolicyBench(
        model,
        tokenizer,
        head_rng=np.random.default_rng(seed + 1),
        head_config=RetrievalHeadConfig(noise=head_noise),
    )
    return FunctionalSetup(
        model=model, tokenizer=tokenizer, bench=bench, config=config
    )
