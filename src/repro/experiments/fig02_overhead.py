"""Figure 2(a): the two motivating overheads of the existing paradigm.

Part 1 — layer-wise retrieval overhead: with per-layer retrieve-then-load
on the critical path (Challenge 1), the share of a decode step not spent
computing grows with context; the paper reports up to 60%.

Part 2 — the offload cliff (Challenge 3): a predetermined all-GPU/all-CPU
placement collapses when a tiny length increase crosses the memory
boundary (the paper's 45.3 -> 9.7 tokens/s at 120K -> 128K). We locate the
boundary our memory model implies for the same model/batch and evaluate
just below and just above it.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, register
from repro.hardware.spec import CLOUD_A800
from repro.models.config import LLAMA_LIKE_8B
from repro.perf.engines import HF_FLASH_ATTENTION, QUEST, OffloadPolicy
from repro.perf.simulate import PerfSimulator, Workload

CLIFF_BATCH = 4
CLIFF_DELTA = 8 * 1024


@register("fig02")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 2(a)'s overhead numbers."""
    sim = PerfSimulator(LLAMA_LIKE_8B, CLOUD_A800, budget=2048)
    result = ExperimentResult(
        experiment_id="fig02",
        title="Figure 2(a): layer-wise retrieval overhead and the offload cliff",
        headers=["Part", "Setting", "Value"],
    )

    # Part 1: overhead fraction of a sync-fetch sparse engine (Quest-style
    # layer-wise retrieval with offloaded KV) vs context length.
    quest_offloaded = QUEST.with_(offload=OffloadPolicy.FULL_CPU)
    lengths = (8192, 16384) if quick else (8192, 16384, 32768, 65536)
    worst = 0.0
    for seq in lengths:
        sample = sim.decode_step(quest_offloaded, seq, seq, batch=1)
        frac = sample.timings.overhead_fraction
        worst = max(worst, frac)
        result.rows.append(
            ["retrieval-overhead", f"context {seq // 1024}K", f"{frac:.0%} of step"]
        )
    result.rows.append(
        ["retrieval-overhead", "worst observed", f"{worst:.0%} (paper: up to 60%)"]
    )

    # Part 2: the offload cliff. Find the largest context (at CLIFF_BATCH
    # requests) that still fits entirely on the GPU, then compare decode
    # throughput just below vs just above with a static placement.
    static_full = HF_FLASH_ATTENTION.with_(
        name="flash-static", offload=OffloadPolicy.STATIC
    )
    lo, hi = 1024, 512 * 1024
    while hi - lo > 256:
        mid = (lo + hi) // 2
        fits = (
            sim.resident_bytes(static_full, mid, CLIFF_BATCH, sim.model.n_layers)
            <= CLOUD_A800.gpu_memory_bytes
        )
        lo, hi = (mid, hi) if fits else (lo, mid)
    boundary = lo
    below = boundary - CLIFF_DELTA
    above = boundary + CLIFF_DELTA
    tps = {}
    for length in (below, above):
        timeline = sim.simulate(
            static_full,
            Workload(length, 512, CLIFF_BATCH),
            n_samples=4 if quick else 16,
        )
        tps[length] = 0.0 if timeline.oom else timeline.decode_tokens_per_second
    drop = 1.0 - tps[above] / tps[below] if tps[below] else 0.0
    result.rows.append(
        ["offload-cliff", f"{below // 1024}K x{CLIFF_BATCH} (all GPU)",
         f"{tps[below]:.1f} tok/s"]
    )
    result.rows.append(
        ["offload-cliff", f"{above // 1024}K x{CLIFF_BATCH} (all CPU)",
         f"{tps[above]:.1f} tok/s"]
    )
    result.rows.append(
        ["offload-cliff", "degradation", f"{drop:.0%} (paper: >80%)"]
    )
    result.notes.append(
        f"our memory model places the all-GPU boundary at {boundary // 1024}K "
        f"for batch {CLIFF_BATCH} (the paper observed it between 120K and 128K "
        f"with their allocator)"
    )
    return result
