"""Table 3: end-to-end decode throughput, high-end GPU, multiple requests.

Reproduces the paper's cloud table: two 8B-class models, four
[input, output] mixes, five engines, each at the paper's published request
count (the grey numbers in Table 3). Cells report decode tokens/s with the
request count and the speedup normalized to Full Attention (Eager) — or to
the first non-OOM engine when eager OOMs, as the paper does.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, register
from repro.hardware.spec import CLOUD_A800
from repro.models.config import DEEPSEEK_DISTILL_LIKE_8B, QWEN_LIKE_8B, ModelConfig
from repro.perf.engines import CLOUD_ENGINES, EngineSpec
from repro.perf.simulate import PerfSimulator, Workload

WORKLOADS = (
    (2048, 16384),
    (2048, 32768),
    (16384, 2048),
    (32768, 2048),
)

# Request counts per cell, as published in Table 3 (DeepSeek rows; the Qwen
# rows use the same counts where reported). ShadowKV's public kernels lack
# Qwen3 support (the paper's '-') so those cells are skipped.
PAPER_BATCHES: dict[str, tuple[int, int, int, int]] = {
    "Full Attn(Eager)": (4, 4, 4, 4),
    "Full Attn(Flash Attn)": (16, 8, 8, 6),
    "Full Attn(FlashInfer)": (16, 8, 8, 8),
    "ShadowKV": (16, 16, 32, 64),
    "Ours": (32, 32, 16, 16),
}

SHADOWKV_UNSUPPORTED = ("qwen3-8b-like",)


def _cell(
    sim: PerfSimulator, engine: EngineSpec, workload: Workload, n_samples: int
) -> tuple[str, float]:
    timeline = sim.simulate(engine, workload, n_samples=n_samples)
    if timeline.oom:
        return "OOM", 0.0
    tps = timeline.decode_tokens_per_second
    return f"{tps:.1f} ({workload.batch})", tps


@register("table3")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Table 3."""
    models: tuple[ModelConfig, ...] = (DEEPSEEK_DISTILL_LIKE_8B, QWEN_LIKE_8B)
    n_samples = 8 if quick else 32
    result = ExperimentResult(
        experiment_id="table3",
        title="Table 3: decode throughput (tokens/s) on A800-80GB, multi-request",
        headers=["Model", "[In, Out]"]
        + [engine.name for engine in CLOUD_ENGINES]
        + ["Ours vs Eager"],
    )
    for model in models:
        sim = PerfSimulator(model, CLOUD_A800, budget=2048)
        for idx, (in_len, out_len) in enumerate(WORKLOADS):
            row: list = [model.name, Workload(in_len, out_len).label]
            eager_tps = 0.0
            baseline_tps = 0.0
            ours_tps = 0.0
            for engine in CLOUD_ENGINES:
                if (
                    engine.name == "ShadowKV"
                    and model.name in SHADOWKV_UNSUPPORTED
                ):
                    row.append("-")
                    continue
                batch = PAPER_BATCHES[engine.name][idx]
                text, tps = _cell(
                    sim, engine, Workload(in_len, out_len, batch), n_samples
                )
                row.append(text)
                if engine.name == "Full Attn(Eager)":
                    eager_tps = tps
                if baseline_tps == 0.0 and tps > 0.0:
                    baseline_tps = tps
                if engine.name == "Ours":
                    ours_tps = tps
            reference = eager_tps or baseline_tps
            row.append(f"{ours_tps / reference:.2f}x" if reference else "-")
            result.rows.append(row)
    result.notes.append(
        "request counts per cell follow the paper's Table 3; speedup is vs "
        "Eager when it runs, else vs the first non-OOM engine"
    )
    return result
