"""Figure 9 + Table 4: LongWriter quality scores in the reasoning scenario.

Three functional model families stand in for the paper's Llama3-8B,
DeepSeek-Distill-Llama-8B and Qwen3-8B (the third uses MLA attention, for
which the layer-wise baselines have no public support — mirroring the '-'
cells of the paper). Outputs are judged on six dimensions by the
deterministic judge; the key reproduced phenomenon: baselines that retain
all newly generated KV produce budget-independent outputs (their tiny
prompts fit any budget), while Ours varies with budget and approaches the
full-attention score as the budget grows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    FunctionalSetup,
    make_functional_setup,
    register,
)
from repro.models.config import AttentionKind
from repro.workloads.harness import decode_with_policy, prepare_prompt
from repro.workloads.judge import DIMENSIONS, judge_generation, mean_scores
from repro.workloads.longwriter import generate_writing_examples

# Scaled budget axis: 32/64/128 here ~ the paper's 1024/2048/4096 (the
# writing contexts are ~250 tokens vs the paper's multi-thousand).
WRITER_BUDGETS = (32, 64, 128)
PAPER_WRITER_LABELS = {32: 1024, 64: 2048, 128: 4096}
BASELINES = ("Quest", "ClusterKV", "ShadowKV")

MODEL_FAMILIES = (
    ("llama-like", AttentionKind.GQA, 0),
    ("deepseek-distill-like", AttentionKind.GQA, 7),
    ("qwen-like(MLA)", AttentionKind.MLA, 13),
)


def _evaluate(
    setup: FunctionalSetup,
    examples,
    engine: str,
    budget: int,
):
    scores = []
    for example in examples:
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        policy = None if engine == "Full" else setup.bench.policy(engine, budget)
        out = decode_with_policy(
            setup.model, prepared, policy, example.max_new_tokens, example.stop_ids
        )
        scores.append(judge_generation(out.token_ids, example))
    return mean_scores(scores)


@register("fig09")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 9 / Table 4."""
    n_examples = 1 if quick else 4
    budgets = WRITER_BUDGETS[:2] if quick else WRITER_BUDGETS
    families = MODEL_FAMILIES[:1] if quick else MODEL_FAMILIES

    result = ExperimentResult(
        experiment_id="fig09",
        title="Figure 9 / Table 4: LongWriter six-dimension judge scores",
        headers=["Model", "Engine", "Budget (~paper)"]
        + [d for d in DIMENSIONS]
        + ["Average"],
    )
    for family, attention, fam_seed in families:
        setup = make_functional_setup(
            attention=attention, seed=seed + fam_seed, n_layers=2
        )
        rng = np.random.default_rng(seed + fam_seed + 500)
        examples = generate_writing_examples(
            setup.tokenizer,
            rng,
            n_examples,
            n_sections=4 if quick else 8,
            section_len=6 if quick else 10,
            prompt_len=96 if quick else 160,
        )

        full = _evaluate(setup, examples, "Full", 0)
        result.rows.append(
            [family, "Full Attn", "-"]
            + [round(v, 2) for v in full.as_dict().values()]
            + [round(full.average, 2)]
        )
        mla = attention is AttentionKind.MLA
        for budget in budgets:
            for engine in BASELINES:
                if mla:
                    # The layer-wise baselines have no MLA support (the
                    # paper's 'None Support' cells).
                    continue
                score = _evaluate(setup, examples, engine, budget)
                result.rows.append(
                    [family, engine, f"{budget} (~{PAPER_WRITER_LABELS[budget]})"]
                    + [round(v, 2) for v in score.as_dict().values()]
                    + [round(score.average, 2)]
                )
            ours = _evaluate(setup, examples, "Ours", budget)
            result.rows.append(
                [family, "Ours", f"{budget} (~{PAPER_WRITER_LABELS[budget]})"]
                + [round(v, 2) for v in ours.as_dict().values()]
                + [round(ours.average, 2)]
            )
    result.notes.append(
        "baseline scores are budget-independent because the ~100-token "
        "prompts fit inside every budget while generated KV is fully "
        "retained (the paper's Sec. 7.2.2 observation)"
    )
    return result
