"""Figure 10: end-to-end single-request throughput, cloud and edge.

(a) Cloud: A800-80GB, 8B-class model, all seven engines (Quest and
    ClusterKV appear here because their kernels are single-request).
(b) Edge: RTX 4060 Laptop capped at 4GB, 1B reasoning model; full
    attention and ShadowKV run with their offloading strategies.

Both report end-to-end throughput (prefill + decode), which is what
penalizes the baselines' prompt preprocessing in the reasoning mixes.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, register
from repro.hardware.spec import CLOUD_A800, EDGE_RTX4060_4GB
from repro.models.config import DEEPSEEK_DISTILL_LIKE_8B, EDGE_LIKE_1B
from repro.perf.engines import (
    HF_EAGER_OFFLOAD,
    HF_FLASH_OFFLOAD,
    SHADOWKV,
    SINGLE_REQUEST_ENGINES,
    SPECONTEXT,
)
from repro.perf.simulate import PerfSimulator, Workload

WORKLOADS = (
    (2048, 16384),
    (2048, 32768),
    (16384, 2048),
    (32768, 2048),
)

EDGE_ENGINES = (HF_EAGER_OFFLOAD, HF_FLASH_OFFLOAD, SHADOWKV, SPECONTEXT)


@register("fig10")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 10(a) and (b)."""
    n_samples = 8 if quick else 32
    result = ExperimentResult(
        experiment_id="fig10",
        title="Figure 10: single-request end-to-end throughput (tokens/s)",
        headers=["Scenario", "Engine"]
        + [Workload(i, o).label for i, o in WORKLOADS],
    )

    cloud = PerfSimulator(DEEPSEEK_DISTILL_LIKE_8B, CLOUD_A800, budget=2048)
    for engine in SINGLE_REQUEST_ENGINES:
        row: list = ["cloud", engine.name]
        for in_len, out_len in WORKLOADS:
            timeline = cloud.simulate(
                engine, Workload(in_len, out_len, 1), n_samples=n_samples
            )
            row.append("OOM" if timeline.oom else round(timeline.tokens_per_second, 2))
        result.rows.append(row)

    edge = PerfSimulator(EDGE_LIKE_1B, EDGE_RTX4060_4GB, budget=2048)
    for engine in EDGE_ENGINES:
        row = ["edge", engine.name]
        for in_len, out_len in WORKLOADS:
            timeline = edge.simulate(
                engine, Workload(in_len, out_len, 1), n_samples=n_samples
            )
            row.append("OOM" if timeline.oom else round(timeline.tokens_per_second, 2))
        result.rows.append(row)

    result.notes.append(
        "edge GPU memory capped at 4GB as in Sec. 7.3.2; edge full-attention "
        "baselines run with complete KV offloading"
    )
    return result
