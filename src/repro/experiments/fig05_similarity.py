"""Figure 5(a): head-level vs batch-level retrieval similarity.

Two curves over the budget axis:

- *attention-weight accumulation*: how much of the teacher LLM's true
  attention mass the retrieval head's selection covers — computed by
  capturing the teacher's decode attention and summing it over the
  selected positions;
- *hit rate*: how often decoding under the selection reproduces the token
  full attention would generate.

The paper's conclusion, reproduced here: head-level selection dominates
batch-level at every budget, which is why the lightweight retrieval head
keeps per-head Top-K.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, make_functional_setup, register
from repro.models.config import AttentionKind
from repro.workloads.harness import decode_with_policy, prepare_prompt
from repro.workloads.longbench import make_trivia

BUDGETS = (32, 64, 128, 256, 512)


def _accumulation(setup, prepared, example, budget: int, level: str) -> float:
    """Mean teacher attention mass covered by the head's selection."""
    # Capture the teacher's full attention on a full-attention decode.
    full = decode_with_policy(
        setup.model, prepared, None, example.max_new_tokens, example.stop_ids,
        capture_attention=True,
    )
    head = setup.bench.head
    cfg = setup.config
    prompt = prepared.prompt_ids
    head.reset()
    head.observe(prompt[:-1])

    masses = []
    pending = prepared.pending_token
    for step, per_layer in enumerate(full.attention_trace):
        if len(head) > budget:
            selection = head.select(pending, budget, level=level)
            # Teacher mass over selected positions, layer-1 weights
            # (steady-state layers carry the induction circuit).
            weights = per_layer[min(1, len(per_layer) - 1)]
            seq = weights.shape[-1]
            for kv_head in range(selection.shape[0]):
                idx = selection[kv_head]
                idx = idx[idx < seq]
                if cfg.attention in (AttentionKind.MHA, AttentionKind.MLA):
                    w = weights[kv_head]
                else:
                    group = cfg.group_size
                    w = weights[kv_head * group : (kv_head + 1) * group].max(axis=0)
                masses.append(float(w[idx].sum() / max(w.sum(), 1e-12)))
        head.observe(pending)
        if step < len(full.token_ids):
            pending = full.token_ids[step]
    return float(np.mean(masses)) if masses else 1.0


def _hit_rate(setup, prepared, example, budget: int, level: str) -> float:
    """Token agreement between sparse and full decoding."""
    full = decode_with_policy(
        setup.model, prepared, None, example.max_new_tokens, example.stop_ids
    )
    if level == "head":
        policy = setup.bench.policy("Ours", budget)
    else:
        policy = setup.bench.policy("Ours(batch)", budget)
    sparse = decode_with_policy(
        setup.model, prepared, policy, example.max_new_tokens, example.stop_ids
    )
    n = max(len(full.token_ids), 1)
    hits = sum(1 for a, b in zip(full.token_ids, sparse.token_ids) if a == b)
    return hits / n


@register("fig05")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 5(a)."""
    setup = make_functional_setup(seed=seed)
    rng = np.random.default_rng(seed + 55)
    budgets = BUDGETS[:3] if quick else BUDGETS
    n_examples = 1 if quick else 3
    context_len = 512 if quick else 1024

    examples = [
        make_trivia(
            setup.tokenizer, rng, context_len=context_len,
            n_distractors=16 if quick else 40, answer_len=4,
        )
        for _ in range(n_examples)
    ]
    prepared = [prepare_prompt(setup.model, ex.prompt_ids) for ex in examples]

    result = ExperimentResult(
        experiment_id="fig05",
        title="Figure 5(a): head-level vs batch-level selection quality",
        headers=["Metric", "Level"] + [f"B={b}" for b in budgets],
        precision=3,
    )
    for metric, fn in (
        ("attention-accumulation", _accumulation),
        ("hit-rate", _hit_rate),
    ):
        for level in ("head", "batch"):
            row: list = [metric, level]
            for budget in budgets:
                values = [
                    fn(setup, prep, ex, budget, level)
                    for prep, ex in zip(prepared, examples)
                ]
                row.append(round(float(np.mean(values)), 3))
            result.rows.append(row)
    result.notes.append(
        "head-level curves should dominate batch-level at every budget "
        "(the Sec. 4.2 finding motivating per-head Top-K)"
    )
    return result
