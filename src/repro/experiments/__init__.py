"""Experiment modules: one per paper table/figure, plus the CLI runner.

Each module registers a ``run(quick=False, seed=0) -> ExperimentResult``
under its experiment id; ``repro.experiments.common.registry()`` resolves
the full map, and the ``specontext-experiments`` console script drives it.
"""

from repro.experiments.common import (
    ExperimentResult,
    FunctionalSetup,
    make_functional_setup,
    register,
    registry,
)

__all__ = [
    "ExperimentResult",
    "FunctionalSetup",
    "make_functional_setup",
    "register",
    "registry",
]
