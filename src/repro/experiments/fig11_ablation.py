"""Figure 11: ablation of the three contributions.

HF (complete-offload eager baseline) -> +C1 (lightweight retrieval head on
a FlashInfer-class backend, synchronous per-layer KV loading) -> +C1+C2
(asynchronous elastic prefetch) -> +C1+C2+C3 (adaptive memory management),
on the DeepSeek-R1-Distill-Llama-8B-class model and the four Table-3 length
mixes. Also reports an elastic-loading transfer-volume ablation (the C2
design choice DESIGN.md calls out).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, register
from repro.hardware.spec import CLOUD_A800
from repro.models.config import DEEPSEEK_DISTILL_LIKE_8B
from repro.perf.engines import ABLATION_ENGINES, HF_EAGER, SPECONTEXT
from repro.perf.simulate import PerfSimulator, Workload

WORKLOADS = (
    (2048, 16384, 32),
    (2048, 32768, 32),
    (16384, 2048, 16),
    (32768, 2048, 16),
)
# The normalization baseline runs at the paper's eager request count.
BASELINE_BATCH = 4


@register("fig11")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 11."""
    n_samples = 8 if quick else 32
    sim = PerfSimulator(DEEPSEEK_DISTILL_LIKE_8B, CLOUD_A800, budget=2048)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Figure 11: ablation of C1 (retrieval head), C2 (elastic "
        "prefetch), C3 (adaptive memory) — decode tokens/s",
        headers=["[In, Out]", "HF"]
        + [engine.name for engine in ABLATION_ENGINES[1:]]
        + ["Final speedup"],
    )
    for in_len, out_len, batch in WORKLOADS:
        label = Workload(in_len, out_len).label
        base = sim.simulate(
            HF_EAGER, Workload(in_len, out_len, BASELINE_BATCH), n_samples=n_samples
        )
        base_tps = 0.0 if base.oom else base.decode_tokens_per_second
        row: list = [label, "OOM" if base.oom else round(base_tps, 1)]
        final = 0.0
        for engine in ABLATION_ENGINES[1:]:
            timeline = sim.simulate(
                engine, Workload(in_len, out_len, batch), n_samples=n_samples
            )
            tps = 0.0 if timeline.oom else timeline.decode_tokens_per_second
            row.append("OOM" if timeline.oom else round(tps, 1))
            final = tps
        if base_tps > 0:
            row.append(f"{final / base_tps:.2f}x")
        else:
            row.append("vs OOM")
        result.rows.append(row)

    # Elastic-loading transfer ablation: bytes moved per decode step with
    # and without C2's set-difference loading, at the largest mix.
    in_len, out_len, batch = WORKLOADS[1]
    seq = in_len + out_len // 2
    elastic_on = sum(
        sim.layer_transfer_bytes(SPECONTEXT, seq, in_len, batch, 0)
    )
    elastic_off = sum(
        sim.layer_transfer_bytes(
            SPECONTEXT.with_(elastic=False), seq, in_len, batch, 0
        )
    )
    reduction = 1.0 - elastic_on / elastic_off if elastic_off else 0.0
    result.notes.append(
        f"elastic loading moves {elastic_on / 1e6:.0f}MB/step vs "
        f"{elastic_off / 1e6:.0f}MB/step full-budget reload "
        f"({reduction:.0%} reduction; paper Sec. 5 reports up to 90%)"
    )
    return result
