"""Knowledge-distillation substrate (paper Secs. 2.3 and 3).

The paper's key insight is that a distilled student shares the teacher's
*information focus* — argued through mutual information and the data
processing inequality. This package makes the claim testable:

- :mod:`repro.distill.dlm` — the full one-layer DLM (EAGLE-3 analog) with
  complete LM architecture, and the pruning arithmetic behind the >90%
  parameter-reduction claim (Sec. 4.3 / 7.4).
- :mod:`repro.distill.dataset` — synthetic KD corpora with the same
  key/value pair structure the teacher's circuits operate on.
- :mod:`repro.distill.trainer` — a numpy Adam trainer minimizing
  KL(P_T || P_S) (Eq. 2). Training measurably increases the overlap
  between the student's attention focus and the teacher's — the empirical
  face of the Sec. 3.2 DPI argument.
"""

from repro.distill.dataset import DistillationDataset, DistillationExample
from repro.distill.dlm import DistilledLM, full_dlm_analog, pruning_report
from repro.distill.trainer import DistillationTrainer, TrainingCurve

__all__ = [
    "DistilledLM",
    "full_dlm_analog",
    "pruning_report",
    "DistillationDataset",
    "DistillationExample",
    "DistillationTrainer",
    "TrainingCurve",
]
