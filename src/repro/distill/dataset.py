"""Synthetic corpora for knowledge distillation.

Each example is a short sequence containing key/value pairs scattered in
filler prose, ending with a query key — the structure the teacher's recall
circuit processes. Distillation teaches the student *where to look*, so the
corpus must exercise exactly that lookup behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.tokenizer import SyntheticTokenizer


@dataclass(frozen=True)
class DistillationExample:
    """One training sequence plus its ground-truth recall target."""

    token_ids: np.ndarray  # full sequence, query key last
    answer_id: int  # the value paired with the queried key
    value_position: int  # index of the value token in the sequence


class DistillationDataset:
    """Generates batches of recall sequences."""

    def __init__(
        self,
        tokenizer: SyntheticTokenizer,
        seq_len: int = 48,
        n_pairs: int = 3,
        seed: int = 0,
    ):
        if seq_len < 4 * n_pairs + 4:
            raise ValueError(
                f"seq_len {seq_len} too short for {n_pairs} pairs plus query"
            )
        self.tokenizer = tokenizer
        self.seq_len = seq_len
        self.n_pairs = n_pairs
        self._rng = np.random.default_rng(seed)

    def sample(self) -> DistillationExample:
        """One random example."""
        tok = self.tokenizer
        rng = self._rng
        ents = tok.random_content_ids(rng, 2 * self.n_pairs)
        keys = [int(t) for t in ents[: self.n_pairs]]
        vals = [int(t) for t in ents[self.n_pairs :]]
        n_filler = self.seq_len - 2 * self.n_pairs - 3  # bos, <q>, query key
        filler = [int(t) for t in tok.random_filler_ids(rng, n_filler)]
        insert_at = sorted(
            rng.choice(
                max(n_filler, self.n_pairs), size=self.n_pairs, replace=False
            ).tolist()
        )

        ids = [tok.bos_id]
        value_pos: dict[int, int] = {}
        for p in range(n_filler):
            ids.append(filler[p])
            if p in insert_at:
                i = insert_at.index(p)
                ids.extend([keys[i], vals[i]])
                value_pos[i] = len(ids) - 1
        query = int(rng.integers(0, self.n_pairs))
        ids.extend([tok.question_id, keys[query]])
        return DistillationExample(
            token_ids=np.array(ids),
            answer_id=vals[query],
            value_position=value_pos[query],
        )

    def batch(self, n: int) -> list[DistillationExample]:
        """``n`` fresh examples."""
        return [self.sample() for _ in range(n)]
