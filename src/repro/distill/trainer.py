"""Numpy knowledge-distillation trainer (Eq. 2: minimize KL(P_T || P_S)).

The student is a one-layer attention LM operating in the teacher's content
space: given a sequence, its key at position j is ``H (c_prev_j + kappa
c_cur_j)`` (token-shift mixer), its query is ``G c_last``, and its output
distribution is a content readout of the attention-weighted value mixture.
Only G and H are trained — precisely the parameters the retrieval head
retains after pruning.

Gradients are derived by hand (softmax + bilinear chain rule) and checked
against finite differences in the test suite. Adam is implemented from
scratch. Alongside the KL loss, the trainer tracks *attention-focus
overlap*: the fraction of the student's top-k attention positions that are
also the teacher's. The Sec. 3 claim — distillation aligns information
focus — corresponds to this overlap rising as the KL falls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distill.dataset import DistillationDataset, DistillationExample
from repro.models.llm import TransformerLM
from repro.tensor.ops import softmax, top_k_indices


@dataclass
class TrainingCurve:
    """Per-epoch metrics recorded during distillation."""

    kl: list[float] = field(default_factory=list)
    attention_overlap: list[float] = field(default_factory=list)


class _Adam:
    """Minimal Adam optimizer over a dict of arrays."""

    def __init__(self, params: dict[str, np.ndarray], lr: float = 1e-2):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}
        self.t = 0

    def step(self, grads: dict[str, np.ndarray]) -> None:
        self.t += 1
        for key, grad in grads.items():
            self.m[key] = self.beta1 * self.m[key] + (1 - self.beta1) * grad
            self.v[key] = self.beta2 * self.v[key] + (1 - self.beta2) * grad**2
            m_hat = self.m[key] / (1 - self.beta1**self.t)
            v_hat = self.v[key] / (1 - self.beta2**self.t)
            self.params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class DistillationTrainer:
    """Distills a teacher :class:`TransformerLM` into a 1-layer student."""

    def __init__(
        self,
        teacher: TransformerLM,
        dataset: DistillationDataset,
        shift_mix: float = 0.2,
        sharpness: float = 14.0,
        readout_gain: float = 8.0,
        lr: float = 5e-3,
        seed: int = 0,
        init_noise: float = 0.5,
    ):
        self.teacher = teacher
        self.dataset = dataset
        self.shift_mix = shift_mix
        self.sharpness = sharpness
        self.readout_gain = readout_gain
        dc = teacher.config.head_dim
        self.content = np.asarray(teacher.weights.embedding[:, :dc], dtype=np.float64)
        rng = np.random.default_rng(seed)
        # Start far from the identity: distillation must *find* alignment.
        self.params = {
            "G": np.eye(dc) + init_noise * rng.standard_normal((dc, dc)) / np.sqrt(dc),
            "H": np.eye(dc) + init_noise * rng.standard_normal((dc, dc)) / np.sqrt(dc),
        }
        self.optimizer = _Adam(self.params, lr=lr)
        self.curve = TrainingCurve()

    # ---- student forward/backward -------------------------------------------------

    def _student_features(self, example: DistillationExample):
        ids = example.token_ids
        cur = self.content[ids[:-1]]  # context tokens (keys come from these)
        prev = self.content[np.concatenate([[ids[0]], ids[:-2]])]
        mixed = prev + self.shift_mix * cur  # (n, dc)
        query_content = self.content[int(ids[-1])]
        return mixed, cur, query_content

    def student_attention(self, example: DistillationExample) -> np.ndarray:
        """Student attention weights over context positions."""
        mixed, _, query_content = self._student_features(example)
        q = self.params["G"] @ query_content
        k = mixed @ self.params["H"].T
        return softmax(self.sharpness * (k @ q))

    def student_logits(self, example: DistillationExample) -> np.ndarray:
        """Student output logits over the vocabulary."""
        _, cur, _ = self._student_features(example)
        w = self.student_attention(example)
        mix = w @ cur
        return self.readout_gain * (self.content @ mix)

    def _teacher_distribution(self, example: DistillationExample) -> np.ndarray:
        cache = self.teacher.new_cache()
        logits = self.teacher.prefill(example.token_ids, cache)
        return softmax(np.asarray(logits, dtype=np.float64))

    def loss_and_grads(
        self, example: DistillationExample
    ) -> tuple[float, dict[str, np.ndarray]]:
        """KL(P_T || P_S) and its gradients w.r.t. G and H."""
        mixed, cur, query_content = self._student_features(example)
        G, H = self.params["G"], self.params["H"]
        q = G @ query_content
        k = mixed @ H.T
        logits_attn = self.sharpness * (k @ q)
        w = softmax(logits_attn)
        mix = w @ cur
        logits_s = self.readout_gain * (self.content @ mix)
        p_s = softmax(logits_s)
        p_t = self._teacher_distribution(example)

        eps = 1e-12
        kl = float(np.sum(p_t * (np.log(p_t + eps) - np.log(softmax(logits_s) + eps))))

        # d KL / d logits_s = p_s - p_t
        dlogits = p_s - p_t
        dmix = self.readout_gain * (self.content.T @ dlogits)  # (dc,)
        dw = cur @ dmix  # (n,)
        dattn_logits = w * (dw - np.dot(w, dw))  # softmax backward
        dattn_logits *= self.sharpness
        dq = k.T @ dattn_logits  # (dc,)
        dk = np.outer(dattn_logits, q)  # (n, dc)
        grads = {
            "G": np.outer(dq, query_content),
            "H": dk.T @ mixed,
        }
        return kl, grads

    # ---- training loop ---------------------------------------------------------------

    def teacher_attention(self, example: DistillationExample) -> np.ndarray:
        """Teacher induction-layer attention at the query position.

        Layer 1's first query head is the teacher's induction head; its
        weights over the context are the 'information focus' the student is
        supposed to inherit.
        """
        cache = self.teacher.new_cache()
        ids = example.token_ids
        self.teacher.prefill(ids[:-1], cache)
        _, _, attn = self.teacher.decode_step(
            int(ids[-1]), cache, capture_attention=True
        )
        return attn[1][0][:-1]  # drop the query token's own position

    def attention_overlap(
        self, examples: list[DistillationExample], k: int = 4
    ) -> float:
        """Mean fraction of student top-k attention inside teacher top-k."""
        overlaps = []
        for ex in examples:
            student_top = set(top_k_indices(self.student_attention(ex), k).tolist())
            teacher_top = set(top_k_indices(self.teacher_attention(ex), k).tolist())
            overlaps.append(len(student_top & teacher_top) / k)
        return float(np.mean(overlaps))

    def train(
        self,
        epochs: int = 5,
        batch_size: int = 16,
        eval_examples: list[DistillationExample] | None = None,
    ) -> TrainingCurve:
        """Run distillation; returns the KL / overlap curves."""
        eval_examples = eval_examples or self.dataset.batch(8)
        for _ in range(epochs):
            batch = self.dataset.batch(batch_size)
            epoch_kl = []
            grad_sum = {k: np.zeros_like(v) for k, v in self.params.items()}
            for ex in batch:
                kl, grads = self.loss_and_grads(ex)
                epoch_kl.append(kl)
                for key in grad_sum:
                    grad_sum[key] += grads[key] / batch_size
            self.optimizer.step(grad_sum)
            self.curve.kl.append(float(np.mean(epoch_kl)))
            self.curve.attention_overlap.append(self.attention_overlap(eval_examples))
        return self.curve
