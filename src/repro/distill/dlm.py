"""The full distilled language model and the retrieval-head pruning math.

EAGLE-3's DLM is a complete LM — tokenizer, embedding, a single transformer
decoder layer, and an LM head (Sec. 4.1). Running it wholesale costs ~20%
extra inference, dominated by the LM head over a >1.2e5-token vocabulary.
The retrieval head keeps only the embedding (shared with the target model,
so zero marginal memory) and the QK projections; everything else is pruned
(Sec. 4.3). ``pruning_report`` reproduces the >90% reduction claim for any
teacher configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig


@dataclass
class DistilledLM:
    """A one-layer student LM's parameter inventory.

    Arrays are optional: experiments that only need parameter counts (the
    overhead evaluation) construct the inventory without materializing
    weights, while the trainer materializes the QK projections it learns.
    """

    vocab_size: int
    d_model: int
    n_heads: int
    head_dim: int
    d_ff: int
    # Learned projections (content space), populated by the trainer:
    wq: np.ndarray | None = None
    wk: np.ndarray | None = None

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.d_model

    @property
    def qk_params(self) -> int:
        return 2 * self.d_model * self.n_heads * self.head_dim

    @property
    def vo_params(self) -> int:
        return 2 * self.d_model * self.n_heads * self.head_dim

    @property
    def ffn_params(self) -> int:
        return 3 * self.d_model * self.d_ff

    @property
    def lm_head_params(self) -> int:
        return self.vocab_size * self.d_model

    def total_params(self) -> int:
        """Complete DLM: embedding + decoder layer + LM head."""
        return (
            self.embedding_params
            + self.qk_params
            + self.vo_params
            + self.ffn_params
            + self.lm_head_params
        )

    def retained_params(self, embedding_shared: bool = True) -> int:
        """What the retrieval head keeps: QK (+ embedding if not shared)."""
        kept = self.qk_params
        if not embedding_shared:
            kept += self.embedding_params
        return kept


def full_dlm_analog(teacher: ModelConfig) -> DistilledLM:
    """The EAGLE-3-style DLM sized for a given teacher.

    One decoder layer with the teacher's hidden geometry and vocabulary,
    as the paper's DLM shares the target model's tokenizer/embedding space.
    """
    return DistilledLM(
        vocab_size=teacher.vocab_size,
        d_model=teacher.d_model,
        n_heads=teacher.n_q_heads,
        head_dim=teacher.head_dim,
        d_ff=teacher.d_ff,
    )


@dataclass(frozen=True)
class PruningReport:
    """Parameter accounting for the DLM -> retrieval-head pruning."""

    dlm_params: int
    retained_params: int

    @property
    def reduction(self) -> float:
        return 1.0 - self.retained_params / self.dlm_params

    @property
    def retained_bytes_fp16(self) -> int:
        return self.retained_params * 2


def pruning_report(
    teacher: ModelConfig, embedding_shared: bool = True
) -> PruningReport:
    """The Sec. 7.4 overhead numbers for a teacher config.

    For Llama3-8B-scale teachers this lands at ~40-60MB of retrieval-head
    weights and >90% reduction, matching the paper's "only about 60MB".
    """
    dlm = full_dlm_analog(teacher)
    return PruningReport(
        dlm_params=dlm.total_params(),
        retained_params=dlm.retained_params(embedding_shared=embedding_shared),
    )
