"""The full distilled language model and the retrieval-head pruning math.

EAGLE-3's DLM is a complete LM — tokenizer, embedding, a single transformer
decoder layer, and an LM head (Sec. 4.1). Running it wholesale costs ~20%
extra inference, dominated by the LM head over a >1.2e5-token vocabulary.
The retrieval head keeps only the embedding (shared with the target model,
so zero marginal memory) and the QK projections; everything else is pruned
(Sec. 4.3). ``pruning_report`` reproduces the >90% reduction claim for any
teacher configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig
from repro.tensor.ops import softmax


@dataclass
class DistilledLM:
    """A one-layer student LM's parameter inventory.

    Arrays are optional: experiments that only need parameter counts (the
    overhead evaluation) construct the inventory without materializing
    weights, while the trainer materializes the QK projections it learns.
    """

    vocab_size: int
    d_model: int
    n_heads: int
    head_dim: int
    d_ff: int
    # Learned projections (content space), populated by the trainer:
    wq: np.ndarray | None = None
    wk: np.ndarray | None = None

    @property
    def embedding_params(self) -> int:
        return self.vocab_size * self.d_model

    @property
    def qk_params(self) -> int:
        return 2 * self.d_model * self.n_heads * self.head_dim

    @property
    def vo_params(self) -> int:
        return 2 * self.d_model * self.n_heads * self.head_dim

    @property
    def ffn_params(self) -> int:
        return 3 * self.d_model * self.d_ff

    @property
    def lm_head_params(self) -> int:
        return self.vocab_size * self.d_model

    def total_params(self) -> int:
        """Complete DLM: embedding + decoder layer + LM head."""
        return (
            self.embedding_params
            + self.qk_params
            + self.vo_params
            + self.ffn_params
            + self.lm_head_params
        )

    def retained_params(self, embedding_shared: bool = True) -> int:
        """What the retrieval head keeps: QK (+ embedding if not shared)."""
        kept = self.qk_params
        if not embedding_shared:
            kept += self.embedding_params
        return kept


def full_dlm_analog(teacher: ModelConfig) -> DistilledLM:
    """The EAGLE-3-style DLM sized for a given teacher.

    One decoder layer with the teacher's hidden geometry and vocabulary,
    as the paper's DLM shares the target model's tokenizer/embedding space.
    """
    return DistilledLM(
        vocab_size=teacher.vocab_size,
        d_model=teacher.d_model,
        n_heads=teacher.n_q_heads,
        head_dim=teacher.head_dim,
        d_ff=teacher.d_ff,
    )


@dataclass(frozen=True)
class PruningReport:
    """Parameter accounting for the DLM -> retrieval-head pruning."""

    dlm_params: int
    retained_params: int

    @property
    def reduction(self) -> float:
        return 1.0 - self.retained_params / self.dlm_params

    @property
    def retained_bytes_fp16(self) -> int:
        return self.retained_params * 2


class DraftModel:
    """Greedy draft head over the distilled student math.

    Runs the :class:`~repro.distill.trainer.DistillationTrainer` student
    forward (token-shift mixer keys, content-space readout) autoregressively
    to propose up to ``k`` tokens for speculative decoding. Like EAGLE's
    truncated-vocab trick, the readout is restricted to ``token_map`` — a
    draft-index -> target-id array — so the LM-head matmul shrinks with the
    draft vocabulary. Target tokens outside the map cannot be drafted *from*
    (the query embedding is unknown to the student): :meth:`draft` returns an
    empty proposal there, which the verifier treats as an ordinary
    zero-accepted step — never a ``KeyError``.
    """

    def __init__(
        self,
        content: np.ndarray,
        token_map: np.ndarray | None = None,
        G: np.ndarray | None = None,
        H: np.ndarray | None = None,
        shift_mix: float = 0.2,
        sharpness: float = 14.0,
        readout_gain: float = 8.0,
    ):
        self.content = np.asarray(content, dtype=np.float64)
        if self.content.ndim != 2:
            raise ValueError(f"content must be (vocab, dc), got {self.content.shape}")
        vocab, dc = self.content.shape
        self.vocab_size = vocab
        if token_map is None:
            token_map = np.arange(vocab)
        self.token_map = np.asarray(token_map, dtype=np.int64)
        if self.token_map.ndim != 1 or self.token_map.size == 0:
            raise ValueError("token_map must be a non-empty 1-D array")
        if np.any(self.token_map < 0) or np.any(self.token_map >= vocab):
            raise ValueError(
                f"token_map entries outside target vocabulary [0, {vocab})"
            )
        if np.unique(self.token_map).size != self.token_map.size:
            raise ValueError("token_map entries must be unique")
        # Inverse map: target id -> draft index, -1 where unmapped.
        self._inverse = np.full(vocab, -1, dtype=np.int64)
        self._inverse[self.token_map] = np.arange(self.token_map.size)
        self.content_draft = self.content[self.token_map]
        self.G = np.eye(dc) if G is None else np.asarray(G, dtype=np.float64)
        self.H = np.eye(dc) if H is None else np.asarray(H, dtype=np.float64)
        self.shift_mix = shift_mix
        self.sharpness = sharpness
        self.readout_gain = readout_gain

    @classmethod
    def from_teacher(
        cls,
        teacher,
        token_map: np.ndarray | None = None,
        shift_mix: float = 0.2,
        sharpness: float = 14.0,
        readout_gain: float = 8.0,
    ) -> "DraftModel":
        """A perfectly-distilled draft head (identity G/H) for a teacher LM.

        Shares the teacher's content subspace (first ``head_dim`` embedding
        columns) exactly as the trainer does, so the draft distribution is
        what distillation converges to on the synthetic recall teachers.
        """
        content = np.asarray(
            teacher.weights.embedding[:, : teacher.config.head_dim],
            dtype=np.float64,
        )
        return cls(
            content,
            token_map=token_map,
            shift_mix=shift_mix,
            sharpness=sharpness,
            readout_gain=readout_gain,
        )

    @classmethod
    def from_trainer(cls, trainer, token_map: np.ndarray | None = None) -> "DraftModel":
        """Wrap a trained :class:`DistillationTrainer`'s learned G/H."""
        return cls(
            trainer.content,
            token_map=token_map,
            G=trainer.params["G"],
            H=trainer.params["H"],
            shift_mix=trainer.shift_mix,
            sharpness=trainer.sharpness,
            readout_gain=trainer.readout_gain,
        )

    def knows(self, token_id: int) -> bool:
        """True if the target token is inside the draft vocabulary."""
        return 0 <= token_id < self.vocab_size and self._inverse[token_id] >= 0

    def _context_rows(self, ids: np.ndarray) -> np.ndarray:
        """Content rows for context tokens; unmapped tokens contribute zeros.

        The truncated-vocab student has no representation for out-of-map
        context tokens, so they act as null evidence rather than faulting.
        """
        rows = self.content[ids]
        unmapped = self._inverse[ids] < 0
        if np.any(unmapped):
            rows = rows.copy()
            rows[unmapped] = 0.0
        return rows

    def greedy_next(self, context_ids) -> int | None:
        """Greedy next-token proposal in *target* id space, or None.

        None means the student cannot draft here: context shorter than two
        tokens (the token-shift mixer needs a previous token) or a query
        token outside the draft vocabulary.
        """
        vec = self._pooled(np.asarray(context_ids, dtype=np.int64))
        if vec is None:
            return None
        logits = self.readout_gain * (self.content_draft @ vec)
        return int(self.token_map[int(np.argmax(logits))])

    def draft(self, context_ids, k: int) -> list[int]:
        """Propose up to ``k`` greedy tokens autoregressively.

        Returns fewer than ``k`` (possibly zero) tokens when drafting is
        impossible; proposed tokens are always in-map by construction.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        ids = list(int(t) for t in context_ids)
        out: list[int] = []
        for _ in range(k):
            token = self.greedy_next(ids)
            if token is None:
                break
            out.append(token)
            ids.append(token)
        return out

    def _pooled(self, ids: np.ndarray) -> np.ndarray | None:
        """The attention-pooled content vector behind one greedy step.

        ``greedy_next`` factors as readout(pooled(context)); batching
        shares the readout matmul across contexts, so the pooling half is
        exposed separately. None under the same conditions ``greedy_next``
        returns None.
        """
        if ids.ndim != 1 or ids.size < 2:
            return None
        last = int(ids[-1])
        if not self.knows(last):
            return None
        cur = self._context_rows(ids[:-1])
        prev = self._context_rows(np.concatenate([ids[:1], ids[:-2]]))
        mixed = prev + self.shift_mix * cur
        q = self.G @ self.content[last]
        keys = mixed @ self.H.T
        w = softmax(self.sharpness * (keys @ q))
        return w @ cur

    def draft_batch(self, contexts, k: int) -> list[list[int]]:
        """Propose up to ``k`` greedy tokens for every context at once.

        Equivalent to ``[self.draft(ctx, k) for ctx in contexts]`` but the
        truncated-vocab readout — the dominant cost, one
        ``(draft_vocab, dc)`` matvec per context per step in :meth:`draft`
        — is fused into a single ``(batch, dc) x (dc, draft_vocab)``
        matmul over all still-drafting contexts per step. The attention
        pooling stays per-context (contexts are ragged). A context that
        cannot draft contributes an empty (or truncated) proposal without
        stalling its batch peers.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        ids_list = [[int(t) for t in ctx] for ctx in contexts]
        outs: list[list[int]] = [[] for _ in ids_list]
        active = list(range(len(ids_list)))
        for _ in range(k):
            pooled: list[np.ndarray] = []
            keep: list[int] = []
            for i in active:
                vec = self._pooled(np.asarray(ids_list[i], dtype=np.int64))
                if vec is None:
                    continue
                pooled.append(vec)
                keep.append(i)
            if not keep:
                break
            logits = self.readout_gain * (
                np.stack(pooled) @ self.content_draft.T
            )
            for row, i in enumerate(keep):
                token = int(self.token_map[int(np.argmax(logits[row]))])
                outs[i].append(token)
                ids_list[i].append(token)
            active = keep
        return outs


def pruning_report(
    teacher: ModelConfig, embedding_shared: bool = True
) -> PruningReport:
    """The Sec. 7.4 overhead numbers for a teacher config.

    For Llama3-8B-scale teachers this lands at ~40-60MB of retrieval-head
    weights and >90% reduction, matching the paper's "only about 60MB".
    """
    dlm = full_dlm_analog(teacher)
    return PruningReport(
        dlm_params=dlm.total_params(),
        retained_params=dlm.retained_params(embedding_shared=embedding_shared),
    )
