"""Inference-engine descriptions for the performance simulator.

Every engine the paper times — Huggingface Eager, Huggingface +
FlashAttention, FlashInfer, Quest, ClusterKV, ShadowKV, and SpeContext —
is captured as an :class:`EngineSpec`: a declarative record of *how* that
engine attends (full vs sparse), *where* it keeps KV cache, *what* retrieval
work it repeats per layer, and *how much* framework overhead its runtime
adds. The simulator (:mod:`repro.perf.simulate`) turns a spec plus a model
and hardware into per-step latencies and end-to-end throughput.

The calibration constants below are derived from public measurements of the
real systems (HF's Python dispatch overhead, FlashInfer's fused kernels,
eager attention's materialized score matrix) and documented inline; the
experiments reproduce the paper's *ratios*, which these structural
differences determine, not its absolute tokens/s.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.core.prefetch import DataflowKind


class OffloadPolicy(enum.Enum):
    """Where an engine keeps the KV cache when GPU memory is tight."""

    NEVER = "never"  # all-GPU; OOM when it no longer fits
    FULL_CPU = "full_cpu"  # everything offloaded; every step re-fetches
    VALUE_CPU = "value_cpu"  # ShadowKV: V on CPU, (quantized) K on GPU
    STATIC = "static"  # decided once from the *initial* length (Challenge 3)
    ADAPTIVE = "adaptive"  # SpeContext: Algorithm 1/2 threshold walking


class RetrievalKind(enum.Enum):
    """What per-step retrieval computation an engine performs."""

    NONE = "none"  # full attention
    PAGE = "page"  # Quest: page-vector scores, per layer
    CLUSTER = "cluster"  # ClusterKV: centroid scores, per layer
    QUANTIZED = "quantized"  # ShadowKV: low-bit key scores, per layer
    HEAD = "head"  # SpeContext: one retrieval-head pass per step


class PreprocessKind(enum.Enum):
    """Prefill-time KV preprocessing (Sec. 3.1's 'complex and time-consuming')."""

    NONE = "none"
    PAGING = "paging"  # min/max page vectors (cheap single pass)
    CLUSTERING = "clustering"  # k-means over keys (many passes)
    QUANTIZATION = "quantization"  # per-channel low-bit + SVD-style pass


@dataclass(frozen=True)
class EngineSpec:
    """Declarative description of one inference engine.

    Attributes:
        name: display name used in experiment tables.
        sparse: whether decode attention touches only a budget subset.
        retains_generated: the Challenge-2 flaw — the engine keeps every
            newly generated KV pair resident and attends over all of them,
            so in long-*reasoning* its attended length grows with output.
            SpeContext selects over the whole cache instead (False).
        dataflow: decode-step stream schedule shape (Fig. 7).
        retrieval: per-step retrieval computation kind.
        preprocess: prefill-time KV preprocessing kind.
        offload: KV placement policy.
        framework_overhead_per_layer_s: per-layer runtime dispatch cost.
            Hugging Face's Python loop costs ~1-2 ms/layer; compiled
            serving engines are 10-20x cheaper.
        attn_score_bytes: bytes per attention-score element materialized in
            GPU memory during attention (4 for eager fp32 scores; 0 for
            fused flash-style kernels). Drives both eager's extra memory
            traffic and its O(S^2) prefill OOM.
        supports_multi_request: Quest's and ClusterKV's public kernels are
            single-request (paper Sec. 7.3.1), so Table 3 excludes them.
        reallocates_kv_cache: Hugging Face's dynamic cache `torch.cat`s the
            whole KV cache every step, re-reading and re-writing it — an
            O(S) per-step tax compiled engines avoid with paged buffers.
        elastic: transfer only selection set-differences (SpeContext C2).
        adaptive_memory: walk Algorithm-1 thresholds (SpeContext C3).
    """

    name: str
    sparse: bool
    retains_generated: bool
    dataflow: DataflowKind
    retrieval: RetrievalKind
    preprocess: PreprocessKind
    offload: OffloadPolicy
    framework_overhead_per_layer_s: float
    attn_score_bytes: int
    supports_multi_request: bool = True
    reallocates_kv_cache: bool = False
    elastic: bool = False
    adaptive_memory: bool = False

    def with_(self, **changes) -> "EngineSpec":
        """Return a modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)


# Hugging Face `model.generate` with eager attention: Python layer loop
# (~1.8 ms/layer dispatch) and a materialized fp32 score matrix.
HF_EAGER = EngineSpec(
    name="Full Attn(Eager)",
    sparse=False,
    retains_generated=True,
    dataflow=DataflowKind.FULL_PREFETCH,
    retrieval=RetrievalKind.NONE,
    preprocess=PreprocessKind.NONE,
    offload=OffloadPolicy.NEVER,
    framework_overhead_per_layer_s=1.8e-3,
    attn_score_bytes=4,
    reallocates_kv_cache=True,
)

# Hugging Face + FlashAttention-2: fused attention kernel (no score matrix)
# but the same Python-side dispatch.
HF_FLASH_ATTENTION = EngineSpec(
    name="Full Attn(Flash Attn)",
    sparse=False,
    retains_generated=True,
    dataflow=DataflowKind.FULL_PREFETCH,
    retrieval=RetrievalKind.NONE,
    preprocess=PreprocessKind.NONE,
    offload=OffloadPolicy.NEVER,
    framework_overhead_per_layer_s=1.5e-3,
    attn_score_bytes=0,
    reallocates_kv_cache=True,
)

# FlashInfer: compiled serving engine, fused kernels, minimal dispatch.
FLASHINFER = EngineSpec(
    name="Full Attn(FlashInfer)",
    sparse=False,
    retains_generated=True,
    dataflow=DataflowKind.FULL_PREFETCH,
    retrieval=RetrievalKind.NONE,
    preprocess=PreprocessKind.NONE,
    offload=OffloadPolicy.NEVER,
    framework_overhead_per_layer_s=0.1e-3,
    attn_score_bytes=0,
)

# Quest: page min/max vectors at prefill, per-layer page scoring + gather
# during decode; public kernels are single-request.
QUEST = EngineSpec(
    name="Quest",
    sparse=True,
    retains_generated=True,
    dataflow=DataflowKind.SYNC_FETCH,
    retrieval=RetrievalKind.PAGE,
    preprocess=PreprocessKind.PAGING,
    offload=OffloadPolicy.STATIC,
    framework_overhead_per_layer_s=0.3e-3,
    attn_score_bytes=0,
    supports_multi_request=False,
)

# ClusterKV: k-means clustering at prefill, per-layer centroid scoring.
CLUSTERKV = EngineSpec(
    name="ClusterKV",
    sparse=True,
    retains_generated=True,
    dataflow=DataflowKind.SYNC_FETCH,
    retrieval=RetrievalKind.CLUSTER,
    preprocess=PreprocessKind.CLUSTERING,
    offload=OffloadPolicy.STATIC,
    framework_overhead_per_layer_s=0.3e-3,
    attn_score_bytes=0,
    supports_multi_request=False,
)

# ShadowKV: quantized K resident on GPU, V offloaded to CPU and fetched
# per layer after scoring (Fig. 7d).
SHADOWKV = EngineSpec(
    name="ShadowKV",
    sparse=True,
    retains_generated=True,
    dataflow=DataflowKind.VALUE_PREFETCH,
    retrieval=RetrievalKind.QUANTIZED,
    preprocess=PreprocessKind.QUANTIZATION,
    offload=OffloadPolicy.VALUE_CPU,
    framework_overhead_per_layer_s=0.25e-3,
    attn_score_bytes=0,
)

# SpeContext: retrieval head before the pass, elastic async prefetch,
# adaptive memory management, FlashInfer-class backend.
SPECONTEXT = EngineSpec(
    name="Ours",
    sparse=True,
    retains_generated=False,
    dataflow=DataflowKind.ELASTIC_PREFETCH,
    retrieval=RetrievalKind.HEAD,
    preprocess=PreprocessKind.NONE,
    offload=OffloadPolicy.ADAPTIVE,
    framework_overhead_per_layer_s=0.1e-3,
    attn_score_bytes=0,
    elastic=True,
    adaptive_memory=True,
)

# Ablation variants (Fig. 11): C1 alone keeps the lightweight retrieval
# head and FlashInfer backend but loads KV synchronously per layer and
# offloads everything once memory runs out; C2 adds the asynchronous
# elastic prefetch; C3 adds adaptive placement.
SPECONTEXT_C1 = SPECONTEXT.with_(
    name="HF+C1",
    dataflow=DataflowKind.SYNC_FETCH,
    offload=OffloadPolicy.FULL_CPU,
    elastic=False,
    adaptive_memory=False,
)
SPECONTEXT_C1_C2 = SPECONTEXT.with_(
    name="HF+C1+C2",
    offload=OffloadPolicy.FULL_CPU,
    adaptive_memory=False,
)
SPECONTEXT_C1_C2_C3 = SPECONTEXT.with_(name="HF+C1+C2+C3")

# InfiniGen-style engine (Fig. 7c): speculative per-layer retrieval whose
# result is available one layer ahead, so each layer's sparse transfer
# overlaps the previous layer's compute — but without the elastic
# set-difference or the pre-pass global selection.
INFINIGEN = EngineSpec(
    name="InfiniGen-style",
    sparse=True,
    retains_generated=True,
    dataflow=DataflowKind.ASYNC_PREFETCH,
    retrieval=RetrievalKind.PAGE,
    preprocess=PreprocessKind.PAGING,
    offload=OffloadPolicy.FULL_CPU,
    framework_overhead_per_layer_s=0.3e-3,
    attn_score_bytes=0,
)

# Baselines with forced full offloading, for the edge scenario where the
# model + cache exceed GPU memory (Sec. 7.3.2) and for Fig. 2's cliff.
HF_EAGER_OFFLOAD = HF_EAGER.with_(
    name="Full Attn(Eager, offload)", offload=OffloadPolicy.FULL_CPU
)
HF_FLASH_OFFLOAD = HF_FLASH_ATTENTION.with_(
    name="Full Attn(Flash Attn, offload)", offload=OffloadPolicy.FULL_CPU
)

CLOUD_ENGINES = (HF_EAGER, HF_FLASH_ATTENTION, FLASHINFER, SHADOWKV, SPECONTEXT)
SINGLE_REQUEST_ENGINES = (
    HF_EAGER,
    HF_FLASH_ATTENTION,
    FLASHINFER,
    QUEST,
    CLUSTERKV,
    SHADOWKV,
    SPECONTEXT,
)
ABLATION_ENGINES = (
    HF_EAGER_OFFLOAD,
    SPECONTEXT_C1,
    SPECONTEXT_C1_C2,
    SPECONTEXT_C1_C2_C3,
)


def engine_by_name(name: str) -> EngineSpec:
    """Look up any registered engine spec by its display name."""
    registered = SINGLE_REQUEST_ENGINES + ABLATION_ENGINES + (
        HF_FLASH_OFFLOAD,
        INFINIGEN,
    )
    for spec in registered:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown engine {name!r}")
