"""Performance simulation of LLM inference engines at paper scale.

Public surface:

- :mod:`repro.perf.engines` — declarative :class:`EngineSpec` records for
  every engine the paper times (HF Eager/FlashAttention, FlashInfer,
  Quest, ClusterKV, ShadowKV, SpeContext and its ablation variants).
- :mod:`repro.perf.simulate` — :class:`PerfSimulator`, which maps
  (engine, model, hardware, workload) to per-step stream schedules and
  end-to-end throughput.
- :mod:`repro.perf.capacity` — batch-size search under memory limits.
"""

from repro.perf.capacity import CapacityResult, best_batch, max_fitting_batch
from repro.perf.engines import (
    ABLATION_ENGINES,
    CLOUD_ENGINES,
    CLUSTERKV,
    FLASHINFER,
    HF_EAGER,
    HF_EAGER_OFFLOAD,
    HF_FLASH_ATTENTION,
    HF_FLASH_OFFLOAD,
    QUEST,
    SHADOWKV,
    SINGLE_REQUEST_ENGINES,
    SPECONTEXT,
    SPECONTEXT_C1,
    SPECONTEXT_C1_C2,
    SPECONTEXT_C1_C2_C3,
    EngineSpec,
    OffloadPolicy,
    PreprocessKind,
    RetrievalKind,
    engine_by_name,
)
from repro.perf.simulate import (
    DEFAULT_OVERLAP,
    RETRIEVAL_HEAD_BYTES,
    GenerationTimeline,
    PerfSimulator,
    StepSample,
    Workload,
)

__all__ = [
    "ABLATION_ENGINES",
    "CLOUD_ENGINES",
    "CLUSTERKV",
    "FLASHINFER",
    "HF_EAGER",
    "HF_EAGER_OFFLOAD",
    "HF_FLASH_ATTENTION",
    "HF_FLASH_OFFLOAD",
    "QUEST",
    "SHADOWKV",
    "SINGLE_REQUEST_ENGINES",
    "SPECONTEXT",
    "SPECONTEXT_C1",
    "SPECONTEXT_C1_C2",
    "SPECONTEXT_C1_C2_C3",
    "CapacityResult",
    "DEFAULT_OVERLAP",
    "EngineSpec",
    "GenerationTimeline",
    "OffloadPolicy",
    "PerfSimulator",
    "PreprocessKind",
    "RETRIEVAL_HEAD_BYTES",
    "RetrievalKind",
    "StepSample",
    "Workload",
    "best_batch",
    "engine_by_name",
    "max_fitting_batch",
]
