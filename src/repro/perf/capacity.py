"""Batch capacity search for multi-request serving (Table 3's grey numbers).

The paper reports each engine at a chosen request count; this module
provides the search a serving operator would run: scan candidate batch
sizes, discard those that OOM, and keep the one with the best simulated
end-to-end throughput. Engines whose public kernels are single-request
(Quest, ClusterKV) are capped at batch 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.engines import EngineSpec
from repro.perf.simulate import GenerationTimeline, PerfSimulator, Workload

DEFAULT_CANDIDATES = (1, 2, 4, 6, 8, 16, 32, 64)


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of the batch search for one engine on one workload."""

    engine_name: str
    best_batch: int
    tokens_per_second: float
    timeline: GenerationTimeline | None
    all_oom: bool = False


def max_fitting_batch(
    sim: PerfSimulator,
    engine: EngineSpec,
    in_len: int,
    out_len: int,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
) -> int:
    """Largest candidate batch that does not OOM (0 if none fit)."""
    best = 0
    for batch in candidates:
        if engine.supports_multi_request is False and batch > 1:
            break
        if not sim.oom_reason(engine, Workload(in_len, out_len, batch)):
            best = batch
    return best


def best_batch(
    sim: PerfSimulator,
    engine: EngineSpec,
    in_len: int,
    out_len: int,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    n_samples: int = 24,
) -> CapacityResult:
    """Throughput-maximizing batch size for one engine on one workload."""
    best: GenerationTimeline | None = None
    best_batch_size = 0
    for batch in candidates:
        if engine.supports_multi_request is False and batch > 1:
            break
        timeline = sim.simulate(
            engine, Workload(in_len, out_len, batch), n_samples=n_samples
        )
        if timeline.oom:
            continue
        if best is None or timeline.tokens_per_second > best.tokens_per_second:
            best = timeline
            best_batch_size = batch
    if best is None:
        return CapacityResult(
            engine_name=engine.name,
            best_batch=0,
            tokens_per_second=0.0,
            timeline=None,
            all_oom=True,
        )
    return CapacityResult(
        engine_name=engine.name,
        best_batch=best_batch_size,
        tokens_per_second=best.tokens_per_second,
        timeline=best,
    )
