"""End-to-end performance simulation of inference engines at paper scale.

Combines four substrates into per-step latencies and end-to-end throughput
for any (:class:`EngineSpec`, model, hardware, workload) combination:

- :class:`repro.hardware.timing.LatencyModel` — roofline costs of GEMMs,
  attention and PCIe transfers;
- :class:`repro.core.prefetch.AsyncPrefetcher` — the Figure-7 stream
  schedules (sequential fetch, overlapped prefetch, elastic prefetch);
- :class:`repro.core.memory_model.MemoryModel` — Eq. 6-8 placement;
- the engine's declarative behaviour from :mod:`repro.perf.engines`.

Decode latency in long-context inference is dominated by three terms the
simulator models explicitly: reading the model weights once per step
(memory-bound), reading the attended KV cache (what sparsity shrinks), and
moving offloaded KV over PCIe (what elastic loading shrinks and overlap
hides). Framework dispatch overhead is the fourth, smaller term that
separates Hugging Face from compiled engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.memory_model import KV_COEFF, RUNTIME_OVERHEAD, MemoryModel
from repro.core.prefetch import AsyncPrefetcher, StepTimings
from repro.hardware.spec import HardwareSpec
from repro.hardware.timing import BYTES_PER_VALUE, LatencyModel, OpCost
from repro.models.config import ModelConfig
from repro.perf.engines import (
    EngineSpec,
    OffloadPolicy,
    PreprocessKind,
    RetrievalKind,
)

# The retrieval head's weights: ~0.03B parameters at FP16 (paper Sec. 7.4
# reports ~60MB for Llama3-8B / Qwen3-8B scale teachers).
RETRIEVAL_HEAD_BYTES = 60 * 10**6

# Mean adjacent-step selection overlap (Fig. 6b measures >80%); elastic
# loading transfers only the complement.
DEFAULT_OVERLAP = 0.8

# KV-cache preprocessing cost, expressed as passes over the key cache.
PREPROCESS_PASSES = {
    PreprocessKind.NONE: 0.0,
    PreprocessKind.PAGING: 1.0,  # one min/max scan
    PreprocessKind.CLUSTERING: 30.0,  # k-means iterations over all keys
    PreprocessKind.QUANTIZATION: 6.0,  # calibration + pack + SVD-style pass
}

# Candidate-pool compression of each retrieval scheme (Sec. 3.1): Quest
# scores one vector pair per 16-token page, ClusterKV one centroid per
# ~80-token cluster, ShadowKV every key at 4-bit.
PAGE_SIZE = 16
CLUSTER_COMPRESSION = 80
QUANTIZED_KEY_BYTES = 0.5

# ShadowKV keeps an on-GPU cache of recently fetched V chunks. When the
# scored prompt pool fits inside the budget the selection is static across
# steps and the cache hits most fetches; once the pool exceeds the budget
# the selection churns and (lacking elastic diffing) every step re-fetches.
# Newly generated tokens' V lands in contiguous recent chunks with high
# cache locality.
SHADOWKV_CHUNK_HIT = 0.6
SHADOWKV_GENERATED_HIT = 0.95
SHADOWKV_RECENT_WINDOW = 256  # full-precision KV kept for recent tokens


@dataclass(frozen=True)
class Workload:
    """One (input length, output length, batch) evaluation point."""

    in_len: int
    out_len: int
    batch: int = 1

    @property
    def label(self) -> str:
        def k(n: int) -> str:
            return f"{n // 1024}k" if n % 1024 == 0 and n >= 1024 else str(n)

        return f"[{k(self.in_len)}, {k(self.out_len)}]"

    @property
    def final_len(self) -> int:
        return self.in_len + self.out_len


@dataclass(frozen=True)
class StepSample:
    """Timings of one sampled decode step."""

    seq_len: int
    attended: int
    layers_on_gpu: int
    timings: StepTimings


@dataclass
class GenerationTimeline:
    """Resolved end-to-end run of one engine on one workload."""

    engine: EngineSpec
    workload: Workload
    oom: bool = False
    oom_reason: str = ""
    prefill_s: float = 0.0
    decode_s: float = 0.0
    samples: list[StepSample] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.prefill_s + self.decode_s

    @property
    def tokens_per_second(self) -> float:
        """End-to-end throughput: generated tokens over total wall time."""
        if self.oom or self.total_s <= 0:
            return 0.0
        return self.workload.batch * self.workload.out_len / self.total_s

    @property
    def decode_tokens_per_second(self) -> float:
        """Decode-phase throughput (excludes prefill)."""
        if self.oom or self.decode_s <= 0:
            return 0.0
        return self.workload.batch * self.workload.out_len / self.decode_s


class PerfSimulator:
    """Times engines on a (model, hardware) pair.

    Args:
        model: paper-scale architecture preset (timing-only; never
            materialized).
        spec: hardware platform.
        budget: KV retrieval budget B (the paper evaluates at 2048).
        overlap: adjacent-step selection overlap driving elastic loading.
    """

    def __init__(
        self,
        model: ModelConfig,
        spec: HardwareSpec,
        budget: int = 2048,
        overlap: float = DEFAULT_OVERLAP,
    ):
        if not 0.0 <= overlap < 1.0:
            raise ValueError(f"overlap must be in [0, 1), got {overlap}")
        self.model = model
        self.spec = spec
        self.budget = budget
        self.overlap = overlap
        self.latency = LatencyModel(spec)
        self.prefetcher = AsyncPrefetcher(spec)

    # ---- memory accounting ----------------------------------------------------

    def memory_model(self, engine: EngineSpec, batch: int) -> MemoryModel:
        """Eq. 6-8 model for this engine (only SpeContext carries a DLM)."""
        dlm = RETRIEVAL_HEAD_BYTES if engine.retrieval is RetrievalKind.HEAD else 0
        return MemoryModel(
            self.model, dlm, self.spec, requests=batch, budget=self.budget
        )

    def _weights_bytes(self, engine: EngineSpec) -> float:
        dlm = RETRIEVAL_HEAD_BYTES if engine.retrieval is RetrievalKind.HEAD else 0
        return RUNTIME_OVERHEAD * (self.model.parameter_bytes() + dlm)

    def _kv_token_layer_bytes(self) -> int:
        return self.model.kv_bytes_per_token_layer()

    def _full_kv_bytes(
        self, seq_len: int, batch: int, layers: int | None = None
    ) -> float:
        layers = self.model.n_layers if layers is None else layers
        # The +alpha repeat_kv buffer of Sec. 6.2 applies to GQA/MQA.
        eff = layers + self.model.group_size
        return (
            KV_COEFF * batch * eff * seq_len
            * self.model.n_kv_heads * self.model.head_dim
        )

    def _eager_prefill_transient(
        self, engine: EngineSpec, in_len: int, batch: int
    ) -> float:
        """Materialized attention-score matrix of one prefill layer."""
        return (
            float(engine.attn_score_bytes) * batch
            * self.model.n_q_heads * in_len * in_len
        )

    def resident_bytes(
        self,
        engine: EngineSpec,
        seq_len: int,
        batch: int,
        layers_on_gpu: int,
        in_len: int | None = None,
    ) -> float:
        """Peak GPU bytes at ``seq_len`` under the given placement."""
        total = self._weights_bytes(engine)
        if engine.offload is OffloadPolicy.VALUE_CPU:
            # Quantized K resident for the whole sequence; V lives on the
            # CPU behind per-layer budget buffers, except a small window of
            # recent tokens kept in full precision.
            k_bytes = (
                batch
                * seq_len
                * self.model.n_kv_heads
                * self.model.head_dim
                * QUANTIZED_KEY_BYTES
                * self.model.n_layers
            )
            v_buffers = (
                batch
                * self.budget
                * self.model.n_kv_heads
                * self.model.head_dim
                * BYTES_PER_VALUE
                * self.model.n_layers
            )
            recent = self._full_kv_bytes(
                min(SHADOWKV_RECENT_WINDOW, seq_len), batch
            )
            return total + k_bytes + v_buffers + recent
        total += self._full_kv_bytes(seq_len, batch, layers=layers_on_gpu)
        offloaded = self.model.n_layers - layers_on_gpu
        if offloaded > 0:
            total += (
                KV_COEFF
                * batch
                * offloaded
                * self.budget
                * self.model.n_kv_heads
                * self.model.head_dim
            )
        return total

    # ---- placement --------------------------------------------------------------

    def static_all_gpu(self, engine: EngineSpec, workload: Workload) -> bool:
        """The Challenge-3 predetermined choice: all-GPU iff the *final*
        length fits (a static system cannot adapt mid-run)."""
        final = workload.final_len
        return (
            self.resident_bytes(engine, final, workload.batch, self.model.n_layers)
            <= self.spec.gpu_memory_bytes
        )

    def placement(
        self,
        engine: EngineSpec,
        seq_len: int,
        batch: int,
        static_all_gpu: bool,
    ) -> int:
        """Layers whose KV is GPU-resident at ``seq_len``."""
        layers = self.model.n_layers
        if engine.offload is OffloadPolicy.NEVER:
            return layers
        if engine.offload is OffloadPolicy.FULL_CPU:
            return 0
        if engine.offload is OffloadPolicy.VALUE_CPU:
            return layers  # K resident; V-side handled in transfer bytes
        if engine.offload is OffloadPolicy.STATIC:
            return layers if static_all_gpu else 0
        # ADAPTIVE: Eq. 8 placement.
        mm = self.memory_model(engine, batch)
        return max(mm.max_layers_on_gpu(seq_len), 0)

    # ---- per-step cost assembly --------------------------------------------------

    def attended_len(self, engine: EngineSpec, seq_len: int, in_len: int) -> int:
        """KV entries each decode step attends over (Challenge 2)."""
        if not engine.sparse:
            return seq_len
        generated = max(seq_len - in_len, 0)
        if engine.retains_generated:
            # Budget covers the preprocessed prompt; every generated KV
            # pair is retained and attended in full.
            return min(self.budget, in_len) + generated
        return min(self.budget, seq_len)

    def _layer_linear_cost(self, batch: int) -> OpCost:
        """QKV/O projections + FFN of one layer for one decode step."""
        cfg = self.model
        per_layer_params = (
            cfg.parameter_bytes() // BYTES_PER_VALUE
            - cfg.vocab_size * cfg.d_model
        ) / cfg.n_layers
        flops = 2.0 * per_layer_params * batch
        weight_bytes = per_layer_params * BYTES_PER_VALUE
        act_bytes = batch * cfg.d_model * BYTES_PER_VALUE * 8  # residual traffic
        return OpCost(flops=flops, gpu_bytes=weight_bytes + act_bytes, kernels=7)

    def _layer_attention_cost(
        self, engine: EngineSpec, attended: int, batch: int
    ) -> OpCost:
        cfg = self.model
        cost = self.latency.attention_decode_cost(
            batch, cfg.n_q_heads, cfg.n_kv_heads, cfg.head_dim, attended
        )
        if engine.attn_score_bytes:
            # Eager writes then re-reads the fp32 score matrix.
            extra = 2.0 * engine.attn_score_bytes * batch * cfg.n_q_heads * attended
            cost = cost + OpCost(flops=0.0, gpu_bytes=extra, kernels=3)
        if engine.reallocates_kv_cache:
            # HF dynamic cache: `torch.cat` re-reads and re-writes the whole
            # layer KV every step.
            cat = 2.0 * batch * attended * self._kv_token_layer_bytes()
            cost = cost + OpCost(flops=0.0, gpu_bytes=cat, kernels=2)
        if engine.sparse:
            # Gathering the selected KV pairs into a contiguous buffer for
            # the sparse kernel (torch.gather: read + write).
            gathered = min(self.budget, attended)
            gather = 2.0 * batch * gathered * self._kv_token_layer_bytes()
            cost = cost + OpCost(flops=0.0, gpu_bytes=gather, kernels=2)
        return cost

    def layer_compute_seconds(
        self, engine: EngineSpec, attended: int, batch: int
    ) -> float:
        """Attention + projections + FFN + dispatch of one layer, one step."""
        cost = self._layer_linear_cost(batch) + self._layer_attention_cost(
            engine, attended, batch
        )
        return self.latency.op_seconds(cost) + engine.framework_overhead_per_layer_s

    def retrieval_seconds_per_layer(
        self, engine: EngineSpec, seq_len: int, in_len: int, batch: int
    ) -> float:
        """Per-layer retrieval op of the layer-wise baselines (Challenge 1)."""
        cfg = self.model
        pool = min(in_len, seq_len)  # baselines score the preprocessed prompt
        if engine.retrieval is RetrievalKind.PAGE:
            candidates = 2.0 * pool / PAGE_SIZE  # min & max page vectors
            key_bytes = candidates * cfg.n_kv_heads * cfg.head_dim * BYTES_PER_VALUE
        elif engine.retrieval is RetrievalKind.CLUSTER:
            candidates = pool / CLUSTER_COMPRESSION
            key_bytes = candidates * cfg.n_kv_heads * cfg.head_dim * BYTES_PER_VALUE
        elif engine.retrieval is RetrievalKind.QUANTIZED:
            candidates = float(pool)
            key_bytes = candidates * cfg.n_kv_heads * cfg.head_dim * QUANTIZED_KEY_BYTES
        else:
            return 0.0
        flops = 2.0 * batch * cfg.n_q_heads * cfg.head_dim * candidates
        cost = OpCost(flops=flops, gpu_bytes=key_bytes * batch, kernels=3)
        return self.latency.op_seconds(cost)

    def retrieval_head_seconds(self, seq_len: int, batch: int) -> float:
        """SpeContext's one pre-pass retrieval: QK projection + scoring the
        head's full K cache + top-k (Sec. 4.3)."""
        cfg = self.model
        dc = cfg.head_dim
        k_cache_bytes = batch * cfg.n_q_heads * seq_len * dc * BYTES_PER_VALUE
        flops = 2.0 * batch * cfg.n_q_heads * dc * seq_len
        cost = OpCost(flops=flops, gpu_bytes=k_cache_bytes, kernels=4)
        return self.latency.op_seconds(cost)

    def layer_transfer_bytes(
        self,
        engine: EngineSpec,
        seq_len: int,
        in_len: int,
        batch: int,
        layers_on_gpu: int,
    ) -> list[float]:
        """Host->device KV bytes each layer needs this step."""
        cfg = self.model
        attended = self.attended_len(engine, seq_len, in_len)
        kv_tok = self._kv_token_layer_bytes()
        layers = cfg.n_layers
        per_layer = [0.0] * layers

        if engine.offload is OffloadPolicy.VALUE_CPU:
            # V of the tokens selected from the prompt pool plus retained
            # generated tokens, every layer, minus chunk-cache hits.
            prompt_sel = float(min(self.budget, in_len))
            if in_len <= self.budget:
                prompt_sel *= 1.0 - SHADOWKV_CHUNK_HIT
            generated = max(seq_len - in_len, 0)
            gen_fetch = generated * (1.0 - SHADOWKV_GENERATED_HIT)
            v_bytes = (prompt_sel + gen_fetch) * (kv_tok / 2) * batch
            return [v_bytes] * layers

        offloaded = layers - layers_on_gpu
        if offloaded <= 0:
            return per_layer

        if engine.sparse:
            tokens = min(self.budget, attended)
            if engine.elastic:
                tokens = tokens * (1.0 - self.overlap)
            moved = tokens * kv_tok * batch
        else:
            moved = attended * kv_tok * batch
        # Offloaded layers are the trailing ones (Algorithm 2).
        for i in range(layers_on_gpu, layers):
            per_layer[i] = moved
        return per_layer

    def decode_step(
        self,
        engine: EngineSpec,
        seq_len: int,
        in_len: int,
        batch: int,
        static_all_gpu: bool = True,
    ) -> StepSample:
        """Resolve one decode step's stream schedule at ``seq_len``."""
        attended = self.attended_len(engine, seq_len, in_len)
        layers_on_gpu = self.placement(engine, seq_len, batch, static_all_gpu)
        compute = [
            self.layer_compute_seconds(engine, attended, batch)
        ] * self.model.n_layers
        transfer = self.layer_transfer_bytes(
            engine, seq_len, in_len, batch, layers_on_gpu
        )

        dataflow = engine.dataflow

        pre_s = 0.0
        per_layer_retrieval = 0.0
        if engine.retrieval is RetrievalKind.HEAD:
            pre_s = self.retrieval_head_seconds(seq_len, batch)
        else:
            per_layer_retrieval = self.retrieval_seconds_per_layer(
                engine, seq_len, in_len, batch
            )

        timings = self.prefetcher.step_timings(
            dataflow,
            compute,
            transfer,
            retrieval_s_per_layer=per_layer_retrieval,
            pre_retrieval_s=pre_s,
        )
        return StepSample(
            seq_len=seq_len,
            attended=attended,
            layers_on_gpu=layers_on_gpu,
            timings=timings,
        )

    # ---- prefill ------------------------------------------------------------------

    def prefill_seconds(
        self, engine: EngineSpec, workload: Workload, layers_on_gpu: int
    ) -> float:
        """Prompt processing: compute + preprocessing + offload writeback."""
        cfg = self.model
        in_len, batch = workload.in_len, workload.batch
        params = cfg.parameter_bytes() / BYTES_PER_VALUE
        flops = 2.0 * params * batch * in_len
        flops += 4.0 * batch * cfg.n_q_heads * cfg.head_dim * float(in_len) ** 2
        weight_bytes = cfg.parameter_bytes()
        score_bytes = (
            2.0 * self._eager_prefill_transient(engine, in_len, batch) * cfg.n_layers
        )
        cost = OpCost(
            flops=flops,
            gpu_bytes=weight_bytes + score_bytes,
            kernels=cfg.n_layers * 8,
        )
        seconds = self.latency.op_seconds(cost)
        seconds += engine.framework_overhead_per_layer_s * cfg.n_layers

        # KV preprocessing (Quest paging / ClusterKV clustering / ShadowKV
        # quantization) scans the key cache repeatedly.
        passes = PREPROCESS_PASSES[engine.preprocess]
        if passes:
            k_bytes = batch * in_len * cfg.n_kv_heads * cfg.head_dim * BYTES_PER_VALUE
            scan = OpCost(
                flops=2.0 * passes * k_bytes,
                gpu_bytes=passes * k_bytes * cfg.n_layers,
            )
            seconds += self.latency.op_seconds(scan)

        # Writing offloaded layers' prompt KV back to the host.
        offloaded = cfg.n_layers - layers_on_gpu
        if engine.offload is OffloadPolicy.VALUE_CPU:
            d2h = batch * in_len * (self._kv_token_layer_bytes() / 2) * cfg.n_layers
            seconds += self.latency.transfer_seconds(d2h)
        elif offloaded > 0:
            d2h = batch * in_len * self._kv_token_layer_bytes() * offloaded
            seconds += self.latency.transfer_seconds(d2h)
        return seconds

    # ---- OOM -----------------------------------------------------------------------

    def oom_reason(self, engine: EngineSpec, workload: Workload) -> str:
        """Non-empty string when the run cannot fit in GPU memory."""
        batch = workload.batch
        mem = self.spec.gpu_memory_bytes
        transient = self._eager_prefill_transient(engine, workload.in_len, batch)
        static = self.static_all_gpu(engine, workload)
        final = workload.final_len

        placement_final = self.placement(engine, final, batch, static)
        resident = self.resident_bytes(
            engine, final, batch, placement_final, in_len=workload.in_len
        )
        if engine.offload in (OffloadPolicy.NEVER,):
            if resident + 0.0 > mem:
                return (
                    f"KV cache at {final} tokens x{batch} needs "
                    f"{resident / 1e9:.1f}GB of {mem / 1e9:.0f}GB"
                )
        if resident > mem:
            return (
                f"resident {resident / 1e9:.1f}GB exceeds {mem / 1e9:.0f}GB "
                f"even with offloading"
            )
        prefill_resident = self.resident_bytes(
            engine,
            workload.in_len,
            batch,
            self.placement(engine, workload.in_len, batch, static),
            in_len=workload.in_len,
        )
        if prefill_resident + transient > mem:
            return (
                f"prefill attention scores need {transient / 1e9:.1f}GB transient "
                f"on top of {prefill_resident / 1e9:.1f}GB resident"
            )
        return ""

    # ---- end-to-end ----------------------------------------------------------------

    def simulate(
        self, engine: EngineSpec, workload: Workload, n_samples: int = 48
    ) -> GenerationTimeline:
        """Full run: prefill + ``out_len`` decode steps (sampled + integrated).

        Decode cost varies smoothly with sequence length (piecewise under
        placement changes), so the simulator evaluates ``n_samples`` evenly
        spaced steps and integrates with the trapezoid rule — exact for the
        linear segments that dominate.
        """
        timeline = GenerationTimeline(engine=engine, workload=workload)
        reason = self.oom_reason(engine, workload)
        if reason:
            timeline.oom = True
            timeline.oom_reason = reason
            return timeline

        static = self.static_all_gpu(engine, workload)
        first_placement = self.placement(
            engine, workload.in_len, workload.batch, static
        )
        timeline.prefill_s = self.prefill_seconds(engine, workload, first_placement)

        out = workload.out_len
        n = max(2, min(n_samples, out))
        sample_steps = sorted({
            int(round(1 + (out - 1) * i / (n - 1))) for i in range(n)
        })
        samples = [
            self.decode_step(
                engine,
                workload.in_len + step,
                workload.in_len,
                workload.batch,
                static_all_gpu=static,
            )
            for step in sample_steps
        ]
        timeline.samples = samples

        total = 0.0
        for left, right, s_left, s_right in zip(
            sample_steps, sample_steps[1:], samples, samples[1:]
        ):
            width = right - left
            total += 0.5 * (s_left.timings.total_s + s_right.timings.total_s) * width
        total += samples[0].timings.total_s  # the first step itself
        timeline.decode_s = total
        return timeline
