"""Rotary positional embeddings with YaRN context-window extension.

The paper's retrieval head reuses the EAGLE-3 DLM, which is trained with a 2K
context, and extends it to long contexts "using the training-free method
provided by YaRN" (Sec. 4.3). ``YarnConfig`` implements the NTK-by-parts
interpolation of YaRN (Peng et al.): low-frequency dimensions are position-
interpolated, high-frequency dimensions are left untouched, with a linear
ramp between the two regimes and an attention temperature correction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class YarnConfig:
    """YaRN extension parameters.

    Attributes:
        original_max_position: context window the weights were trained with.
        scaling_factor: ratio of the target window to the original window.
        beta_fast: rotations threshold above which dims are pure extrapolation.
        beta_slow: rotations threshold below which dims are pure interpolation.
        mscale: attention temperature coefficient (0.1 * ln(s) + 1 by default).
    """

    original_max_position: int = 2048
    scaling_factor: float = 1.0
    beta_fast: float = 32.0
    beta_slow: float = 1.0

    @property
    def attention_factor(self) -> float:
        """YaRN's sqrt-temperature applied to attention logits."""
        if self.scaling_factor <= 1.0:
            return 1.0
        return 0.1 * math.log(self.scaling_factor) + 1.0


def _yarn_ramp(low: float, high: float, dim_half: int) -> np.ndarray:
    """Linear ramp mask over rotary dimension indices, clipped to [0, 1]."""
    if low == high:
        high += 1e-3
    ramp = (np.arange(dim_half, dtype=np.float64) - low) / (high - low)
    return np.clip(ramp, 0.0, 1.0)


def _yarn_correction_index(
    num_rotations: float, dim: int, base: float, max_position: int
) -> float:
    """Dimension index where a frequency completes ``num_rotations`` over the window."""
    return (dim * math.log(max_position / (num_rotations * 2 * math.pi))) / (
        2 * math.log(base)
    )


# Shared cos/sin tables, keyed by every parameter that determines their
# values: (dim, max_position, base, yarn params, dtype). Building the trig
# tables is O(max_position * dim) — by far the dominant cost of a
# RotaryEmbedding — and the serving layer constructs one embedding per
# retrieval head (i.e. per specontext request), all with identical
# parameters. Cached tables are marked read-only so sharing is safe.
_TABLE_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_TABLE_CACHE_STATS = {"hits": 0, "misses": 0}


def rope_table_cache_info() -> dict[str, int]:
    """Hit/miss counters of the shared cos/sin table cache (for tests)."""
    return dict(_TABLE_CACHE_STATS)


def clear_rope_table_cache() -> None:
    """Drop all cached tables and reset the counters."""
    _TABLE_CACHE.clear()
    _TABLE_CACHE_STATS["hits"] = 0
    _TABLE_CACHE_STATS["misses"] = 0


class RotaryEmbedding:
    """Precomputed cos/sin tables for rotary position embedding.

    Supports plain RoPE (``yarn=None``) and YaRN-extended RoPE. The ``dim``
    is the per-head dimension; rotation happens over pairs laid out as the
    first/second half of the head dimension (Llama convention).
    """

    def __init__(
        self,
        dim: int,
        max_position: int,
        base: float = 10000.0,
        yarn: YarnConfig | None = None,
        dtype: np.dtype = np.float32,
    ):
        if dim % 2 != 0:
            raise ValueError(f"rotary dim must be even, got {dim}")
        self.dim = dim
        self.max_position = max_position
        self.base = base
        self.yarn = yarn

        dtype = np.dtype(dtype)
        key = (
            dim,
            max_position,
            base,
            yarn
            if yarn is None
            else (
                yarn.original_max_position,
                yarn.scaling_factor,
                yarn.beta_fast,
                yarn.beta_slow,
            ),
            dtype.str,
        )
        cached = _TABLE_CACHE.get(key)
        if cached is not None:
            _TABLE_CACHE_STATS["hits"] += 1
            self._cos, self._sin = cached
        else:
            _TABLE_CACHE_STATS["misses"] += 1
            self._cos, self._sin = self._build_tables(
                dim, max_position, base, yarn, dtype
            )
            self._cos.setflags(write=False)
            self._sin.setflags(write=False)
            _TABLE_CACHE[key] = (self._cos, self._sin)
        self._scale = yarn.attention_factor if yarn is not None else 1.0

    @staticmethod
    def _build_tables(
        dim: int,
        max_position: int,
        base: float,
        yarn: YarnConfig | None,
        dtype: np.dtype,
    ) -> tuple[np.ndarray, np.ndarray]:
        half = dim // 2
        inv_freq = 1.0 / (base ** (2.0 * np.arange(half, dtype=np.float64) / dim))

        if yarn is not None and yarn.scaling_factor > 1.0:
            low = _yarn_correction_index(
                yarn.beta_fast, dim, base, yarn.original_max_position
            )
            high = _yarn_correction_index(
                yarn.beta_slow, dim, base, yarn.original_max_position
            )
            low = max(math.floor(low), 0)
            high = min(math.ceil(high), half - 1)
            # 1 where we extrapolate (high frequency), 0 where we interpolate.
            extrapolation_mask = 1.0 - _yarn_ramp(low, high, half)
            interpolated = inv_freq / yarn.scaling_factor
            inv_freq = (
                interpolated * (1.0 - extrapolation_mask)
                + inv_freq * extrapolation_mask
            )

        positions = np.arange(max_position, dtype=np.float64)
        freqs = np.outer(positions, inv_freq)
        return np.cos(freqs).astype(dtype), np.sin(freqs).astype(dtype)

    @property
    def attention_scale(self) -> float:
        """Multiplicative correction YaRN applies to q/k before attention."""
        return self._scale

    def apply(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Rotate ``x`` of shape (..., seq, dim) at integer ``positions`` (seq,)."""
        positions = np.asarray(positions)
        if positions.ndim != 1 or positions.shape[0] != x.shape[-2]:
            raise ValueError(
                f"positions shape {positions.shape} does not match seq "
                f"len {x.shape[-2]}"
            )
        if np.any(positions >= self.max_position):
            raise ValueError(
                f"position {int(positions.max())} exceeds table size "
                f"{self.max_position}"
            )
        cos = self._cos[positions]
        sin = self._sin[positions]
        half = self.dim // 2
        x1 = x[..., :half]
        x2 = x[..., half:]
        rotated = np.concatenate(
            (x1 * cos - x2 * sin, x2 * cos + x1 * sin), axis=-1
        )
        return rotated * self._scale
