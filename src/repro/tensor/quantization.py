"""Low-bit per-channel quantization, used by the ShadowKV baseline.

ShadowKV (Sun et al.) quantizes the key cache and scores queries against the
quantized keys to select important KV pairs. We implement symmetric
per-channel affine quantization at arbitrary bit widths (4 and 8 in practice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedTensor:
    """Integer codes plus per-channel scale/zero-point for reconstruction."""

    codes: np.ndarray  # int32 codes, same shape as the original tensor
    scale: np.ndarray  # per-channel scale, broadcastable over codes
    zero_point: np.ndarray  # per-channel zero point
    bits: int

    @property
    def nbytes(self) -> int:
        """Storage footprint of the codes at the nominal bit width."""
        return (
            int(np.ceil(self.codes.size * self.bits / 8))
            + self.scale.nbytes
            + self.zero_point.nbytes
        )


def quantize_per_channel(
    x: np.ndarray, bits: int = 4, axis: int = -1
) -> QuantizedTensor:
    """Asymmetric per-channel quantization along every axis except ``axis``.

    Each slice along ``axis`` (a "channel vector") shares one scale/zero-point
    computed from its min/max, mirroring KV-cache quantization kernels.
    """
    if bits < 2 or bits > 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    levels = (1 << bits) - 1
    lo = np.min(x, axis=axis, keepdims=True)
    hi = np.max(x, axis=axis, keepdims=True)
    span = np.maximum(hi - lo, 1e-8)
    scale = span / levels
    zero_point = lo
    codes = np.clip(np.round((x - zero_point) / scale), 0, levels).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, zero_point=zero_point, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Reconstruct the float tensor from a :class:`QuantizedTensor`."""
    return q.codes.astype(np.float64) * q.scale + q.zero_point
