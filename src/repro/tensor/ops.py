"""Core numerical ops for the transformer substrate.

All functions are pure, operate on the trailing axis unless stated otherwise,
and are numerically stabilized the same way production kernels are (max
subtraction in softmax, epsilon in norms).
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square layer normalization (Llama-style, no mean centering)."""
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def layer_norm(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Standard layer normalization over the trailing axis."""
    mean = np.mean(x, axis=-1, keepdims=True)
    variance = np.var(x, axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(variance + eps) * weight
    if bias is not None:
        normed = normed + bias
    return normed


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation, as used in SwiGLU FFNs.

    The exponent is clipped at the dtype's ``exp`` overflow threshold so
    large-negative inputs produce (near-)zero instead of an overflow
    RuntimeWarning under ``-W error``. Inputs above the clip are untouched,
    so the result is bit-identical to the naive ``x / (1 + exp(-x))`` there.
    """
    x = np.asarray(x)
    limit = 88.0 if x.dtype == np.float32 else 709.0
    z = np.exp(-np.maximum(x, -limit))
    return x / (1.0 + z)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU activation."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def linear(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Affine projection ``x @ weight.T + bias`` (torch.nn.Linear convention).

    ``weight`` has shape (out_features, in_features). A 1-D ``x`` is
    computed as a one-row GEMM so that single-token decode projections
    reduce in the same order as the row-batched :func:`linear_rows` path
    and stay bit-identical to it. ``bias is None`` returns the matmul
    result directly — no bias broadcast, no extra temporary.
    """
    if x.ndim == 1:
        out = (x[None, :] @ weight.T)[0]
    else:
        out = x @ weight.T
    if bias is None:
        return out
    return out + bias


def linear_rows(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Row-batched affine projection with per-row GEMM semantics.

    Fuses ``n`` independent single-token projections into ONE numpy call:
    ``np.matmul(x[:, None, :], weight.T)`` dispatches a GEMM per leading
    slice, so row ``r`` of the result is bit-identical to
    ``linear(x[r], weight, bias)``. A row-fused ``x @ weight.T`` would be
    faster still, but BLAS backends accumulate multi-row GEMMs in a
    different order than one-row GEMMs, which would break the batched ==
    sequential bit-identity guarantee the serving layer relies on.
    """
    out = np.matmul(x[:, None, :], weight.T)[:, 0, :]
    if bias is None:
        return out
    return out + bias


def kl_divergence(
    p_logits: np.ndarray, q_logits: np.ndarray, axis: int = -1
) -> np.ndarray:
    """KL(P || Q) between distributions given as logits (Eq. 2 in the paper)."""
    log_p = log_softmax(p_logits, axis=axis)
    log_q = log_softmax(q_logits, axis=axis)
    p = np.exp(log_p)
    return np.sum(p * (log_p - log_q), axis=axis)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy of integer ``targets`` under ``logits``.

    ``logits`` has shape (..., vocab) and ``targets`` the matching prefix shape.
    """
    log_probs = log_softmax(logits, axis=-1)
    flat_logp = log_probs.reshape(-1, log_probs.shape[-1])
    flat_targets = targets.reshape(-1)
    picked = flat_logp[np.arange(flat_targets.size), flat_targets]
    return float(-np.mean(picked))


def top_k_indices(scores: np.ndarray, k: int, axis: int = -1) -> np.ndarray:
    """Indices of the ``k`` largest entries along ``axis`` (sorted descending).

    If ``k`` exceeds the axis length, all indices are returned.
    """
    length = scores.shape[axis]
    if k >= length:
        order = np.argsort(-scores, axis=axis)
        return order
    part = np.argpartition(-scores, k - 1, axis=axis)
    top = np.take(part, np.arange(k), axis=axis)
    top_scores = np.take_along_axis(scores, top, axis=axis)
    order = np.argsort(-top_scores, axis=axis)
    return np.take_along_axis(top, order, axis=axis)
