"""Minimal numpy tensor-op library used by the transformer substrate.

This package plays the role that PyTorch/CUDA kernels play in the paper's
implementation: softmax, normalization, activations, linear projections,
rotary embeddings (with YaRN context extension) and the low-bit quantization
used by the ShadowKV baseline.
"""

from repro.tensor.ops import (
    cross_entropy,
    gelu,
    kl_divergence,
    layer_norm,
    linear,
    linear_rows,
    log_softmax,
    rms_norm,
    silu,
    softmax,
    top_k_indices,
)
from repro.tensor.quantization import QuantizedTensor, dequantize, quantize_per_channel
from repro.tensor.rope import (
    RotaryEmbedding,
    YarnConfig,
    clear_rope_table_cache,
    rope_table_cache_info,
)

__all__ = [
    "softmax",
    "log_softmax",
    "rms_norm",
    "layer_norm",
    "silu",
    "gelu",
    "linear",
    "linear_rows",
    "kl_divergence",
    "cross_entropy",
    "top_k_indices",
    "RotaryEmbedding",
    "YarnConfig",
    "clear_rope_table_cache",
    "rope_table_cache_info",
    "quantize_per_channel",
    "dequantize",
    "QuantizedTensor",
]
