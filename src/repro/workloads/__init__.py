"""Synthetic benchmark workloads, metrics, judge and evaluation harness.

- :mod:`repro.workloads.longbench` — LongBench-shaped QA tasks (trivia,
  2wikimqa, hotpotqa, passage_count) for the long-context *input* scenario.
- :mod:`repro.workloads.longwriter` — LongWriter-shaped writing tasks for
  the long-context *reasoning* scenario.
- :mod:`repro.workloads.metrics` — token F1, exact match, count score.
- :mod:`repro.workloads.judge` — deterministic six-dimension quality judge.
- :mod:`repro.workloads.harness` — shared-prefill policy evaluation.
"""

from repro.workloads.base import EntityPool, QAExample, weave_context
from repro.workloads.harness import (
    DecodeOutput,
    PolicyBench,
    PreparedPrompt,
    decode_with_policy,
    evaluate_qa,
    prepare_prompt,
    score_qa,
    sweep_qa,
)
from repro.workloads.judge import (
    DIMENSIONS,
    JudgeScore,
    judge_generation,
    mean_scores,
)
from repro.workloads.longbench import (
    TASKS,
    generate_examples,
    make_2wikimqa,
    make_hotpotqa,
    make_passage_count,
    make_trivia,
)
from repro.workloads.longwriter import (
    WritingExample,
    generate_writing_examples,
    make_writing_example,
)
from repro.workloads.metrics import (
    bigram_validity,
    count_score,
    distinct_ratio,
    exact_match,
    prefix_match,
    token_f1,
)

__all__ = [
    "DIMENSIONS",
    "DecodeOutput",
    "EntityPool",
    "JudgeScore",
    "PolicyBench",
    "PreparedPrompt",
    "QAExample",
    "TASKS",
    "WritingExample",
    "bigram_validity",
    "count_score",
    "decode_with_policy",
    "distinct_ratio",
    "evaluate_qa",
    "exact_match",
    "generate_examples",
    "generate_writing_examples",
    "judge_generation",
    "make_2wikimqa",
    "make_hotpotqa",
    "make_passage_count",
    "make_trivia",
    "make_writing_example",
    "mean_scores",
    "prefix_match",
    "prepare_prompt",
    "score_qa",
    "sweep_qa",
    "token_f1",
    "weave_context",
]
