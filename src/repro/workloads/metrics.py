"""Scoring functions for the synthetic benchmark tasks.

The tokenizer is closed-vocabulary and reversible, so metrics operate on
token-id sequences directly: token-level F1 (the LongBench QA metric),
exact match, and the passage-count score. All return floats in [0, 1]
unless noted; experiment tables scale them to the paper's axes.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence


def token_f1(predicted: Sequence[int], gold: Sequence[int]) -> float:
    """Bag-of-tokens F1 between a predicted and gold answer.

    This mirrors LongBench's QA F1 (word-level, order-insensitive, with
    multiplicity), computed on token ids since our tokenizer is word-level.
    """
    if not predicted and not gold:
        return 1.0
    if not predicted or not gold:
        return 0.0
    overlap = Counter(predicted) & Counter(gold)
    n_common = sum(overlap.values())
    if n_common == 0:
        return 0.0
    precision = n_common / len(predicted)
    recall = n_common / len(gold)
    return 2 * precision * recall / (precision + recall)


def exact_match(predicted: Sequence[int], gold: Sequence[int]) -> float:
    """1.0 iff the sequences are identical."""
    return 1.0 if list(predicted) == list(gold) else 0.0


def prefix_match(predicted: Sequence[int], gold: Sequence[int]) -> float:
    """Fraction of the gold sequence correctly produced as a prefix.

    Order-sensitive: rewards following the answer chain in order, which is
    what degrades first when KV selection drops a link.
    """
    if not gold:
        return 1.0
    n = 0
    for p, g in zip(predicted, gold):
        if p != g:
            break
        n += 1
    return n / len(gold)


def count_score(predicted_count: int, true_count: int) -> float:
    """Relative-error score for the passage-counting task.

    1.0 for an exact count, decaying linearly to 0 at 100% relative error
    (LongBench scores count answers as exact-match; the relative form keeps
    the metric graded so budget sweeps produce curves, recorded as a
    substitution in DESIGN.md).
    """
    if true_count <= 0:
        raise ValueError(f"true_count must be positive, got {true_count}")
    return max(0.0, 1.0 - abs(predicted_count - true_count) / true_count)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return float(sum(values) / len(values))


def distinct_ratio(tokens: Sequence[int]) -> float:
    """Distinct tokens over total — the repetition signal the judge uses."""
    tokens = list(tokens)
    if not tokens:
        return 0.0
    return len(set(tokens)) / len(tokens)


def bigram_validity(
    tokens: Sequence[int], valid_bigrams: set[tuple[int, int]]
) -> float:
    """Fraction of adjacent pairs that are licensed transitions.

    The reference chain of a writing task defines the licensed bigrams; a
    generation that jumps between unrelated sections scores low — the
    judge's coherence signal.
    """
    tokens = list(tokens)
    if len(tokens) < 2:
        return 1.0 if tokens else 0.0
    pairs = list(zip(tokens, tokens[1:]))
    valid = sum(1 for pair in pairs if pair in valid_bigrams)
    return valid / len(pairs)
