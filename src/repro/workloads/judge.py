"""Deterministic six-dimension judge for long-form writing (Fig. 9/Table 4).

The paper scores LongWriter outputs with GPT-4o on six dimensions. We
cannot call a proprietary judge, so this module scores the same dimensions
with deterministic heuristics that are monotone in the same failure modes
(substitution recorded in DESIGN.md):

- relevance          staying on the outline's topics (off-plan tokens are
                     the analog of off-topic prose);
- accuracy           reproducing the planned content at the planned place;
- coherence          licensed section-to-section transitions;
- clarity            absence of repetition loops;
- breadth and depth  how many sections are covered and how deeply;
- reading experience composite of flow, non-repetition and completeness.

Each dimension is scaled to [0, 5] like the paper's tables.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.workloads.longwriter import WritingExample
from repro.workloads.metrics import bigram_validity, distinct_ratio

DIMENSIONS = (
    "relevance",
    "accuracy",
    "coherence",
    "clarity",
    "breadth_depth",
    "reading_experience",
)
MAX_SCORE = 5.0


@dataclass(frozen=True)
class JudgeScore:
    """Six-dimension score of one generation, each in [0, 5]."""

    relevance: float
    accuracy: float
    coherence: float
    clarity: float
    breadth_depth: float
    reading_experience: float

    @property
    def average(self) -> float:
        return sum(self.as_dict().values()) / len(DIMENSIONS)

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in DIMENSIONS}


def _relevance(generated: Sequence[int], example: WritingExample) -> float:
    if not generated:
        return 0.0
    on_plan = sum(1 for t in generated if t in example.plan_tokens)
    return on_plan / len(generated)


def _accuracy(generated: Sequence[int], example: WritingExample) -> float:
    reference = example.reference_chain
    if not reference:
        return 1.0
    matched = sum(1 for g, r in zip(generated, reference) if g == r)
    return matched / len(reference)


def _coherence(generated: Sequence[int], example: WritingExample) -> float:
    return bigram_validity(list(generated), example.reference_bigrams)


def _clarity(generated: Sequence[int]) -> float:
    return distinct_ratio(list(generated))


def _breadth_depth(generated: Sequence[int], example: WritingExample) -> float:
    """Breadth = sections whose topic was reached; depth = content coverage
    within the reached sections; score = breadth x mean depth."""
    produced = set(generated)
    reached = 0
    depth_total = 0.0
    for section in example.sections:
        topic, *contents = section
        covered = sum(1 for t in contents if t in produced)
        # The first section's topic appears in the prompt question, so a
        # section counts as reached when any of its content was written.
        if covered or topic in produced:
            reached += 1
            depth_total += covered / max(len(contents), 1)
    if reached == 0:
        return 0.0
    breadth = reached / len(example.sections)
    depth = depth_total / reached
    return breadth * depth


def _reading_experience(generated: Sequence[int], example: WritingExample) -> float:
    """Geometric-style composite: flow x non-repetition x completeness."""
    if not generated:
        return 0.0
    completion = min(len(generated) / max(len(example.reference_chain), 1), 1.0)
    flow = _coherence(generated, example)
    clean = _clarity(generated)
    return (max(flow, 0.0) * max(clean, 0.0) * completion) ** (1.0 / 3.0)


def judge_generation(
    generated: Sequence[int], example: WritingExample
) -> JudgeScore:
    """Score one generation against its writing plan."""
    generated = [int(t) for t in generated]
    # The terminator is bookkeeping, not prose.
    while generated and generated[-1] in example.stop_ids:
        generated.pop()
    reference = [
        t for t in example.reference_chain if t not in example.stop_ids
    ]
    trimmed_example = example
    if len(reference) != len(example.reference_chain):
        trimmed_example = WritingExample(
            prompt_ids=example.prompt_ids,
            reference_chain=tuple(reference),
            sections=example.sections,
            plan_tokens=example.plan_tokens,
            stop_ids=example.stop_ids,
            max_new_tokens=example.max_new_tokens,
            meta=example.meta,
        )
    return JudgeScore(
        relevance=MAX_SCORE * _relevance(generated, trimmed_example),
        accuracy=MAX_SCORE * _accuracy(generated, trimmed_example),
        coherence=MAX_SCORE * _coherence(generated, trimmed_example),
        clarity=MAX_SCORE * _clarity(generated),
        breadth_depth=MAX_SCORE * _breadth_depth(generated, trimmed_example),
        reading_experience=MAX_SCORE * _reading_experience(generated, trimmed_example),
    )


def mean_scores(scores: Sequence[JudgeScore]) -> JudgeScore:
    """Dimension-wise mean of many judged generations."""
    scores = list(scores)
    if not scores:
        raise ValueError("no scores to average")
    sums = {name: 0.0 for name in DIMENSIONS}
    for score in scores:
        for name, value in score.as_dict().items():
            sums[name] += value
    n = len(scores)
    return JudgeScore(**{name: sums[name] / n for name in DIMENSIONS})
