"""Synthetic LongWriter-shaped long-form writing tasks (Fig. 9 / Table 4).

A writing example is a short outline prompt (~100-200 tokens, matching the
paper's observation that LongWriter inputs are ~100 tokens) followed by a
*long* generation: the model writes the piece by following a section chain
planted in the outline — topic t0 leads to its content words, whose chain
hands over to topic t1, and so on to a final ``<sep>``.

Because the prompt is tiny but the generation is long, this reproduces the
paper's long-context *reasoning* regime: baselines that retain all newly
generated KV effectively run full attention (their outputs are identical
across budgets — the Sec. 7.2.2 observation), while SpeContext's budget
governs selection over the growing generated cache and so actually bites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.tokenizer import SyntheticTokenizer
from repro.workloads.base import EntityPool, weave_context


@dataclass(frozen=True)
class WritingExample:
    """One long-form writing task.

    Attributes:
        prompt_ids: outline prompt ending with ``<q> t0``.
        reference_chain: the gold generation (content chain ending in
            ``<sep>``).
        sections: per-section token lists ``[topic, content...]`` used by
            the judge's breadth/depth dimension.
        plan_tokens: every on-topic token (topics + contents).
        stop_ids: generation terminators.
        max_new_tokens: decoding cap (reference length + slack).
    """

    prompt_ids: np.ndarray
    reference_chain: tuple[int, ...]
    sections: tuple[tuple[int, ...], ...]
    plan_tokens: frozenset[int]
    stop_ids: tuple[int, ...]
    max_new_tokens: int
    meta: dict = field(default_factory=dict)

    @property
    def prompt_len(self) -> int:
        return int(self.prompt_ids.size)

    @property
    def reference_bigrams(self) -> set[tuple[int, int]]:
        """Licensed adjacent pairs, including the opening topic transition."""
        chain = self.reference_chain
        pairs = set(zip(chain, chain[1:]))
        if chain:
            first_topic = self.sections[0][0]
            pairs.add((first_topic, chain[0]))
        return pairs


def make_writing_example(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    n_sections: int = 8,
    section_len: int = 10,
    prompt_len: int = 160,
) -> WritingExample:
    """Build an outline whose sections chain into one long generation.

    Section ``i`` is planted as ``<doc> t_i c_i1 ... c_ik t_{i+1}`` (the
    trailing topic is the handover link); the last section ends with
    ``<sep>``. The full reference generation, starting from ``t_0`` in the
    question, is ``c_01 .. c_0k t_1 c_11 .. <sep>`` — roughly
    ``n_sections * (section_len + 1)`` tokens from a ~``prompt_len`` prompt.
    """
    if n_sections < 2:
        raise ValueError("need at least 2 sections")
    pool = EntityPool(tokenizer, rng)
    topics = pool.take(n_sections)
    contents = [pool.take(section_len) for _ in range(n_sections)]

    segments: list[list[int]] = []
    for i in range(n_sections):
        handover = [topics[i + 1]] if i + 1 < n_sections else [tokenizer.sep_id]
        segments.append([tokenizer.doc_id, topics[i]] + contents[i] + handover)

    ids, _ = weave_context(tokenizer, rng, segments, prompt_len, shuffle=False)
    prompt = np.array(
        ids + [tokenizer.question_id, topics[0]], dtype=np.int64
    )

    reference: list[int] = []
    for i in range(n_sections):
        reference.extend(contents[i])
        reference.append(topics[i + 1] if i + 1 < n_sections else tokenizer.sep_id)

    plan = frozenset(topics) | frozenset(t for sec in contents for t in sec)
    sections = tuple(
        (topics[i], *contents[i]) for i in range(n_sections)
    )
    return WritingExample(
        prompt_ids=prompt,
        reference_chain=tuple(reference),
        sections=sections,
        plan_tokens=plan,
        stop_ids=(tokenizer.sep_id,),
        max_new_tokens=len(reference) + 16,
        meta={"n_sections": n_sections, "section_len": section_len},
    )


def generate_writing_examples(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    n_examples: int,
    **kwargs,
) -> list[WritingExample]:
    """Draw ``n_examples`` i.i.d. writing tasks."""
    return [make_writing_example(tokenizer, rng, **kwargs) for _ in range(n_examples)]
