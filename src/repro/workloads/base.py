"""Shared example types and the context-weaving builder.

All benchmark generators produce token-level examples over the
:class:`~repro.models.tokenizer.SyntheticTokenizer`'s closed vocabulary.
Facts are short entity chains ("key v1 v2 v3") planted at random positions
inside filler prose; the constructed recall models answer by following the
chain with their induction heads, so an example is solved iff KV selection
keeps the evidence tokens — the causal link the paper's accuracy
experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.tokenizer import SyntheticTokenizer


@dataclass(frozen=True)
class QAExample:
    """One question-answering example.

    Attributes:
        task: generator name ("trivia", "2wikimqa", ...).
        prompt_ids: full prompt including the trailing question key.
        answer_ids: gold answer token chain.
        max_new_tokens: decoding length cap.
        stop_ids: tokens that terminate generation (may be empty).
        evidence_positions: prompt indices of the planted evidence tokens
            (used by retrieval hit-rate analyses, Fig. 5).
        meta: generator-specific extras (e.g. true passage count).
    """

    task: str
    prompt_ids: np.ndarray
    answer_ids: tuple[int, ...]
    max_new_tokens: int
    stop_ids: tuple[int, ...] = ()
    evidence_positions: tuple[int, ...] = ()
    meta: dict = field(default_factory=dict)

    @property
    def prompt_len(self) -> int:
        return int(self.prompt_ids.size)


class EntityPool:
    """Draws disjoint content-word ids for one example.

    Every entity in an example must be unique so that answer chains do not
    collide (a content token appearing twice with different successors
    would blur the induction circuit's evidence).
    """

    def __init__(self, tokenizer: SyntheticTokenizer, rng: np.random.Generator):
        self._ids = list(
            tokenizer.random_content_ids(rng, tokenizer.n_content, replace=False)
        )
        self._next = 0

    def take(self, n: int) -> list[int]:
        """Pop ``n`` fresh entity ids."""
        if self._next + n > len(self._ids):
            raise ValueError(
                f"example needs {self._next + n} distinct entities but the "
                f"vocabulary only has {len(self._ids)} content words; "
                f"increase vocab_size or reduce distractors"
            )
        out = self._ids[self._next : self._next + n]
        self._next += n
        return [int(i) for i in out]

    @property
    def used(self) -> int:
        return self._next


def weave_context(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    segments: list[list[int]],
    context_len: int,
    shuffle: bool = True,
) -> tuple[list[int], list[int]]:
    """Embed ``segments`` in filler prose totalling ``context_len`` tokens.

    Returns (token ids, start position of each segment in the *original*
    segment order). The layout is ``<bos> filler seg filler seg ... filler``.
    """
    order = list(range(len(segments)))
    if shuffle:
        rng.shuffle(order)
    seg_total = sum(len(segments[i]) for i in order)
    filler_total = context_len - seg_total - 1  # minus <bos>
    if filler_total < len(segments) + 1:
        raise ValueError(
            f"context_len {context_len} too small for {seg_total} segment "
            f"tokens plus filler"
        )
    # Split the filler budget into len(segments)+1 runs, each >= 1 token so
    # no two segments fuse into an accidental longer chain.
    n_runs = len(segments) + 1
    cuts = np.sort(rng.choice(filler_total - n_runs, size=n_runs - 1, replace=False))
    runs = np.diff(np.concatenate([[0], cuts + np.arange(1, n_runs), [filler_total]]))

    ids: list[int] = [tokenizer.bos_id]
    starts = [0] * len(segments)
    for slot, seg_index in enumerate(order):
        ids.extend(int(t) for t in tokenizer.random_filler_ids(rng, int(runs[slot])))
        starts[seg_index] = len(ids)
        ids.extend(segments[seg_index])
    ids.extend(int(t) for t in tokenizer.random_filler_ids(rng, int(runs[-1])))
    if len(ids) != context_len:
        raise AssertionError(
            f"woven context is {len(ids)} tokens, expected {context_len}"
        )
    return ids, starts


def segment_positions(start: int, length: int) -> tuple[int, ...]:
    """Absolute positions covered by a segment starting at ``start``."""
    return tuple(range(start, start + length))
