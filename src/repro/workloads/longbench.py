"""Synthetic LongBench-shaped tasks (paper Sec. 7.1, Fig. 8).

Four generators with the same task *shape* as the LongBench subsets the
paper evaluates — the substitution DESIGN.md records for the proprietary
datasets:

- ``trivia``       (TriviaQA-like): single-hop fact recall amid distractor
                   facts and prose.
- ``2wikimqa``     (2WikiMQA-like): two-hop recall across two documents
                   linked by a bridge entity.
- ``hotpotqa``     (HotpotQA-like): two-hop recall with supporting
                   documents planted far apart among many distractors.
- ``passage_count`` (PassageCount-like): enumerate the distinct passages
                   in a context with duplicated passages.

Each example's evidence is a handful of tokens scattered in a long
context, so accuracy is causally tied to whether the KV selection keeps
those tokens — the property Fig. 8's budget sweep measures.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.models.tokenizer import SyntheticTokenizer
from repro.workloads.base import EntityPool, QAExample, weave_context


def _qa_example(
    task: str,
    tokenizer: SyntheticTokenizer,
    context_ids: list[int],
    question_key: int,
    answer: list[int],
    evidence: tuple[int, ...],
    stop_ids: tuple[int, ...] = (),
    max_new_tokens: int | None = None,
    meta: dict | None = None,
) -> QAExample:
    prompt = np.array(
        context_ids + [tokenizer.question_id, question_key], dtype=np.int64
    )
    return QAExample(
        task=task,
        prompt_ids=prompt,
        answer_ids=tuple(answer),
        max_new_tokens=max_new_tokens or len(answer),
        stop_ids=stop_ids,
        evidence_positions=evidence,
        meta=meta or {},
    )


def make_trivia(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    context_len: int = 2048,
    answer_len: int = 3,
    n_distractors: int = 12,
) -> QAExample:
    """Single-hop recall: one gold fact among ``n_distractors`` decoys."""
    pool = EntityPool(tokenizer, rng)
    key, *answer = pool.take(1 + answer_len)
    gold = [key] + answer

    segments = [gold]
    for _ in range(n_distractors):
        d_key, *d_vals = pool.take(1 + answer_len)
        segments.append([d_key] + d_vals)

    ids, starts = weave_context(tokenizer, rng, segments, context_len)
    evidence = tuple(range(starts[0], starts[0] + len(gold)))
    return _qa_example("trivia", tokenizer, ids, key, answer, evidence)


def _two_hop(
    task: str,
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    context_len: int,
    tail_len: int,
    n_distractors: int,
    far_apart: bool,
) -> QAExample:
    """Two-hop recall: doc A links key->bridge, doc B links bridge->values."""
    pool = EntityPool(tokenizer, rng)
    key, bridge, *tail = pool.take(2 + tail_len)
    doc_a = [tokenizer.doc_id, key, bridge]
    doc_b = [tokenizer.doc_id, bridge] + tail

    segments = [doc_a, doc_b]
    for _ in range(n_distractors):
        d_key, d_bridge, *d_tail = pool.take(2 + tail_len)
        segments.append([tokenizer.doc_id, d_key, d_bridge] + d_tail)

    if far_apart:
        # Supporting docs pinned to opposite ends (HotpotQA's scattered
        # evidence): weave distractors, then prepend/append supports.
        inner_len = context_len - len(doc_a) - len(doc_b)
        ids, starts = weave_context(tokenizer, rng, segments[2:], inner_len)
        ids = [ids[0]] + doc_a + ids[1:] + doc_b
        start_a, start_b = 1, context_len - len(doc_b)
    else:
        ids, starts = weave_context(tokenizer, rng, segments, context_len)
        start_a, start_b = starts[0], starts[1]

    evidence = tuple(range(start_a, start_a + len(doc_a))) + tuple(
        range(start_b, start_b + len(doc_b))
    )
    answer = [bridge] + tail
    return _qa_example(task, tokenizer, ids, key, answer, evidence)


def make_2wikimqa(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    context_len: int = 2048,
    tail_len: int = 2,
    n_distractors: int = 10,
) -> QAExample:
    """Two-hop multi-document QA with randomly placed supporting docs."""
    return _two_hop(
        "2wikimqa", tokenizer, rng, context_len, tail_len, n_distractors,
        far_apart=False,
    )


def make_hotpotqa(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    context_len: int = 2048,
    tail_len: int = 2,
    n_distractors: int = 18,
) -> QAExample:
    """Two-hop QA with supporting docs at opposite context ends."""
    return _two_hop(
        "hotpotqa", tokenizer, rng, context_len, tail_len, n_distractors,
        far_apart=True,
    )


def make_passage_count(
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    context_len: int = 2048,
    n_distinct: int = 6,
    n_duplicates: int = 4,
    body_len: int = 24,
) -> QAExample:
    """Counting-as-enumeration: distinct passage ids form a chain.

    Each distinct passage ``j`` opens with ``<doc> pid_j pid_{j+1}`` (the
    last links to ``<sep>``); duplicated passages repeat an earlier header
    and body verbatim. The model enumerates the distinct ids from
    ``pid_1`` and stops at ``<sep>``; the predicted count is the number of
    enumerated ids plus one. This replaces LongBench's free-form counting
    with a circuit-solvable equivalent that still requires evidence from
    every distinct passage (substitution recorded in DESIGN.md).
    """
    if n_distinct < 2:
        raise ValueError("need at least 2 distinct passages")
    pool = EntityPool(tokenizer, rng)
    pids = pool.take(n_distinct)

    passages: list[list[int]] = []
    for j, pid in enumerate(pids):
        nxt = pids[j + 1] if j + 1 < n_distinct else tokenizer.sep_id
        body = [int(t) for t in tokenizer.random_filler_ids(rng, body_len)]
        passages.append([tokenizer.doc_id, pid, nxt] + body)

    segments = list(passages)
    dup_sources = rng.integers(0, n_distinct, size=n_duplicates)
    for src in dup_sources:
        segments.append(list(passages[int(src)]))

    ids, starts = weave_context(tokenizer, rng, segments, context_len)
    evidence = tuple(
        pos
        for j in range(n_distinct)
        for pos in range(starts[j], starts[j] + 3)
    )
    answer = pids[1:] + [tokenizer.sep_id]
    return _qa_example(
        "passage_count",
        tokenizer,
        ids,
        pids[0],
        answer,
        evidence,
        stop_ids=(tokenizer.sep_id,),
        max_new_tokens=n_distinct + 4,
        meta={"true_count": n_distinct},
    )


Generator = Callable[..., QAExample]

TASKS: dict[str, Generator] = {
    "trivia": make_trivia,
    "2wikimqa": make_2wikimqa,
    "hotpotqa": make_hotpotqa,
    "passage_count": make_passage_count,
}


def generate_examples(
    task: str,
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    n_examples: int,
    **kwargs,
) -> list[QAExample]:
    """Draw ``n_examples`` i.i.d. examples of one task."""
    if task not in TASKS:
        raise KeyError(f"unknown task {task!r}; available: {sorted(TASKS)}")
    return [TASKS[task](tokenizer, rng, **kwargs) for _ in range(n_examples)]
