"""Accuracy-evaluation harness: run selection policies on benchmark tasks.

Selection only affects the *decode* phase, so the harness prefills each
prompt once and decodes on cloned caches under every (policy, budget)
combination — a large saving when sweeping engines x budgets (Fig. 8/9).

The decode loop mirrors ``TransformerLM.generate(...,
sparse_from_first_token=True)``: the final prompt token is decoded as the
first policy-governed step, so selection affects every generated token —
SpeContext's dataflow, applied uniformly to all engines for fairness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
)
from repro.kvcache.cache import ModelKVCache
from repro.models.llm import SelectionPolicy, TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.retrieval.registry import make_policy
from repro.workloads.base import QAExample
from repro.workloads.metrics import count_score, token_f1


@dataclass
class PreparedPrompt:
    """A prompt with ``prompt[:-1]`` prefilled into a reusable cache."""

    prompt_ids: np.ndarray
    cache: ModelKVCache

    @property
    def pending_token(self) -> int:
        """The final prompt token, decoded as the first policy step."""
        return int(self.prompt_ids[-1])


@dataclass
class DecodeOutput:
    """Result of one policy-governed decode."""

    token_ids: list[int]
    stopped: bool
    selections: list[dict[int, np.ndarray]] = field(default_factory=list)
    attention_trace: list[list[np.ndarray]] = field(default_factory=list)


def prepare_prompt(model: TransformerLM, prompt_ids: np.ndarray) -> PreparedPrompt:
    """Prefill everything but the last prompt token."""
    prompt_ids = np.asarray(prompt_ids)
    if prompt_ids.ndim != 1 or prompt_ids.size < 2:
        raise ValueError("prompt must be 1-D with at least 2 tokens")
    cache = model.new_cache()
    model.prefill(prompt_ids[:-1], cache)
    return PreparedPrompt(prompt_ids=prompt_ids, cache=cache)


def decode_with_policy(
    model: TransformerLM,
    prepared: PreparedPrompt,
    policy: SelectionPolicy | None,
    max_new_tokens: int,
    stop_ids: tuple[int, ...] = (),
    capture_attention: bool = False,
) -> DecodeOutput:
    """Decode from a cloned cache under ``policy`` (None = full attention)."""
    cache = prepared.cache.clone()
    if policy is not None:
        policy.begin_generation(prepared.prompt_ids[:-1], cache)
    out = DecodeOutput(token_ids=[], stopped=False)
    pending = prepared.pending_token
    for step in range(max_new_tokens):
        if policy is not None:
            policy.pre_step(step, pending, cache)
        logits, selections, attn = model.decode_step(
            pending, cache, policy=policy, capture_attention=capture_attention
        )
        out.selections.append(selections)
        if capture_attention:
            out.attention_trace.append(attn)
        token = int(np.argmax(logits))
        out.token_ids.append(token)
        if token in stop_ids:
            out.stopped = True
            break
        pending = token
    return out


# ---- engine -> policy registry --------------------------------------------------


class PolicyBench:
    """Binds a model (and its retrieval head) to the policy registry.

    The names match the engines of the paper's accuracy figures; "Ours"
    uses the head-level retrieval head, "Ours(batch)" the coarse
    batch-level ablation of Sec. 4.2. Construction is delegated to
    :func:`repro.retrieval.registry.make_policy` — the bench only supplies
    the shared retrieval head (sequential decode runs can reuse it).
    """

    # figure-engine name -> (registry name, extra make_policy opts)
    _ENGINES: dict[str, tuple[str, dict]] = {
        "Full": ("full", {}),
        "Quest": ("quest", {}),
        "ClusterKV": ("clusterkv", {}),
        "ShadowKV": ("shadowkv", {}),
        "StreamingLLM": ("streaming", {}),
        "H2O": ("h2o", {}),
        "SlidingWindow": ("sliding", {}),
        "Ours": ("specontext", {"level": "head"}),
        "Ours(batch)": ("specontext", {"level": "batch"}),
    }

    def __init__(
        self,
        model: TransformerLM,
        tokenizer: SyntheticTokenizer,
        head_rng: np.random.Generator | None = None,
        head_config: RetrievalHeadConfig | None = None,
    ):
        self.model = model
        self.tokenizer = tokenizer
        rng = head_rng or np.random.default_rng(0)
        self.head = LightweightRetrievalHead.from_teacher(
            model.weights, tokenizer.bos_id, rng, config=head_config
        )

    def available(self) -> list[str]:
        return list(self._ENGINES)

    def policy(self, engine: str, budget: int) -> SelectionPolicy | None:
        """Fresh policy instance for one decode run (None = full attention)."""
        if engine == "Full":
            return None
        try:
            name, opts = self._ENGINES[engine]
        except KeyError:
            raise KeyError(
                f"unknown engine {engine!r}; available: {self.available()}"
            ) from None
        if name == "specontext":
            opts = {**opts, "head": self.head}
        return make_policy(name, self.model, budget, **opts)


# ---- QA scoring ------------------------------------------------------------------


def score_qa(example: QAExample, generated: list[int]) -> float:
    """Task-appropriate score in [0, 1] for one generation."""
    if example.task == "passage_count":
        true_count = example.meta["true_count"]
        stop = set(example.stop_ids)
        enumerated = []
        for token in generated:
            if token in stop:
                break
            enumerated.append(token)
        # Enumerated ids + the starting id named in the question.
        predicted = len(set(enumerated)) + 1
        return count_score(predicted, true_count)
    gold = [t for t in example.answer_ids if t not in example.stop_ids]
    pred = [t for t in generated if t not in example.stop_ids]
    return token_f1(pred, gold)


def evaluate_qa(
    model: TransformerLM,
    bench: PolicyBench,
    examples: list[QAExample],
    engine: str,
    budget: int,
) -> float:
    """Mean score of one engine at one budget over ``examples``."""
    scores = []
    for example in examples:
        prepared = prepare_prompt(model, example.prompt_ids)
        policy = bench.policy(engine, budget)
        out = decode_with_policy(
            model, prepared, policy, example.max_new_tokens, example.stop_ids
        )
        scores.append(score_qa(example, out.token_ids))
    return float(np.mean(scores))


def sweep_qa(
    model: TransformerLM,
    bench: PolicyBench,
    examples: list[QAExample],
    engines: list[str],
    budgets: list[int],
) -> dict[tuple[str, int], float]:
    """Engine x budget accuracy sweep with one shared prefill per example.

    Prefill dominates the functional models' cost and is identical for all
    policies, so each example is prefilled once and decoded per cell.
    """
    per_cell: dict[tuple[str, int], list[float]] = {
        (engine, budget): [] for engine in engines for budget in budgets
    }
    for example in examples:
        prepared = prepare_prompt(model, example.prompt_ids)
        for engine in engines:
            for budget in budgets:
                policy = bench.policy(engine, budget)
                out = decode_with_policy(
                    model, prepared, policy, example.max_new_tokens, example.stop_ids
                )
                per_cell[(engine, budget)].append(score_qa(example, out.token_ids))
    return {cell: float(np.mean(scores)) for cell, scores in per_cell.items()}
