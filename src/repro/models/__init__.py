"""Transformer LLM substrate (numpy).

Plays the role of PyTorch + HuggingFace models in the paper: a decoder-only
transformer with KV cache, prefill/decode phases, greedy/temperature
sampling, and all four attention families SpeContext supports (MHA, GQA,
MQA, MLA — Sec. 4.3).

Model weights come from :mod:`repro.models.builder`, which constructs
induction-head / associative-recall circuits analytically so the models
genuinely solve the synthetic long-context tasks — making accuracy-vs-budget
experiments causal rather than cosmetic (see DESIGN.md substitutions).
"""

from repro.models.builder import CircuitPlan, build_recall_model
from repro.models.config import (
    DEEPSEEK_MLA_LIKE_8B,
    EDGE_LIKE_1B,
    LLAMA_LIKE_8B,
    QWEN_LIKE_8B,
    AttentionKind,
    ModelConfig,
    tiny_test_config,
)
from repro.models.llm import DecodeResult, TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.models.weights import LayerWeights, ModelWeights

__all__ = [
    "AttentionKind",
    "ModelConfig",
    "LLAMA_LIKE_8B",
    "QWEN_LIKE_8B",
    "DEEPSEEK_MLA_LIKE_8B",
    "EDGE_LIKE_1B",
    "tiny_test_config",
    "SyntheticTokenizer",
    "ModelWeights",
    "LayerWeights",
    "TransformerLM",
    "DecodeResult",
    "build_recall_model",
    "CircuitPlan",
]
