"""Attention computation for MHA / GQA / MQA / MLA with KV cache and sparsity.

Single-sequence (batch=1) functional implementation. Prefill uses chunked
causal attention (flash-attention-style row blocks) so long contexts never
materialize a full seq x seq weight matrix. Decode supports three selection
modes, matching the paper's retrieval granularities:

- ``selection=None``: full attention over the cache,
- 1-D indices: one global set of tokens shared by all heads (batch-level),
- 2-D ``(n_kv_heads, k)`` indices: head-level selection (Figure 5's gather).

RoPE is applied per query head according to the layer's ``rope_mask``
(constructed content-matching heads run NoPE), and keys may be pre-rotated by
``rope_key_offset`` positions (how the builder realizes a previous-token
head). MLA caches the latent vector and up-projects only the gathered
entries, as in Figure 5(e).
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache
from repro.models.config import AttentionKind, ModelConfig
from repro.models.weights import LayerWeights
from repro.tensor.ops import linear, linear_rows, softmax
from repro.tensor.rope import RotaryEmbedding

PREFILL_CHUNK = 256


class AttentionModule:
    """One layer's attention, bound to its weights and the shared RoPE table."""

    def __init__(self, config: ModelConfig, layer: LayerWeights, rope: RotaryEmbedding):
        self.config = config
        self.layer = layer
        self.rope = rope
        self._scale = 1.0 / np.sqrt(config.head_dim)
        # Reused backing store for speculative-verify gather buffers: a
        # verify wave stacks (k+1) rows per session, and allocating those
        # multi-MB K/V temporaries fresh every layer-step pushes glibc
        # past its mmap threshold — every np.take then page-faults its
        # way through never-touched pages. One growing scratch keeps the
        # pages warm. (See _attend_rows_kv; values are fully overwritten
        # before every use, so reuse cannot leak state across steps.)
        self._spec_kv_scratch: np.ndarray | None = None
        # RoPE masks are pure functions of the layer weights; precompute
        # them once instead of rebuilding boolean arrays on every
        # projection of every decode step.
        if layer.rope_mask is not None:
            self._q_mask = np.asarray(layer.rope_mask, dtype=bool)
        else:
            self._q_mask = np.ones(config.n_q_heads, dtype=bool)
        self._q_mask.setflags(write=False)
        if config.attention is AttentionKind.MLA:
            self._kv_mask = self._q_mask
        else:
            self._kv_mask = self._q_mask.reshape(
                config.n_kv_heads, config.group_size
            ).any(axis=1)
            self._kv_mask.setflags(write=False)

    # ---- projections --------------------------------------------------------

    def _project_q(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Queries, shape (n_q_heads, seq, head_dim), RoPE applied per mask."""
        cfg = self.config
        q = linear(x, self.layer.wq, self.layer.bq)
        q = q.reshape(x.shape[0], cfg.n_q_heads, cfg.head_dim).transpose(1, 0, 2)
        return self._apply_rope_masked(q, positions, self._q_mask)

    def _q_rope_mask(self) -> np.ndarray:
        return self._q_mask

    def _kv_rope_mask(self) -> np.ndarray:
        """Per-KV-head RoPE mask: a KV head rotates iff its group's q heads do."""
        return self._kv_mask

    def _apply_rope_masked(
        self, heads: np.ndarray, positions: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Rotate only the heads where ``mask`` is True."""
        if not mask.any():
            return heads
        rotated = self.rope.apply(heads, positions)
        if mask.all():
            return rotated
        out = heads.copy()
        out[mask] = rotated[mask]
        return out

    def project_kv(
        self, x: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """New cache entries for non-MLA attention.

        Returns (k, v), each shaped (n_kv_heads, seq, head_dim); keys are
        rotated at ``positions + rope_key_offset`` for masked heads.
        """
        cfg = self.config
        if cfg.attention is AttentionKind.MLA:
            raise RuntimeError("MLA caches latents; use project_latent")
        k = linear(x, self.layer.wk, self.layer.bk)
        v = linear(x, self.layer.wv)
        k = k.reshape(x.shape[0], cfg.n_kv_heads, cfg.head_dim).transpose(1, 0, 2)
        v = v.reshape(x.shape[0], cfg.n_kv_heads, cfg.head_dim).transpose(1, 0, 2)
        key_positions = positions + self.layer.rope_key_offset
        k = self._apply_rope_masked(k, key_positions, self._kv_mask)
        return k, v

    def project_latent(self, x: np.ndarray) -> np.ndarray:
        """MLA latent cache entries, shape (1, seq, latent)."""
        # repro: allow(row-fused-matmul): MLA runs per-session in every
        # decode mode (batched falls back per session), so this GEMM's
        # shapes are mode-invariant and the reduction order never forks.
        c = x @ self.layer.w_dkv.T
        return c[None, :, :]

    def _mla_expand(
        self, latents: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Up-project latents (n, latent) to per-head K and V (heads, n, dim)."""
        cfg = self.config
        n = latents.shape[0]
        # repro: allow(row-fused-matmul): per-session MLA up-projection;
        # n is the selected-token count, identical across decode modes.
        k = (latents @ self.layer.w_uk.T).reshape(n, cfg.n_q_heads, cfg.head_dim)
        # repro: allow(row-fused-matmul): same up-projection, value side.
        v = (latents @ self.layer.w_uv.T).reshape(n, cfg.n_q_heads, cfg.head_dim)
        k = k.transpose(1, 0, 2)
        v = v.transpose(1, 0, 2)
        key_positions = positions + self.layer.rope_key_offset
        k = self._apply_rope_masked(k, key_positions, self._kv_mask)
        return k, v

    def selection_queries(self, x_token: np.ndarray, position: int) -> np.ndarray:
        """Per-selection-head queries for retrieval scoring.

        Returns (n_kv_heads, head_dim) — query heads group-averaged onto
        their KV head, which is how Quest-style methods score a GQA cache.
        For MLA (one latent cache, per-head selection) returns the raw
        (n_q_heads, head_dim) queries.
        """
        q = self._project_q(x_token[None, :], np.array([position]))[:, 0, :]
        cfg = self.config
        if cfg.attention is AttentionKind.MLA:
            return q
        return q.reshape(cfg.n_kv_heads, cfg.group_size, cfg.head_dim).mean(axis=1)

    # ---- prefill -------------------------------------------------------------

    def prefill(
        self, x: np.ndarray, positions: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        """Full causal attention over the prompt; appends to ``cache``.

        ``x`` is (seq, d_model); returns the attention output (seq, d_model).
        """
        cfg = self.config
        q = self._project_q(x, positions)
        if cfg.attention is AttentionKind.MLA:
            latents = self.project_latent(x)
            cache.append(latents[None, :, :, :], latents[None, :, :, :])
            all_latents = cache.keys[0, 0]  # (total, latent)
            k, v = self._mla_expand(all_latents, np.arange(all_latents.shape[0]))
        else:
            k, v = self.project_kv(x, positions)
            cache.append(k[None], v[None])
            k = cache.keys[0]
            v = cache.values[0]

        base = len(cache) - x.shape[0]  # cache offset of this prompt chunk
        return self._chunked_causal(q, k, v, base)

    def _chunked_causal(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, base: int
    ) -> np.ndarray:
        """Causal attention of q rows (at cache positions base..) over k/v."""
        cfg = self.config
        group = cfg.n_q_heads // k.shape[0]
        if group > 1:
            k = np.repeat(k, group, axis=0)
            v = np.repeat(v, group, axis=0)
        seq = q.shape[1]
        out = np.empty((cfg.n_q_heads, seq, cfg.head_dim), dtype=q.dtype)
        for start in range(0, seq, PREFILL_CHUNK):
            end = min(start + PREFILL_CHUNK, seq)
            limit = base + end  # keys visible to the last row of this chunk
            scores = (
                np.einsum("hqd,hkd->hqk", q[:, start:end], k[:, :limit])
                * self._scale
            )
            rows = np.arange(base + start, base + end)[:, None]
            cols = np.arange(limit)[None, :]
            scores = np.where(cols <= rows, scores, -np.inf)
            weights = softmax(scores, axis=-1)
            out[:, start:end] = np.einsum("hqk,hkd->hqd", weights, v[:, :limit])
        flat = out.transpose(1, 0, 2).reshape(seq, cfg.n_q_heads * cfg.head_dim)
        return linear(flat, self.layer.wo)

    # ---- decode ----------------------------------------------------------------

    def append_token(
        self, x_token: np.ndarray, position: int, cache: LayerKVCache
    ) -> None:
        """Project and append one new token's KV (or latent) to the cache."""
        cfg = self.config
        x = x_token[None, :]
        if cfg.attention is AttentionKind.MLA:
            latents = self.project_latent(x)
            cache.append(latents[None], latents[None])
        else:
            k, v = self.project_kv(x, np.array([position]))
            cache.append(k[None], v[None])

    def decode(
        self,
        x_token: np.ndarray,
        position: int,
        cache: LayerKVCache,
        selection: np.ndarray | None = None,
        capture_weights: bool = False,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One decode step. The current token must already be appended.

        Returns (attn_output (d_model,), weights or None). Captured weights
        are (n_q_heads, kv) over the attended set; with selection they are
        scattered back to full cache length so analyses can compare policies.
        """
        cfg = self.config
        # (Hq, dim)
        q = self._project_q(x_token[None, :], np.array([position]))[:, 0, :]

        if selection is None:
            token_indices = np.arange(len(cache))
            per_head = False
        else:
            selection = np.asarray(selection)
            per_head = selection.ndim == 2
            token_indices = selection

        if cfg.attention is AttentionKind.MLA:
            out_heads, weights = self._attend_mla(q, cache, token_indices, per_head)
        else:
            out_heads, weights = self._attend_kv(q, cache, token_indices, per_head)
        flat = out_heads.reshape(cfg.n_q_heads * cfg.head_dim)
        out = linear(flat, self.layer.wo)

        if not capture_weights:
            return out, None
        full = np.zeros((cfg.n_q_heads, len(cache)), dtype=q.dtype)
        if per_head:
            group = cfg.group_size
            for kv_head in range(token_indices.shape[0]):
                for g in range(group):
                    qh = kv_head * group + g
                    full[qh, token_indices[kv_head]] = weights[qh]
        else:
            full[:, token_indices] = weights
        return out, full

    def _attend_kv(
        self,
        q: np.ndarray,
        cache: LayerKVCache,
        token_indices: np.ndarray,
        per_head: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-head attention outputs (Hq, dim) before the output projection."""
        cfg = self.config
        group = cfg.group_size
        keys = cache.keys[0]  # (Hkv, len, dim)
        values = cache.values[0]
        out_heads = np.empty((cfg.n_q_heads, cfg.head_dim), dtype=q.dtype)
        weights_list = []
        for kv_head in range(cfg.n_kv_heads):
            idx = token_indices[kv_head] if per_head else token_indices
            k_sel = keys[kv_head, idx]  # (k, dim)
            v_sel = values[kv_head, idx]
            q_group = q[kv_head * group : (kv_head + 1) * group]  # (group, dim)
            # repro: allow(row-fused-matmul): per-kv-head score/output
            # GEMMs; (group, k) shapes depend only on config and the
            # policy's selection, both mode-invariant (PR 3 argument).
            scores = (q_group @ k_sel.T) * self._scale
            w = softmax(scores, axis=-1)
            # repro: allow(row-fused-matmul): same per-kv-head slice shape.
            out_heads[kv_head * group : (kv_head + 1) * group] = w @ v_sel
            weights_list.append(w)
        weights = np.concatenate(weights_list, axis=0)
        return out_heads, weights

    def _attend_mla(
        self,
        q: np.ndarray,
        cache: LayerKVCache,
        token_indices: np.ndarray,
        per_head: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-head attention outputs (Hq, dim) before the output projection."""
        cfg = self.config
        latents = cache.keys[0, 0]  # (len, latent)
        out_heads = np.empty((cfg.n_q_heads, cfg.head_dim), dtype=q.dtype)
        weights_rows = []
        for head in range(cfg.n_q_heads):
            idx = token_indices[head] if per_head else token_indices
            c_sel = latents[idx]
            k_all, v_all = self._mla_expand(c_sel, np.asarray(idx))
            k_sel = k_all[head]
            v_sel = v_all[head]
            # repro: allow(row-fused-matmul): per-head MLA scores; 1-D q
            # row against (k, dim) keys, shapes mode-invariant.
            scores = (q[head] @ k_sel.T) * self._scale
            w = softmax(scores, axis=-1)
            out_heads[head] = w @ v_sel  # repro: allow(row-fused-matmul)
            weights_rows.append(w)
        weights = np.stack(weights_rows, axis=0)
        return out_heads, weights

    # ---- batched decode (one fused pass over many sessions) --------------------

    def project_q_rows(self, x_rows: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Queries for ``n`` single-token sessions, shape (n, n_q_heads, dim).

        Row ``j`` is bit-identical to ``_project_q(x_rows[j:j+1],
        positions[j:j+1])[:, 0, :]``: the projection goes through
        :func:`linear_rows` (per-row GEMM semantics) and RoPE is a pure
        elementwise rotation with each row's own cos/sin table entries.
        """
        cfg = self.config
        q = linear_rows(x_rows, self.layer.wq, self.layer.bq)
        q = q.reshape(x_rows.shape[0], cfg.n_q_heads, cfg.head_dim).transpose(1, 0, 2)
        q = self._apply_rope_masked(q, np.asarray(positions), self._q_mask)
        return q.transpose(1, 0, 2)

    def project_kv_rows(
        self, x_rows: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """New cache entries for ``n`` single-token rows, fused.

        Non-MLA: returns (k, v) shaped (Hkv, n, dim), keys RoPE-rotated at
        each row's own position. MLA: returns (latents, latents) with
        latents shaped (n, latent) — the latent is both key and value.
        Row ``j`` is bit-identical to :meth:`project_kv` /
        :meth:`project_latent` on that row alone (per-row GEMM slices).
        """
        cfg = self.config
        n = x_rows.shape[0]
        if cfg.attention is AttentionKind.MLA:
            latents = linear_rows(x_rows, self.layer.w_dkv)  # (n, latent)
            return latents, latents
        k = linear_rows(x_rows, self.layer.wk, self.layer.bk)
        v = linear_rows(x_rows, self.layer.wv)
        k = k.reshape(n, cfg.n_kv_heads, cfg.head_dim).transpose(1, 0, 2)
        v = v.reshape(n, cfg.n_kv_heads, cfg.head_dim).transpose(1, 0, 2)
        key_positions = np.asarray(positions) + self.layer.rope_key_offset
        k = self._apply_rope_masked(k, key_positions, self._kv_mask)
        return k, v

    def append_projected_row(
        self, cache: LayerKVCache, k: np.ndarray, v: np.ndarray, row: int
    ) -> None:
        """Append row ``row`` of a :meth:`project_kv_rows` result."""
        if self.config.attention is AttentionKind.MLA:
            entry = k[row][None, None, None, :]
            cache.append(entry, entry)
        else:
            cache.append(k[None, :, row : row + 1, :], v[None, :, row : row + 1, :])

    def append_token_rows(
        self,
        x_rows: np.ndarray,
        positions: np.ndarray,
        caches: list[LayerKVCache],
    ) -> None:
        """Project and append one new token per session, K/V fused into
        single row-batched GEMMs over the shared weights."""
        k, v = self.project_kv_rows(x_rows, positions)
        for j in range(x_rows.shape[0]):
            self.append_projected_row(caches[j], k, v, j)

    def decode_rows(
        self,
        x_rows: np.ndarray,
        positions: np.ndarray,
        caches: list[LayerKVCache],
        selections: list[np.ndarray | None],
        limits: np.ndarray | None = None,
    ) -> np.ndarray:
        """One decode step for ``n`` sessions at once; returns (n, d_model).

        Sessions are grouped by selection shape; each group's gathered KV
        is scored in one batched matmul (a stack of per-slice GEMMs whose
        2-D shapes match the sequential path exactly, keeping every row
        bit-identical to :meth:`decode` on that session alone). The output
        projection runs as a single row-batched GEMM over all sessions.
        MLA sessions fall back to the per-session expansion loop — the
        projections around them still batch.

        ``limits`` (speculative verify) caps each row's full-attention
        view at ``limits[j]`` cache entries: rows of one session verify
        several consecutive positions after all their KV was appended, so
        row ``j`` must attend exactly the prefix a sequential decode at
        its position would have seen. Rows with an explicit selection are
        unaffected — their indices were chosen at select time, when only
        the visible prefix existed.
        """
        cfg = self.config
        n = x_rows.shape[0]
        q = self.project_q_rows(x_rows, positions)  # (n, Hq, dim)
        if cfg.attention is AttentionKind.MLA:
            out_heads = np.empty((n, cfg.n_q_heads, cfg.head_dim), dtype=q.dtype)
            for j in range(n):
                limit = None if limits is None else int(limits[j])
                idx, per_head = self._selection_indices(
                    selections[j], caches[j], limit
                )
                out_heads[j], _ = self._attend_mla(q[j], caches[j], idx, per_head)
        else:
            out_heads = self._attend_rows_kv(q, caches, selections, limits)
        flat = out_heads.reshape(n, cfg.n_q_heads * cfg.head_dim)
        return linear_rows(flat, self.layer.wo)

    @staticmethod
    def _selection_indices(
        selection: np.ndarray | None,
        cache: LayerKVCache,
        limit: int | None = None,
    ) -> tuple[np.ndarray, bool]:
        if selection is None:
            return np.arange(len(cache) if limit is None else limit), False
        selection = np.asarray(selection)
        return selection, selection.ndim == 2

    def _attend_rows_kv(
        self,
        q: np.ndarray,
        caches: list[LayerKVCache],
        selections: list[np.ndarray | None],
        limits: np.ndarray | None = None,
    ) -> np.ndarray:
        """Grouped-by-selection-shape attention; returns (n, Hq, dim)."""
        cfg = self.config
        group = cfg.group_size
        n = q.shape[0]
        q_g = q.reshape(n, cfg.n_kv_heads, group, cfg.head_dim)
        out = np.empty((n, cfg.n_kv_heads, group, cfg.head_dim), dtype=q.dtype)
        if limits is not None and all(s is None for s in selections):
            # Speculative verify over dense rows: every row attends a
            # causal prefix of its own cache, so instead of copying each
            # prefix into a stacked buffer we matmul straight against a
            # view of the cache storage. The per-kv-head 2-D GEMM slices
            # have exactly the (group, width) shapes of the sequential
            # decode at that position, over identical values — the copy
            # was pure memory traffic.
            for j in range(n):
                width = int(limits[j])
                k = caches[j].keys[0, :, :width]
                v = caches[j].values[0, :, :width]
                # repro: allow(row-fused-matmul): 3-D matmul = one GEMM
                # per kv-head slice; per-slice reduction shapes match
                # the sequential path exactly (dense verify rows).
                scores = np.matmul(q_g[j], k.transpose(0, 2, 1)) * self._scale
                w = softmax(scores, axis=-1)
                out[j] = np.matmul(w, v)  # repro: allow(row-fused-matmul)
            return out.reshape(n, cfg.n_q_heads, cfg.head_dim)
        buckets: dict[tuple, list[int]] = {}
        for j, selection in enumerate(selections):
            if selection is None:
                width = len(caches[j]) if limits is None else int(limits[j])
                key = ("full", width)
            else:
                selection = np.asarray(selection)
                if selection.ndim == 2:
                    key = ("head", selection.shape[1])
                else:
                    key = ("flat", selection.shape[0])
            buckets.setdefault(key, []).append(j)
        kv_dtype = caches[0].keys.dtype
        for (kind, width), members in buckets.items():
            g = len(members)
            if kind == "head":
                ks, vs = [], []
                for j in members:
                    k_sel, v_sel = caches[j].gather(np.asarray(selections[j]))
                    ks.append(k_sel[0])
                    vs.append(v_sel[0])
                k = np.stack(ks)  # (g, Hkv, s, dim)
                v = np.stack(vs)
            else:
                # Gather straight into the stacked buffers — one copy, not
                # a per-session temporary plus a stack copy. Verify waves
                # carve the buffers out of the persistent scratch (see
                # __init__) so their (k+1)-fold size never churns the
                # allocator; ordinary decode keeps plain allocations.
                shape = (g, cfg.n_kv_heads, width, cfg.head_dim)
                if limits is not None:
                    count = int(np.prod(shape))
                    scratch = self._spec_kv_scratch
                    if (
                        scratch is None
                        or scratch.size < 2 * count
                        or scratch.dtype != kv_dtype
                    ):
                        scratch = np.empty(2 * count, dtype=kv_dtype)
                        self._spec_kv_scratch = scratch
                    k = scratch[:count].reshape(shape)
                    v = scratch[count : 2 * count].reshape(shape)
                else:
                    k = np.empty(shape, dtype=kv_dtype)
                    v = np.empty_like(k)
                for gi, j in enumerate(members):
                    if kind == "full":
                        caches[j].copy_kv_into(k[gi], v[gi], limit=width)
                    else:
                        caches[j].gather_into(selections[j], k[gi], v[gi])
            whole_batch = g == n  # skip fancy-index copies for one bucket
            qg = q_g if whole_batch else q_g[members]  # (g, Hkv, group, dim)
            # repro: allow(row-fused-matmul): 4-D matmul dispatches one
            # GEMM per (session, kv-head) slice — the per-slice shapes
            # equal the sequential per-session scores, so reduction
            # order (and therefore every bit) matches (PR 3 argument).
            scores = np.matmul(qg, k.transpose(0, 1, 3, 2)) * self._scale
            w = softmax(scores, axis=-1)
            if whole_batch:
                out[:] = np.matmul(w, v)  # repro: allow(row-fused-matmul)
            else:
                out[members] = np.matmul(w, v)  # repro: allow(row-fused-matmul)
        return out.reshape(n, cfg.n_q_heads, cfg.head_dim)
