"""Model configuration and architecture presets.

Two kinds of configs coexist:

- *Functional* configs describe the small numpy models we actually run for
  accuracy experiments (a few layers, d_model in the hundreds).
- *Paper-scale* configs describe the 8B/1B architectures the paper times
  (Llama3.1-8B, Qwen3-8B, DeepSeek-R1-Distill-Llama-8B, Reasoning-Llama-3.2-1B).
  These are consumed only by the analytic timing/memory models, never
  materialized as arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.utils.units import GB


class AttentionKind(enum.Enum):
    """The four attention families the retrieval head supports (Sec. 4.3)."""

    MHA = "mha"
    GQA = "gqa"
    MQA = "mqa"
    MLA = "mla"


@dataclass(frozen=True)
class ModelConfig:
    """Decoder-only transformer architecture description.

    Attributes:
        name: preset identifier.
        vocab_size: tokenizer vocabulary size.
        d_model: residual stream width.
        n_layers: number of decoder layers.
        n_q_heads: query heads per layer.
        n_kv_heads: key/value heads per layer (== n_q_heads for MHA,
            1 for MQA, n_q_heads/groups for GQA; for MLA it equals
            n_q_heads but the cache holds the latent instead).
        head_dim: per-head dimension.
        d_ff: FFN inner width (SwiGLU).
        attention: attention family.
        mla_latent_dim: latent cache width for MLA (ignored otherwise).
        max_position: RoPE table size / maximum context.
        rope_base: RoPE theta.
        use_norm: apply RMSNorm (constructed circuit models disable it so
            the analytic circuits stay exact; trained models enable it).
        tie_lm_head: reuse the embedding matrix as the output head.
        param_bytes: explicit parameter-memory override for paper-scale
            presets (bytes); 0 means "derive from dimensions".
    """

    name: str
    vocab_size: int
    d_model: int
    n_layers: int
    n_q_heads: int
    n_kv_heads: int
    head_dim: int
    d_ff: int
    attention: AttentionKind = AttentionKind.GQA
    mla_latent_dim: int = 0
    max_position: int = 131072
    rope_base: float = 10000.0
    use_norm: bool = True
    tie_lm_head: bool = True
    param_bytes: int = 0

    def __post_init__(self):
        if self.n_q_heads % max(self.n_kv_heads, 1) != 0:
            raise ValueError(
                f"n_q_heads={self.n_q_heads} not divisible by "
                f"n_kv_heads={self.n_kv_heads}"
            )
        if self.attention is AttentionKind.MQA and self.n_kv_heads != 1:
            raise ValueError("MQA requires n_kv_heads == 1")
        if self.attention is AttentionKind.MHA and self.n_kv_heads != self.n_q_heads:
            raise ValueError("MHA requires n_kv_heads == n_q_heads")
        if self.attention is AttentionKind.MLA and self.mla_latent_dim < 1:
            raise ValueError("MLA requires mla_latent_dim >= 1")

    @property
    def group_size(self) -> int:
        """Query heads per KV head (the paper's alpha groups)."""
        return self.n_q_heads // self.n_kv_heads

    @property
    def kv_cache_width(self) -> int:
        """Per-token, per-layer cached values (K+V or MLA latent)."""
        if self.attention is AttentionKind.MLA:
            return self.mla_latent_dim
        return 2 * self.n_kv_heads * self.head_dim

    def kv_bytes_per_token_layer(self, bytes_per_value: int = 2) -> int:
        """KV footprint of one token in one layer."""
        return self.kv_cache_width * bytes_per_value

    def kv_bytes(self, seq_len: int, batch: int = 1, bytes_per_value: int = 2) -> int:
        """Full-model KV footprint at ``seq_len`` (paper's Sec. 6 M_KV)."""
        return (
            self.n_layers * batch * seq_len
            * self.kv_bytes_per_token_layer(bytes_per_value)
        )

    def parameter_count(self) -> int:
        """Approximate parameter count derived from dimensions."""
        embed = self.vocab_size * self.d_model
        q = self.d_model * self.n_q_heads * self.head_dim
        if self.attention is AttentionKind.MLA:
            kv = (
                self.d_model * self.mla_latent_dim
                + 2 * self.mla_latent_dim * self.n_q_heads * self.head_dim
            )
        else:
            kv = 2 * self.d_model * self.n_kv_heads * self.head_dim
        o = self.n_q_heads * self.head_dim * self.d_model
        ffn = 3 * self.d_model * self.d_ff
        per_layer = q + kv + o + ffn
        head = 0 if self.tie_lm_head else self.vocab_size * self.d_model
        return embed + self.n_layers * per_layer + head

    def parameter_bytes(self, bytes_per_value: int = 2) -> int:
        """Weight memory (paper's M_O / M_D), honoring explicit overrides."""
        if self.param_bytes:
            return self.param_bytes
        return self.parameter_count() * bytes_per_value

    def with_(self, **changes) -> "ModelConfig":
        """Return a modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)


# ---- Paper-scale presets (timing/memory only) ------------------------------

# Llama3.1-8B: 32 layers, 32 q heads, 8 kv heads, head_dim 128, d_ff 14336.
LLAMA_LIKE_8B = ModelConfig(
    name="llama3.1-8b-like",
    vocab_size=128256,
    d_model=4096,
    n_layers=32,
    n_q_heads=32,
    n_kv_heads=8,
    head_dim=128,
    d_ff=14336,
    attention=AttentionKind.GQA,
    max_position=131072,
    rope_base=500000.0,
    param_bytes=16 * GB,
)

# DeepSeek-R1-Distill-Llama-8B shares the Llama3.1-8B architecture (the paper
# notes this is why only one of the two is timed).
DEEPSEEK_DISTILL_LIKE_8B = LLAMA_LIKE_8B.with_(name="deepseek-distill-llama-8b-like")

# Qwen3-8B: 36 layers, 32 q heads, 8 kv heads, head_dim 128.
QWEN_LIKE_8B = ModelConfig(
    name="qwen3-8b-like",
    vocab_size=151936,
    d_model=4096,
    n_layers=36,
    n_q_heads=32,
    n_kv_heads=8,
    head_dim=128,
    d_ff=12288,
    attention=AttentionKind.GQA,
    max_position=131072,
    rope_base=1000000.0,
    param_bytes=16 * GB,
)

# A DeepSeek-style MLA variant at 8B scale, to exercise the MLA path.
DEEPSEEK_MLA_LIKE_8B = ModelConfig(
    name="deepseek-mla-8b-like",
    vocab_size=129280,
    d_model=4096,
    n_layers=32,
    n_q_heads=32,
    n_kv_heads=32,
    head_dim=128,
    d_ff=12288,
    attention=AttentionKind.MLA,
    mla_latent_dim=512,
    param_bytes=16 * GB,
)

# Reasoning-Llama-3.2-1B (edge model): 16 layers, 32 q heads, 8 kv heads.
EDGE_LIKE_1B = ModelConfig(
    name="reasoning-llama3.2-1b-like",
    vocab_size=128256,
    d_model=2048,
    n_layers=16,
    n_q_heads=32,
    n_kv_heads=8,
    head_dim=64,
    d_ff=8192,
    attention=AttentionKind.GQA,
    param_bytes=int(2.5 * GB),
)


def tiny_test_config(
    attention: AttentionKind = AttentionKind.GQA,
    n_layers: int = 4,
    vocab_size: int = 512,
) -> ModelConfig:
    """A small functional config for unit tests and quick examples."""
    n_q_heads = 8
    if attention is AttentionKind.MHA:
        n_kv_heads = n_q_heads
    elif attention is AttentionKind.MQA:
        n_kv_heads = 1
    elif attention is AttentionKind.MLA:
        n_kv_heads = n_q_heads
    else:
        n_kv_heads = 4
    # d_model = 3*head_dim + 1: the circuit builder's residual layout
    # (content / previous-token / answer subspaces plus a constant dim).
    head_dim = 64
    d_model = 3 * head_dim + 1
    return ModelConfig(
        name=f"tiny-{attention.value}",
        vocab_size=vocab_size,
        d_model=d_model,
        n_layers=n_layers,
        n_q_heads=n_q_heads,
        n_kv_heads=n_kv_heads,
        head_dim=head_dim,
        d_ff=256,
        attention=attention,
        mla_latent_dim=d_model if attention is AttentionKind.MLA else 0,
        max_position=16384,
        use_norm=False,
    )
