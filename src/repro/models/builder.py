"""Analytic construction of associative-recall transformers.

Why constructed weights: the paper's accuracy experiments (Fig. 8/9) measure
how KV selection degrades a model that *genuinely uses* its long context. We
cannot train an 8B model here, so we construct small transformers that
implement the classic two-layer induction-head circuit exactly — they solve
"A B ... A -> B" associative recall, multi-hop chains, and enumeration, and
they fail in the correct causal way when selection drops the evidence tokens.

Residual stream layout (d_model = 3 * head_dim + 1):

    S0 = dims [0, dc)        current token's content vector
    S1 = dims [dc, 2*dc)     previous token's content vector (written by L0)
    S2 = dims [2*dc, 3*dc)   answer accumulation (written by induction heads)
    CONST = dim 3*dc         constant 1.0 (lets projections synthesize biases)

Head roles (assigned per KV-head group):

- ``prev``      RoPE positional head with keys pre-rotated by +1 position;
                attends to j = i-1 and copies S0(j) into S1(i).
- ``induction`` NoPE content head: q reads S0, k reads S1; attends where
                t_{j-1} == t_i and copies S0(j) into S2(i).
- ``sink``      content head keyed on the <bos> content vector (an attention
                sink, as in StreamingLLM); V = 0.
- ``local``     RoPE head peaking at j = i (recency); V = 0.
- ``noise``     small random projections; diffuse attention; V = 0.

The sink/local/noise heads shape realistic attention statistics without
perturbing the circuit (their value projections are zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import AttentionKind, ModelConfig
from repro.models.tokenizer import SyntheticTokenizer
from repro.models.weights import DTYPE, LayerWeights, ModelWeights


@dataclass(frozen=True)
class CircuitPlan:
    """Tunable gains of the constructed circuit.

    ``content_correlation`` draws content vectors around shared cluster
    centers, giving distractors partial key-match — the knob that makes
    retrieval hard and accuracy-vs-budget curves graded instead of step
    functions.
    """

    prev_sharpness: float = 200.0
    induction_sharpness: float = 14.0
    sink_sharpness: float = 10.0
    local_sharpness: float = 30.0
    noise_gain: float = 0.3
    value_gain: float = 1.0
    lm_head_gain: float = 8.0
    filler_logit_damping: float = 0.35
    content_correlation: float = 0.3
    n_content_clusters: int = 16
    ffn_gain: float = 0.0  # constructed models keep the FFN silent


def content_dim(config: ModelConfig) -> int:
    """The content-vector width implied by the residual layout."""
    if config.d_model != 3 * config.head_dim + 1:
        raise ValueError(
            f"circuit construction requires d_model == 3*head_dim + 1; "
            f"got d_model={config.d_model}, head_dim={config.head_dim}"
        )
    return config.head_dim


def make_content_vectors(
    vocab_size: int,
    dim: int,
    rng: np.random.Generator,
    correlation: float = 0.3,
    n_clusters: int = 16,
) -> np.ndarray:
    """Unit content vectors with cluster structure.

    Each token's vector is ``normalize(sqrt(1-rho^2) * g + rho * center)``
    where ``center`` is its cluster's direction — tokens in the same cluster
    have expected cosine ~ rho^2, which is what makes distractor keys leak
    attention mass.
    """
    centers = rng.standard_normal((n_clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignment = rng.integers(0, n_clusters, size=vocab_size)
    g = rng.standard_normal((vocab_size, dim))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    vectors = (
        np.sqrt(max(1.0 - correlation**2, 0.0)) * g
        + correlation * centers[assignment]
    )
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors.astype(DTYPE)


def head_roles(config: ModelConfig, layer: int) -> list[str]:
    """Role of each KV-head group in ``layer``.

    Layer 0 carries the previous-token head; every later layer carries an
    induction head; remaining groups cycle through sink/local/noise.
    """
    n_groups = (
        config.n_kv_heads
        if config.attention is not AttentionKind.MLA
        else config.n_q_heads
    )
    primary = "prev" if layer == 0 else "induction"
    filler_cycle = ["sink", "local", "noise"]
    roles = [primary]
    for g in range(1, n_groups):
        roles.append(filler_cycle[(g - 1) % len(filler_cycle)])
    return roles


class _SubspaceMaps:
    """Selector/injector matrices for the residual layout."""

    def __init__(self, dc: int, d_model: int):
        self.dc = dc
        self.d_model = d_model
        self.read_s0 = np.zeros((dc, d_model), dtype=DTYPE)
        self.read_s0[:, 0:dc] = np.eye(dc, dtype=DTYPE)
        self.read_s1 = np.zeros((dc, d_model), dtype=DTYPE)
        self.read_s1[:, dc : 2 * dc] = np.eye(dc, dtype=DTYPE)
        self.const_row = np.zeros((1, d_model), dtype=DTYPE)
        self.const_row[0, 3 * dc] = 1.0

    def const_key(self, vector: np.ndarray) -> np.ndarray:
        """Projection emitting a constant ``vector`` (reads the CONST dim)."""
        return np.outer(vector.astype(DTYPE), self.const_row[0])

    def write_s1(self, dc: int) -> np.ndarray:
        """(d_model, dc) injector into S1."""
        w = np.zeros((self.d_model, dc), dtype=DTYPE)
        w[dc : 2 * dc, :] = np.eye(dc, dtype=DTYPE)
        return w

    def write_s2(self, dc: int) -> np.ndarray:
        """(d_model, dc) injector into S2."""
        w = np.zeros((self.d_model, dc), dtype=DTYPE)
        w[2 * dc : 3 * dc, :] = np.eye(dc, dtype=DTYPE)
        return w


def _role_projections(
    role: str,
    maps: _SubspaceMaps,
    plan: CircuitPlan,
    bos_content: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool, int]:
    """Build (wq, wk, wv, wo_block, uses_rope, key_offset) for one head role.

    All matrices are (dc, d_model) except ``wo_block`` which is
    (d_model, dc). Attention logits are q.k / sqrt(dc), so gains are split
    so that the matched logit equals the role's sharpness.
    """
    dc = maps.dc
    sqrt_dc = np.sqrt(dc)
    unit = np.ones(dc, dtype=DTYPE) / np.sqrt(dc)
    zero_v = np.zeros((dc, maps.d_model), dtype=DTYPE)
    zero_o = np.zeros((maps.d_model, dc), dtype=DTYPE)

    if role == "prev":
        gain = np.sqrt(plan.prev_sharpness * sqrt_dc)
        wq = maps.const_key(gain * unit)
        wk = maps.const_key(gain * unit)
        wv = maps.read_s0.copy()
        wo = maps.write_s1(dc)
        return wq, wk, wv, wo, True, 1

    if role == "induction":
        gain = np.sqrt(plan.induction_sharpness * sqrt_dc)
        wq = gain * maps.read_s0
        wk = gain * maps.read_s1
        wv = maps.read_s0.copy()
        wo = plan.value_gain * maps.write_s2(dc)
        return wq, wk, wv, wo, False, 0

    if role == "sink":
        gain = np.sqrt(plan.sink_sharpness * sqrt_dc)
        wq = maps.const_key(gain * bos_content)
        wk = gain * maps.read_s0
        return wq, wk, zero_v, zero_o, False, 0

    if role == "local":
        gain = np.sqrt(plan.local_sharpness * sqrt_dc)
        wq = maps.const_key(gain * unit)
        wk = maps.const_key(gain * unit)
        return wq, wk, zero_v, zero_o, True, 0

    if role == "noise":
        wq = (plan.noise_gain * rng.standard_normal((dc, maps.d_model))).astype(DTYPE)
        wk = (plan.noise_gain * rng.standard_normal((dc, maps.d_model))).astype(DTYPE)
        return wq, wk, zero_v, zero_o, False, 0

    raise ValueError(f"unknown head role {role!r}")


def build_recall_model(
    config: ModelConfig,
    tokenizer: SyntheticTokenizer,
    rng: np.random.Generator,
    plan: CircuitPlan | None = None,
) -> ModelWeights:
    """Construct a functional recall transformer for ``config``.

    The returned weights solve chained associative recall over the synthetic
    tokenizer's vocabulary: after "key value" pairs appear in the context,
    prompting with the key makes the model emit the value (and follow chains
    across decode steps).
    """
    plan = plan or CircuitPlan()
    if tokenizer.vocab_size != config.vocab_size:
        raise ValueError(
            f"tokenizer vocab {tokenizer.vocab_size} != config vocab "
            f"{config.vocab_size}"
        )
    dc = content_dim(config)
    maps = _SubspaceMaps(dc, config.d_model)
    content = make_content_vectors(
        config.vocab_size, dc, rng,
        correlation=plan.content_correlation,
        n_clusters=plan.n_content_clusters,
    )
    bos_content = content[tokenizer.bos_id]

    embedding = np.zeros((config.vocab_size, config.d_model), dtype=DTYPE)
    embedding[:, 0:dc] = content
    embedding[:, 3 * dc] = 1.0

    lm_head = np.zeros((config.vocab_size, config.d_model), dtype=DTYPE)
    lm_head[:, 2 * dc : 3 * dc] = plan.lm_head_gain * content
    # Answer prior: filler (prose) tokens are damped relative to content and
    # special tokens, the way a QA-tuned model prefers entities as answers.
    # This disambiguates bridge entities in multi-hop chains, where the first
    # occurrence of the bridge is followed by prose and the second by the
    # next hop's value.
    filler_ids = [tokenizer.filler_id(i) for i in range(tokenizer.n_filler)]
    lm_head[filler_ids] *= plan.filler_logit_damping

    layers: list[LayerWeights] = []
    for layer_idx in range(config.n_layers):
        roles = head_roles(config, layer_idx)
        layers.append(
            _build_layer(config, roles, maps, plan, bos_content, rng)
        )

    return ModelWeights(
        config=config,
        embedding=embedding,
        layers=layers,
        norm_final=np.ones(config.d_model, dtype=DTYPE),
        lm_head=lm_head,
    )


def _build_layer(
    config: ModelConfig,
    roles: list[str],
    maps: _SubspaceMaps,
    plan: CircuitPlan,
    bos_content: np.ndarray,
    rng: np.random.Generator,
) -> LayerWeights:
    dc = maps.dc
    d_model = config.d_model
    group = config.group_size if config.attention is not AttentionKind.MLA else 1
    n_q = config.n_q_heads
    n_kv = len(roles)

    wq = np.zeros((n_q * dc, d_model), dtype=DTYPE)
    wo = np.zeros((d_model, n_q * dc), dtype=DTYPE)
    rope_mask = np.zeros(n_q, dtype=bool)

    kv_wk = np.zeros((n_kv * dc, d_model), dtype=DTYPE)
    kv_wv = np.zeros((n_kv * dc, d_model), dtype=DTYPE)

    key_offset = 0
    for kv_head, role in enumerate(roles):
        hq, hk, hv, ho, uses_rope, offset = _role_projections(
            role, maps, plan, bos_content, rng
        )
        if offset:
            key_offset = offset  # at most one offset role per layer (prev, L0)
        kv_wk[kv_head * dc : (kv_head + 1) * dc] = hk
        kv_wv[kv_head * dc : (kv_head + 1) * dc] = hv
        for g in range(group):
            q_head = kv_head * group + g
            wq[q_head * dc : (q_head + 1) * dc] = hq
            # Split the write across the group so GQA repetition is neutral.
            wo[:, q_head * dc : (q_head + 1) * dc] = ho / group
            rope_mask[q_head] = uses_rope

    ffn_scale = plan.ffn_gain
    w_gate = (
        ffn_scale * rng.standard_normal((config.d_ff, d_model)) / np.sqrt(d_model)
    ).astype(DTYPE)
    w_up = (
        ffn_scale * rng.standard_normal((config.d_ff, d_model)) / np.sqrt(d_model)
    ).astype(DTYPE)
    w_down = np.zeros((d_model, config.d_ff), dtype=DTYPE)

    common = dict(
        wq=wq,
        wo=wo,
        w_gate=w_gate,
        w_up=w_up,
        w_down=w_down,
        norm_attn=np.ones(d_model, dtype=DTYPE),
        norm_ffn=np.ones(d_model, dtype=DTYPE),
        rope_mask=rope_mask,
        rope_key_offset=key_offset,
    )
    if config.attention is AttentionKind.MLA:
        # Identity down-projection: the latent is the residual stream itself;
        # per-head up-projections carry the role circuits.
        if config.mla_latent_dim != d_model:
            raise ValueError(
                "constructed MLA models require mla_latent_dim == d_model "
                f"(got {config.mla_latent_dim} != {d_model})"
            )
        return LayerWeights(
            wk=None,
            wv=None,
            w_dkv=np.eye(d_model, dtype=DTYPE),
            w_uk=kv_wk,
            w_uv=kv_wv,
            **common,
        )
    return LayerWeights(wk=kv_wk, wv=kv_wv, **common)
