"""The decoder-only LM engine: prefill, decode, generation, selection hooks.

``TransformerLM.generate`` accepts an optional *selection policy* — the
object that decides which KV entries each decode step attends to. Policies
come from :mod:`repro.retrieval` (layer-wise baselines: Quest, ClusterKV,
ShadowKV, StreamingLLM, H2O) or :mod:`repro.core` (SpeContext's retrieval
head, which selects once per step *before* the forward pass). A ``None``
policy is full attention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.models.config import AttentionKind
from repro.models.layers import DecoderLayer
from repro.models.weights import ModelWeights
from repro.tensor.ops import linear, linear_rows, rms_norm, softmax
from repro.tensor.rope import RotaryEmbedding, YarnConfig


class SelectionPolicy(Protocol):
    """Decides the attended KV subset at each decode step.

    ``begin_generation`` is called once after prefill. ``pre_step`` runs
    before the forward pass of each decode step (SpeContext does its global
    retrieval here). ``select`` runs per layer and returns token indices
    (1-D shared, or 2-D per-KV-head) or None for full attention.
    """

    def begin_generation(self, prompt_ids: np.ndarray, cache: ModelKVCache) -> None: ...

    def pre_step(self, step: int, token_id: int, cache: ModelKVCache) -> None: ...

    def select(
        self, layer: int, hidden: np.ndarray, position: int, cache: LayerKVCache
    ) -> np.ndarray | None: ...


@dataclass
class DecodeResult:
    """Output of one generation run."""

    prompt_len: int
    token_ids: list[int]
    stopped_by_eos: bool
    selections: list[dict[int, np.ndarray]] = field(default_factory=list)
    attention_trace: list[list[np.ndarray]] = field(default_factory=list)

    @property
    def n_generated(self) -> int:
        return len(self.token_ids)


class TransformerLM:
    """Functional numpy transformer with KV cache and sparse-decode hooks."""

    def __init__(self, weights: ModelWeights, yarn: YarnConfig | None = None):
        self.weights = weights
        self.config = weights.config
        rope_dim = self.config.head_dim
        self.rope = RotaryEmbedding(
            dim=rope_dim,
            max_position=self.config.max_position,
            base=self.config.rope_base,
            yarn=yarn,
        )
        self.layers = [
            DecoderLayer(self.config, lw, self.rope) for lw in weights.layers
        ]

    # ---- cache management ----------------------------------------------------

    def new_cache(self, dtype: np.dtype = np.float64) -> ModelKVCache:
        """Empty KV cache matching this model's geometry.

        ``dtype`` sets the KV storage precision: projections are float32,
        so float32 storage is value-preserving at half the memory traffic
        (what production engines do with FP16 KV), while the float64
        default keeps attention accumulation in double precision.
        """
        cfg = self.config
        if cfg.attention is AttentionKind.MLA:
            return ModelKVCache(cfg.n_layers, 1, 1, cfg.mla_latent_dim, dtype=dtype)
        return ModelKVCache(
            cfg.n_layers, 1, cfg.n_kv_heads, cfg.head_dim, dtype=dtype
        )

    # ---- forward passes --------------------------------------------------------

    def embed(self, token_ids: np.ndarray) -> np.ndarray:
        """Token embeddings, shape (seq, d_model)."""
        return self.weights.embedding[np.asarray(token_ids)]

    def logits_from_hidden(self, hidden: np.ndarray) -> np.ndarray:
        """Final norm + LM head."""
        if self.config.use_norm:
            hidden = rms_norm(hidden, self.weights.norm_final)
        return linear(hidden, self.weights.head_matrix())

    def logits_from_hidden_rows(self, hidden: np.ndarray) -> np.ndarray:
        """Final norm + LM head over (n, d_model) rows, one fused call."""
        if self.config.use_norm:
            hidden = rms_norm(hidden, self.weights.norm_final)
        return linear_rows(hidden, self.weights.head_matrix())

    def prefill(self, token_ids: np.ndarray, cache: ModelKVCache) -> np.ndarray:
        """Run the prompt through all layers; returns last-token logits."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 1 or token_ids.size == 0:
            raise ValueError("prompt must be a non-empty 1-D token array")
        start = cache.seq_len
        positions = np.arange(start, start + token_ids.size)
        x = self.embed(token_ids)
        for i, layer in enumerate(self.layers):
            x = layer.prefill(x, positions, cache[i])
        return self.logits_from_hidden(x[-1])

    def prefill_chunked(
        self, token_ids: np.ndarray, cache: ModelKVCache, chunk_tokens: int
    ) -> np.ndarray:
        """Prefill in fixed-size chunks; returns the last token's logits.

        Each chunk attends causally over the cache built by its
        predecessors, so it computes the same math as a one-shot
        :meth:`prefill` — a token's KV depends only on the tokens before
        it. Values agree to the last ulp of the float32 projections
        (chunk boundaries shift BLAS GEMM blocking, as with the prefix
        cache's resumed prefill), and the generated *token streams* are
        bit-identical — the serving suite pins this for every policy.
        This is the model-level primitive behind the server's chunked
        prefill, which interleaves chunks with other sessions' decodes.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 1 or token_ids.size == 0:
            raise ValueError("prompt must be a non-empty 1-D token array")
        if chunk_tokens < 1:
            raise ValueError(f"chunk_tokens must be >= 1, got {chunk_tokens}")
        logits = None
        for start in range(0, token_ids.size, chunk_tokens):
            logits = self.prefill(token_ids[start : start + chunk_tokens], cache)
        return logits

    def decode_step(
        self,
        token_id: int,
        cache: ModelKVCache,
        policy: SelectionPolicy | None = None,
        capture_attention: bool = False,
    ) -> tuple[np.ndarray, dict[int, np.ndarray], list[np.ndarray]]:
        """One autoregressive step.

        Returns (logits, selections_used, attention_weights). The current
        token's index is always unioned into 1-D selections (the paper keeps
        the just-generated KV pair resident).
        """
        position = cache.seq_len  # index this token will occupy
        x = self.embed(np.array([token_id]))[0]
        selections: dict[int, np.ndarray] = {}
        attn_weights: list[np.ndarray] = []
        for i, layer in enumerate(self.layers):
            selection = None
            if policy is not None:
                selection = policy.select(i, x, position, cache[i])
            if selection is not None:
                selection = self._ensure_current(selection, position)
                selections[i] = selection
            x, weights = layer.decode(
                x, position, cache[i], selection=selection,
                capture_weights=capture_attention,
            )
            if capture_attention:
                attn_weights.append(weights)
        return self.logits_from_hidden(x), selections, attn_weights

    def decode_step_batch(
        self,
        token_ids: list[int],
        caches: list[ModelKVCache],
        policies: list[SelectionPolicy | None] | None = None,
    ) -> tuple[np.ndarray, list[dict[int, np.ndarray]]]:
        """One autoregressive step for ``n`` independent sessions, fused.

        Instead of ``n`` full forward passes over the shared weights, the
        sessions' hidden states are stacked into (n, d_model) batches and
        every projection/FFN runs as one row-batched GEMM; attention groups
        sessions by selection shape and scores each group's gathered KV in
        one batched matmul. Policy hooks (``select``) still run per session
        — they own per-session state — but all tensor math is fused.

        Returns (logits of shape (n, vocab), per-session selections dict).
        Row ``j`` is bit-identical to ``decode_step(token_ids[j],
        caches[j], policies[j])`` on the same session state: the fused ops
        are elementwise/row-wise or per-row GEMM slices, never row-fused
        BLAS reductions (see :func:`repro.tensor.ops.linear_rows`).
        """
        n = len(caches)
        if policies is None:
            policies = [None] * n
        if not (len(token_ids) == len(policies) == n):
            raise ValueError(
                f"batch size mismatch: {len(token_ids)} tokens, {n} caches, "
                f"{len(policies)} policies"
            )
        positions = [cache.seq_len for cache in caches]
        position_rows = np.asarray(positions)
        x = self.embed(np.asarray(token_ids))  # (n, d_model)
        selections: list[dict[int, np.ndarray]] = [{} for _ in range(n)]
        for i, layer in enumerate(self.layers):
            layer_caches = [cache[i] for cache in caches]
            step_selections: list[np.ndarray | None] = []
            for j in range(n):
                selection = None
                if policies[j] is not None:
                    selection = policies[j].select(
                        i, x[j], positions[j], layer_caches[j]
                    )
                if selection is not None:
                    selection = self._ensure_current(selection, positions[j])
                    selections[j][i] = selection
                step_selections.append(selection)
            x = layer.decode_rows(x, position_rows, layer_caches, step_selections)
        return self.logits_from_hidden_rows(x), selections

    def decode_spec_batch(
        self,
        token_seqs: list[list[int]],
        caches: list[ModelKVCache],
        policies: list[SelectionPolicy | None] | None = None,
    ) -> tuple[list[np.ndarray], list[list[dict[int, np.ndarray]]]]:
        """Speculative verify: feed several tokens per session, fused.

        Session ``j`` feeds ``token_seqs[j]`` — its pending token followed
        by draft tokens — at the consecutive cache positions they would
        occupy. All (session, position) rows run through each layer as one
        row-batched pass; per-session policy hooks interleave with KV
        appends in position order, so at every ``select`` call the cache
        holds exactly the entries a sequential :meth:`decode_step` at that
        position would have held, and attention caps each row's
        full-attention view at its own position + 1. Position ``t`` of
        session ``j`` is therefore bit-identical to ``decode_step`` run
        sequentially *given the same fed tokens* — which is how greedy
        longest-prefix acceptance makes accepted streams provably equal to
        a never-drafted run. All fed tokens' KV entries are appended; the
        caller truncates the rejected suffix (see
        :meth:`repro.kvcache.cache.ModelKVCache.truncate`).

        Returns ``(logits, selections)`` where ``logits[j]`` is
        ``(len(token_seqs[j]), vocab)`` and ``selections[j][t]`` is the
        per-layer selection dict position ``t`` used. A batch of
        single-token sequences is bit-identical to
        :meth:`decode_step_batch`.
        """
        n = len(caches)
        if policies is None:
            policies = [None] * n
        if not (len(token_seqs) == len(policies) == n):
            raise ValueError(
                f"batch size mismatch: {len(token_seqs)} sequences, "
                f"{n} caches, {len(policies)} policies"
            )
        lens = [len(seq) for seq in token_seqs]
        if any(length < 1 for length in lens):
            raise ValueError("every session must feed at least one token")
        row_session: list[int] = []
        row_offset: list[int] = []
        positions: list[int] = []
        for j, seq in enumerate(token_seqs):
            base = caches[j].seq_len
            for t in range(len(seq)):
                row_session.append(j)
                row_offset.append(t)
                positions.append(base + t)
        position_rows = np.asarray(positions)
        limits = position_rows + 1
        x = self.embed(np.asarray([t for seq in token_seqs for t in seq]))
        selections: list[list[dict[int, np.ndarray]]] = [
            [{} for _ in seq] for seq in token_seqs
        ]
        for i, layer in enumerate(self.layers):
            row_caches = [caches[j][i] for j in row_session]
            layer_input = x

            def select_fn(r, i=i, layer_input=layer_input):
                j = row_session[r]
                if policies[j] is None:
                    return None
                position = int(position_rows[r])
                selection = policies[j].select(
                    i, layer_input[r], position, row_caches[r]
                )
                if selection is not None:
                    selection = self._ensure_current(selection, position)
                    selections[j][row_offset[r]][i] = selection
                return selection

            x = layer.decode_rows_spec(
                x, position_rows, row_caches, limits, select_fn
            )
        logits = self.logits_from_hidden_rows(x)
        out: list[np.ndarray] = []
        start = 0
        for length in lens:
            out.append(logits[start : start + length])
            start += length
        return out, selections

    @staticmethod
    def _ensure_current(selection: np.ndarray, position: int) -> np.ndarray:
        """Union the current token's index into the selection."""
        selection = np.asarray(selection)
        if selection.ndim == 1:
            if position not in selection:
                selection = np.append(selection, position)
            return selection
        if np.all(np.any(selection == position, axis=1)):
            return selection
        extra = np.full((selection.shape[0], 1), position, dtype=selection.dtype)
        return np.concatenate([selection, extra], axis=1)

    # ---- generation -----------------------------------------------------------

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        policy: SelectionPolicy | None = None,
        stop_ids: tuple[int, ...] = (),
        temperature: float = 0.0,
        rng: np.random.Generator | None = None,
        capture_attention: bool = False,
        cache: ModelKVCache | None = None,
        sparse_from_first_token: bool = False,
    ) -> DecodeResult:
        """Prefill then autoregressively decode up to ``max_new_tokens``.

        ``temperature == 0`` is greedy; otherwise softmax sampling with
        ``rng`` (required). ``stop_ids`` terminate generation after being
        emitted.

        ``sparse_from_first_token``: prefill only ``prompt[:-1]`` and decode
        the final prompt token as the first (policy-governed) decode step, so
        KV selection affects every generated token. This mirrors SpeContext's
        flow, where retrieval happens before the LLM forward pass; the
        default (False) matches HuggingFace semantics where the first
        generated token comes from full-attention prefill logits.
        """
        if temperature > 0 and rng is None:
            raise ValueError("temperature sampling requires an rng")
        prompt_ids = np.asarray(prompt_ids)
        if prompt_ids.ndim != 1 or prompt_ids.size == 0:
            raise ValueError("prompt must be a non-empty 1-D token array")
        if cache is None:
            cache = self.new_cache()

        result = DecodeResult(
            prompt_len=int(prompt_ids.size), token_ids=[], stopped_by_eos=False
        )
        use_sparse_first = sparse_from_first_token and prompt_ids.size >= 2
        if use_sparse_first:
            self.prefill(prompt_ids[:-1], cache)
            if policy is not None:
                policy.begin_generation(prompt_ids[:-1], cache)
            pending: int | None = int(prompt_ids[-1])
            prefill_token: int | None = None
        else:
            logits = self.prefill(prompt_ids, cache)
            if policy is not None:
                policy.begin_generation(prompt_ids, cache)
            pending = None
            prefill_token = self._sample(logits, temperature, rng)

        for step in range(max_new_tokens):
            if step == 0 and prefill_token is not None:
                token = prefill_token
            else:
                if policy is not None:
                    policy.pre_step(step, int(pending), cache)
                logits, selections, attn = self.decode_step(
                    int(pending), cache, policy=policy,
                    capture_attention=capture_attention,
                )
                result.selections.append(selections)
                if capture_attention:
                    result.attention_trace.append(attn)
                token = self._sample(logits, temperature, rng)
            result.token_ids.append(int(token))
            if int(token) in stop_ids:
                result.stopped_by_eos = True
                break
            pending = int(token)
        return result

    @staticmethod
    def _sample(
        logits: np.ndarray,
        temperature: float,
        rng: np.random.Generator | None,
        top_p: float = 1.0,
    ) -> int:
        if temperature <= 0:
            return int(np.argmax(logits))
        probs = softmax(logits / temperature)
        if top_p < 1.0:
            # Nucleus cutoff: keep the smallest probability mass >= top_p.
            # Stable sort on (-prob, token id) makes tie-breaking — and
            # therefore the sampled stream — deterministic at fixed seed.
            order = np.argsort(-probs, kind="stable")
            cumulative = np.cumsum(probs[order])
            keep = int(np.searchsorted(cumulative, top_p, side="left")) + 1
            nucleus = order[:keep]
            filtered = np.zeros_like(probs)
            filtered[nucleus] = probs[nucleus]
            probs = filtered / filtered.sum()
        return int(rng.choice(probs.size, p=probs))
