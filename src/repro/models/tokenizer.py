"""Deterministic synthetic tokenizer.

The workloads are synthetic, so the tokenizer defines its own closed
vocabulary: special control tokens, a pool of *content* words (entity/value
tokens the recall circuits operate on) and *filler* words (distractor prose).
Encoding is whitespace word-level and fully reversible, which keeps metric
computation (F1 over answer tokens) exact.
"""

from __future__ import annotations

import numpy as np

SPECIAL_TOKENS = ("<pad>", "<bos>", "<eos>", "<unk>", "<sep>", "<q>", "<a>", "<doc>")


class SyntheticTokenizer:
    """Closed-vocabulary word-level tokenizer.

    The vocabulary layout is: special tokens, then ``n_content`` content
    words (``ent0000``...), then filler words (``w0000``...) up to
    ``vocab_size``.
    """

    def __init__(self, vocab_size: int = 512, n_content: int | None = None):
        if vocab_size < len(SPECIAL_TOKENS) + 8:
            raise ValueError(f"vocab_size {vocab_size} too small")
        self.vocab_size = vocab_size
        if n_content is None:
            n_content = (vocab_size - len(SPECIAL_TOKENS)) // 2
        self.n_content = n_content
        n_filler = vocab_size - len(SPECIAL_TOKENS) - n_content
        if n_filler < 1:
            raise ValueError("no room for filler words; reduce n_content")
        self.n_filler = n_filler

        words = list(SPECIAL_TOKENS)
        words.extend(f"ent{i:04d}" for i in range(n_content))
        words.extend(f"w{i:04d}" for i in range(n_filler))
        self._id_to_word = words
        self._word_to_id = {w: i for i, w in enumerate(words)}

    # ---- special token ids -------------------------------------------------

    @property
    def pad_id(self) -> int:
        return self._word_to_id["<pad>"]

    @property
    def bos_id(self) -> int:
        return self._word_to_id["<bos>"]

    @property
    def eos_id(self) -> int:
        return self._word_to_id["<eos>"]

    @property
    def unk_id(self) -> int:
        return self._word_to_id["<unk>"]

    @property
    def sep_id(self) -> int:
        return self._word_to_id["<sep>"]

    @property
    def question_id(self) -> int:
        return self._word_to_id["<q>"]

    @property
    def answer_id(self) -> int:
        return self._word_to_id["<a>"]

    @property
    def doc_id(self) -> int:
        return self._word_to_id["<doc>"]

    # ---- word pools ---------------------------------------------------------

    def content_id(self, index: int) -> int:
        """Id of the ``index``-th content word."""
        if index < 0 or index >= self.n_content:
            raise IndexError(
                f"content index {index} out of range [0, {self.n_content})"
            )
        return len(SPECIAL_TOKENS) + index

    def filler_id(self, index: int) -> int:
        """Id of the ``index``-th filler word."""
        if index < 0 or index >= self.n_filler:
            raise IndexError(f"filler index {index} out of range [0, {self.n_filler})")
        return len(SPECIAL_TOKENS) + self.n_content + index

    def is_content(self, token_id: int) -> bool:
        """True if the id belongs to the content-word pool."""
        return len(SPECIAL_TOKENS) <= token_id < len(SPECIAL_TOKENS) + self.n_content

    def random_content_ids(
        self, rng: np.random.Generator, n: int, replace: bool = False
    ) -> np.ndarray:
        """Sample content-word ids."""
        picks = rng.choice(self.n_content, size=n, replace=replace)
        return np.array([self.content_id(int(i)) for i in np.atleast_1d(picks)])

    def random_filler_ids(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Sample filler-word ids (with replacement; prose repeats words)."""
        picks = rng.integers(0, self.n_filler, size=n)
        return np.array([self.filler_id(int(i)) for i in picks])

    # ---- encode/decode ------------------------------------------------------

    def encode(self, text: str) -> list[int]:
        """Whitespace tokenize; unknown words map to <unk>."""
        return [self._word_to_id.get(w, self.unk_id) for w in text.split()]

    def decode(self, ids) -> str:
        """Join token ids back into a whitespace-separated string."""
        out = []
        for i in ids:
            i = int(i)
            if i < 0 or i >= self.vocab_size:
                raise ValueError(
                    f"token id {i} outside vocabulary of {self.vocab_size}"
                )
            out.append(self._id_to_word[i])
        return " ".join(out)

    def word(self, token_id: int) -> str:
        """Single-token decode."""
        return self._id_to_word[int(token_id)]

    def __len__(self) -> int:
        return self.vocab_size
