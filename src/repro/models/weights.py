"""Weight containers, random initialization and npz persistence.

Weights are plain numpy arrays in float32, laid out in the torch.nn.Linear
convention (out_features, in_features). ``LayerWeights`` carries two extra
construction fields the analytic circuit builder needs: a per-query-head RoPE
mask (content-matching heads run NoPE) and a RoPE key offset (a previous-token
head pre-rotates keys by +1 position).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import AttentionKind, ModelConfig

DTYPE = np.float32


@dataclass
class LayerWeights:
    """Parameters of one decoder layer."""

    wq: np.ndarray  # (n_q_heads*head_dim, d_model)
    wk: np.ndarray | None  # (n_kv_heads*head_dim, d_model); None for MLA
    wv: np.ndarray | None  # like wk; None for MLA
    wo: np.ndarray  # (d_model, n_q_heads*head_dim)
    w_gate: np.ndarray  # (d_ff, d_model)
    w_up: np.ndarray  # (d_ff, d_model)
    w_down: np.ndarray  # (d_model, d_ff)
    norm_attn: np.ndarray  # (d_model,)
    norm_ffn: np.ndarray  # (d_model,)
    bq: np.ndarray | None = None  # (n_q_heads*head_dim,)
    bk: np.ndarray | None = None  # (n_kv_heads*head_dim,)
    # MLA-only projections:
    w_dkv: np.ndarray | None = None  # (latent, d_model)
    w_uk: np.ndarray | None = None  # (n_q_heads*head_dim, latent)
    w_uv: np.ndarray | None = None  # (n_q_heads*head_dim, latent)
    # Circuit-construction extras:
    rope_mask: np.ndarray | None = None  # (n_q_heads,) bool; None = all True
    rope_key_offset: int = 0

    def attention_parameters(self) -> int:
        """Number of attention parameters in this layer."""
        total = self.wq.size + self.wo.size
        for w in (self.wk, self.wv, self.w_dkv, self.w_uk, self.w_uv, self.bq, self.bk):
            if w is not None:
                total += w.size
        return total

    def parameters(self) -> int:
        """Total parameter count of the layer."""
        return (
            self.attention_parameters()
            + self.w_gate.size
            + self.w_up.size
            + self.w_down.size
            + self.norm_attn.size
            + self.norm_ffn.size
        )


@dataclass
class ModelWeights:
    """Full model parameters: embedding, layers, final norm, LM head."""

    config: ModelConfig
    embedding: np.ndarray  # (vocab, d_model)
    layers: list[LayerWeights]
    norm_final: np.ndarray  # (d_model,)
    lm_head: np.ndarray | None = None  # (vocab, d_model); None when tied

    def head_matrix(self) -> np.ndarray:
        """The output projection actually used for logits."""
        return self.embedding if self.lm_head is None else self.lm_head

    def parameters(self) -> int:
        """Total parameter count."""
        total = self.embedding.size + self.norm_final.size
        total += sum(layer.parameters() for layer in self.layers)
        if self.lm_head is not None:
            total += self.lm_head.size
        return total

    def save(self, path: str) -> None:
        """Persist all arrays to an .npz file."""
        arrays: dict[str, np.ndarray] = {
            "embedding": self.embedding,
            "norm_final": self.norm_final,
        }
        if self.lm_head is not None:
            arrays["lm_head"] = self.lm_head
        for i, layer in enumerate(self.layers):
            for name in (
                "wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down",
                "norm_attn", "norm_ffn", "bq", "bk", "w_dkv", "w_uk", "w_uv",
                "rope_mask",
            ):
                value = getattr(layer, name)
                if value is not None:
                    arrays[f"layer{i}.{name}"] = value
            arrays[f"layer{i}.rope_key_offset"] = np.array(layer.rope_key_offset)
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str, config: ModelConfig) -> "ModelWeights":
        """Load arrays saved by :meth:`save`."""
        data = np.load(path)
        layers = []
        for i in range(config.n_layers):
            def get(name: str) -> np.ndarray | None:
                key = f"layer{i}.{name}"
                return data[key] if key in data else None

            layers.append(
                LayerWeights(
                    wq=get("wq"),
                    wk=get("wk"),
                    wv=get("wv"),
                    wo=get("wo"),
                    w_gate=get("w_gate"),
                    w_up=get("w_up"),
                    w_down=get("w_down"),
                    norm_attn=get("norm_attn"),
                    norm_ffn=get("norm_ffn"),
                    bq=get("bq"),
                    bk=get("bk"),
                    w_dkv=get("w_dkv"),
                    w_uk=get("w_uk"),
                    w_uv=get("w_uv"),
                    rope_mask=get("rope_mask"),
                    rope_key_offset=int(data[f"layer{i}.rope_key_offset"]),
                )
            )
        return cls(
            config=config,
            embedding=data["embedding"],
            layers=layers,
            norm_final=data["norm_final"],
            lm_head=data["lm_head"] if "lm_head" in data else None,
        )


def random_weights(config: ModelConfig, rng: np.random.Generator) -> ModelWeights:
    """Gaussian-initialized weights (scale 1/sqrt(fan_in)), for trainer tests."""

    def init(out_f: int, in_f: int) -> np.ndarray:
        return (rng.standard_normal((out_f, in_f)) / np.sqrt(in_f)).astype(DTYPE)

    d = config.d_model
    qd = config.n_q_heads * config.head_dim
    kvd = config.n_kv_heads * config.head_dim
    layers = []
    for _ in range(config.n_layers):
        if config.attention is AttentionKind.MLA:
            latent = config.mla_latent_dim
            layers.append(
                LayerWeights(
                    wq=init(qd, d),
                    wk=None,
                    wv=None,
                    wo=init(d, qd),
                    w_gate=init(config.d_ff, d),
                    w_up=init(config.d_ff, d),
                    w_down=init(d, config.d_ff),
                    norm_attn=np.ones(d, dtype=DTYPE),
                    norm_ffn=np.ones(d, dtype=DTYPE),
                    w_dkv=init(latent, d),
                    w_uk=init(qd, latent),
                    w_uv=init(qd, latent),
                )
            )
        else:
            layers.append(
                LayerWeights(
                    wq=init(qd, d),
                    wk=init(kvd, d),
                    wv=init(kvd, d),
                    wo=init(d, qd),
                    w_gate=init(config.d_ff, d),
                    w_up=init(config.d_ff, d),
                    w_down=init(d, config.d_ff),
                    norm_attn=np.ones(d, dtype=DTYPE),
                    norm_ffn=np.ones(d, dtype=DTYPE),
                )
            )
    return ModelWeights(
        config=config,
        embedding=(
            rng.standard_normal((config.vocab_size, d)) / np.sqrt(d)
        ).astype(DTYPE),
        layers=layers,
        norm_final=np.ones(d, dtype=DTYPE),
        lm_head=None if config.tie_lm_head else init(config.vocab_size, d),
    )
