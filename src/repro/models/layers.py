"""Decoder layer: (norm ->) attention + residual, (norm ->) SwiGLU FFN + residual."""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache
from repro.models.attention import AttentionModule
from repro.models.config import ModelConfig
from repro.models.weights import LayerWeights
from repro.tensor.ops import linear, linear_rows, rms_norm, silu
from repro.tensor.rope import RotaryEmbedding


class DecoderLayer:
    """One transformer decoder block."""

    def __init__(
        self, config: ModelConfig, weights: LayerWeights, rope: RotaryEmbedding
    ):
        self.config = config
        self.weights = weights
        self.attention = AttentionModule(config, weights, rope)

    def _pre_attn(self, x: np.ndarray) -> np.ndarray:
        if self.config.use_norm:
            return rms_norm(x, self.weights.norm_attn)
        return x

    def _ffn(self, x: np.ndarray) -> np.ndarray:
        h = x
        if self.config.use_norm:
            h = rms_norm(h, self.weights.norm_ffn)
        gate = silu(linear(h, self.weights.w_gate))
        up = linear(h, self.weights.w_up)
        return linear(gate * up, self.weights.w_down)

    def prefill(
        self, x: np.ndarray, positions: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        """Process a prompt chunk; ``x`` is (seq, d_model)."""
        attn_out = self.attention.prefill(self._pre_attn(x), positions, cache)
        x = x + attn_out
        return x + self._ffn(x)

    def decode(
        self,
        x: np.ndarray,
        position: int,
        cache: LayerKVCache,
        selection: np.ndarray | None = None,
        capture_weights: bool = False,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Process one decode token; ``x`` is (d_model,).

        The token's KV entry is appended before attention so the token can
        attend to itself (and so selection indices cover it).
        """
        h = self._pre_attn(x)
        self.attention.append_token(h, position, cache)
        attn_out, weights = self.attention.decode(
            h, position, cache, selection=selection, capture_weights=capture_weights
        )
        x = x + attn_out
        return x + self._ffn(x), weights

    def decode_rows(
        self,
        x_rows: np.ndarray,
        positions: np.ndarray,
        caches: list[LayerKVCache],
        selections: list[np.ndarray | None],
    ) -> np.ndarray:
        """Process one decode token for ``n`` independent sessions at once.

        ``x_rows`` is (n, d_model); row ``j`` is bit-identical to
        :meth:`decode` run on session ``j`` alone — every fused op is
        either elementwise/row-wise or dispatches per-row GEMM slices.
        """
        h = self._pre_attn(x_rows)
        self.attention.append_token_rows(h, positions, caches)
        attn_out = self.attention.decode_rows(h, positions, caches, selections)
        x = x_rows + attn_out
        return x + self._ffn_rows(x)

    def decode_rows_spec(
        self,
        x_rows: np.ndarray,
        positions: np.ndarray,
        caches: list[LayerKVCache],
        limits: np.ndarray,
        select_fn,
    ) -> np.ndarray:
        """Multi-position decode for speculative verify; returns (n, d_model).

        Unlike :meth:`decode_rows`, consecutive rows may belong to one
        session verifying several drafted positions: ``caches[r]`` is the
        row's (possibly shared) layer cache and ``limits[r]`` the KV
        length visible to it (its position + 1). ``select_fn(r)`` is the
        policy hook for row ``r``; it is invoked in row order *before*
        the row's own KV entry is appended — exactly the select-time cache
        state (``len(cache) == position``) the sequential :meth:`decode`
        path presents — so rows must arrive session-major in ascending
        position order. Row ``r`` is bit-identical to :meth:`decode` run
        sequentially at its position: projections and FFN are per-row GEMM
        slices, and attention sees only the causal prefix via ``limits``.
        """
        h = self._pre_attn(x_rows)
        k, v = self.attention.project_kv_rows(h, positions)
        selections: list[np.ndarray | None] = []
        for r in range(x_rows.shape[0]):
            selections.append(select_fn(r))
            self.attention.append_projected_row(caches[r], k, v, r)
        attn_out = self.attention.decode_rows(
            h, positions, caches, selections, limits=limits
        )
        x = x_rows + attn_out
        return x + self._ffn_rows(x)

    def _ffn_rows(self, x: np.ndarray) -> np.ndarray:
        """SwiGLU over (n, d_model) rows with per-row GEMM semantics."""
        h = x
        if self.config.use_norm:
            h = rms_norm(h, self.weights.norm_ffn)
        gate = silu(linear_rows(h, self.weights.w_gate))
        up = linear_rows(h, self.weights.w_up)
        return linear_rows(gate * up, self.weights.w_down)
