"""Decoder layer: (norm ->) attention + residual, (norm ->) SwiGLU FFN + residual."""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache
from repro.models.attention import AttentionModule
from repro.models.config import ModelConfig
from repro.models.weights import LayerWeights
from repro.tensor.ops import linear, rms_norm, silu
from repro.tensor.rope import RotaryEmbedding


class DecoderLayer:
    """One transformer decoder block."""

    def __init__(self, config: ModelConfig, weights: LayerWeights, rope: RotaryEmbedding):
        self.config = config
        self.weights = weights
        self.attention = AttentionModule(config, weights, rope)

    def _pre_attn(self, x: np.ndarray) -> np.ndarray:
        if self.config.use_norm:
            return rms_norm(x, self.weights.norm_attn)
        return x

    def _ffn(self, x: np.ndarray) -> np.ndarray:
        h = x
        if self.config.use_norm:
            h = rms_norm(h, self.weights.norm_ffn)
        gate = silu(linear(h, self.weights.w_gate))
        up = linear(h, self.weights.w_up)
        return linear(gate * up, self.weights.w_down)

    def prefill(self, x: np.ndarray, positions: np.ndarray, cache: LayerKVCache) -> np.ndarray:
        """Process a prompt chunk; ``x`` is (seq, d_model)."""
        attn_out = self.attention.prefill(self._pre_attn(x), positions, cache)
        x = x + attn_out
        return x + self._ffn(x)

    def decode(
        self,
        x: np.ndarray,
        position: int,
        cache: LayerKVCache,
        selection: np.ndarray | None = None,
        capture_weights: bool = False,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Process one decode token; ``x`` is (d_model,).

        The token's KV entry is appended before attention so the token can
        attend to itself (and so selection indices cover it).
        """
        h = self._pre_attn(x)
        self.attention.append_token(h, position, cache)
        attn_out, weights = self.attention.decode(
            h, position, cache, selection=selection, capture_weights=capture_weights
        )
        x = x + attn_out
        return x + self._ffn(x), weights
