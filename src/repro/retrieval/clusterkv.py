"""ClusterKV: semantic-space clustering of keys (Liu et al., DAC'25).

After prefill, each layer's prompt keys are clustered per KV head (k-means
in key space); cluster centroids act as retrieval vectors. At decode time,
clusters are ranked by centroid-query dot product and selected greedily
until the token budget fills. Clusters follow key geometry (unlike Quest's
positional pages), which is why ClusterKV recalls evidence better at small
budgets — the paper measures it above Quest throughout Fig. 8.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.models.llm import TransformerLM
from repro.retrieval.base import BudgetedPolicy


class ClusterKVPolicy(BudgetedPolicy):
    """Centroid-scored cluster selection over the prompt KV cache."""

    def __init__(
        self,
        model: TransformerLM,
        budget: int,
        tokens_per_cluster: int = 8,
        retain_generated: bool = True,
        seed: int = 0,
    ):
        super().__init__(model, budget, retain_generated)
        if tokens_per_cluster < 1:
            raise ValueError("tokens_per_cluster must be >= 1")
        self.tokens_per_cluster = tokens_per_cluster
        self.seed = seed
        # per layer: list over kv heads of (centroids (C, dim), labels (prompt_len,))
        self._clusters: list[list[tuple[np.ndarray, np.ndarray]]] = []

    def _prepare(self, cache: ModelKVCache) -> None:
        self._clusters = []
        n_clusters = max(self.prompt_len // self.tokens_per_cluster, 2)
        for layer_cache in cache.layers:
            keys = layer_cache.keys[0][:, : self.prompt_len, :]
            per_head = []
            for h in range(keys.shape[0]):
                centroids, labels = kmeans2(
                    keys[h].astype(np.float64),
                    n_clusters,
                    minit="points",
                    seed=self.seed,
                )
                per_head.append((centroids, labels))
            self._clusters.append(per_head)

    def _select_prompt(
        self, layer: int, queries: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        per_head = self._clusters[layer]
        heads = len(per_head)
        selection = np.empty((heads, self.budget), dtype=np.int64)
        for h in range(heads):
            centroids, labels = per_head[h]
            scores = centroids @ queries[h]
            self.count_ops(centroids.size)
            order = np.argsort(-scores)
            picked: list[int] = []
            for cluster_id in order:
                members = np.nonzero(labels == cluster_id)[0]
                picked.extend(int(m) for m in members)
                if len(picked) >= self.budget:
                    break
            # Clusters are uneven; trim to the budget (highest-ranked first).
            selection[h] = np.array(picked[: self.budget], dtype=np.int64)
        return selection
