"""Sliding-window permanent eviction (Longformer-style local attention).

Keeps only the most recent ``budget`` tokens. Cheap and constant-memory but
discards history — the accuracy floor among the baselines (Sec. 2.2).
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache


class SlidingWindowPolicy:
    """Attend to the last ``budget`` positions only."""

    def __init__(self, budget: int):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.budget = budget

    def begin_generation(self, prompt_ids: np.ndarray, cache: ModelKVCache) -> None:
        pass

    def pre_step(self, step: int, token_id: int, cache: ModelKVCache) -> None:
        pass

    def spec_begin(self) -> None:
        """Position-only selection holds no mutable state; nothing to arm."""

    def spec_commit(self, m: int) -> None:
        """Nothing to roll back."""

    def select(
        self, layer: int, hidden: np.ndarray, position: int, cache: LayerKVCache
    ) -> np.ndarray | None:
        length = len(cache)
        if length <= self.budget:
            return None
        return np.arange(length - self.budget, length)
