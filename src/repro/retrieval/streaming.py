"""StreamingLLM: attention sinks + sliding window (Xiao et al., ICLR'24).

Perpetually retains the first ``n_sinks`` tokens (the "attention sink"
positions that soak up softmax mass) plus the most recent tokens, totalling
``budget``.
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache


class StreamingLLMPolicy:
    """Sinks + recency window, position-based (input-agnostic)."""

    def __init__(self, budget: int, n_sinks: int = 4):
        if budget <= n_sinks:
            raise ValueError(f"budget {budget} must exceed n_sinks {n_sinks}")
        self.budget = budget
        self.n_sinks = n_sinks

    def begin_generation(self, prompt_ids: np.ndarray, cache: ModelKVCache) -> None:
        pass

    def pre_step(self, step: int, token_id: int, cache: ModelKVCache) -> None:
        pass

    def spec_begin(self) -> None:
        """Position-only selection holds no mutable state; nothing to arm."""

    def spec_commit(self, m: int) -> None:
        """Nothing to roll back."""

    def select(
        self, layer: int, hidden: np.ndarray, position: int, cache: LayerKVCache
    ) -> np.ndarray | None:
        length = len(cache)
        if length <= self.budget:
            return None
        window = self.budget - self.n_sinks
        sinks = np.arange(self.n_sinks)
        recent = np.arange(length - window, length)
        return np.concatenate([sinks, recent])
