"""KV-selection baselines from the paper's related work (Sec. 2.2).

Every policy implements the :class:`repro.models.llm.SelectionPolicy`
protocol. The dynamic-selection baselines reproduce the paper's Challenge-2
behaviour faithfully: they preprocess only the *prompt* KV cache after
prefill (paging / clustering / quantization) and **retain every newly
generated KV pair**, which is exactly what makes them ineffective in the
long-context *reasoning* scenario.

- :class:`FullAttentionPolicy` — no sparsity (HF eager / FlashAttention /
  FlashInfer differ only in the timing model, not in selection).
- :class:`SlidingWindowPolicy` — permanent eviction, recency window.
- :class:`StreamingLLMPolicy` — attention sinks + window (Xiao et al.).
- :class:`QuestPolicy` — page min/max upper bounds (Tang et al.).
- :class:`ClusterKVPolicy` — key clustering, centroid scores (Liu et al.).
- :class:`ShadowKVPolicy` — low-bit quantized key scores (Sun et al.).
- :class:`H2OPolicy` — accumulated attention mass heavy hitters (extra
  baseline beyond the paper's table, common in the OSS ecosystem).
"""

from repro.retrieval.base import BudgetedPolicy, RetrievalRecord
from repro.retrieval.clusterkv import ClusterKVPolicy
from repro.retrieval.full import FullAttentionPolicy
from repro.retrieval.h2o import H2OPolicy
from repro.retrieval.quest import QuestPolicy
from repro.retrieval.registry import (
    available_policies,
    make_policy,
    register_policy,
    resolve_policy_name,
)
from repro.retrieval.shadowkv import ShadowKVPolicy
from repro.retrieval.sliding import SlidingWindowPolicy
from repro.retrieval.streaming import StreamingLLMPolicy

__all__ = [
    "BudgetedPolicy",
    "RetrievalRecord",
    "FullAttentionPolicy",
    "SlidingWindowPolicy",
    "StreamingLLMPolicy",
    "QuestPolicy",
    "ClusterKVPolicy",
    "ShadowKVPolicy",
    "H2OPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
    "resolve_policy_name",
]
