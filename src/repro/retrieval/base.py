"""Common machinery for budgeted KV-selection policies.

``BudgetedPolicy`` handles the lifecycle shared by all dynamic-selection
baselines: remembering the prompt boundary at ``begin_generation``, running
subclass preprocessing over the prompt cache, combining the per-head prompt
selection with the always-retained generated tokens, and recording selection
history for the overlap/transfer analyses (Fig. 6b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.models.config import AttentionKind
from repro.models.llm import TransformerLM


@dataclass
class RetrievalRecord:
    """Bookkeeping of what a policy selected, for analysis experiments."""

    # selection_history[step][layer] -> flat np.ndarray of token indices
    selection_history: list[dict[int, np.ndarray]] = field(default_factory=list)
    retrieval_ops: int = 0  # score multiply-accumulate count (Eq. 3 analog)

    def layer_selections(self, layer: int) -> list[np.ndarray]:
        """Selection of one layer across steps (for adjacent-step overlap)."""
        return [step[layer] for step in self.selection_history if layer in step]


class BudgetedPolicy:
    """Base class for per-layer dynamic selection with a token budget.

    Subclasses implement ``_prepare(cache)`` (preprocessing after prefill)
    and ``_select_prompt(layer, queries, cache)`` returning per-head indices
    into the *prompt* region, shaped (n_sel_heads, budget).

    ``retain_generated=True`` reproduces the baselines' Challenge-2
    behaviour: tokens generated during decode are always attended and are
    never candidates for eviction.
    """

    def __init__(
        self, model: TransformerLM, budget: int, retain_generated: bool = True
    ):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.model = model
        self.config = model.config
        self.budget = budget
        self.retain_generated = retain_generated
        self.prompt_len = 0
        self.record = RetrievalRecord()
        self._step_log: dict[int, np.ndarray] = {}
        self._spec_mode = False
        self._spec_base: int | None = None
        self._spec_t = 0
        self._spec_flushed = False
        self._spec_log: dict[int, dict[int, np.ndarray]] = {}
        self._spec_ops: dict[int, int] = {}
        if self.config.attention is AttentionKind.MLA and not self.supports_mla():
            raise NotImplementedError(
                f"{type(self).__name__} operates on the K cache and does not "
                "support MLA latent caches (matches the paper's 'None Support' "
                "entries); use SpeContext's retrieval head instead"
            )

    # ---- protocol ------------------------------------------------------------

    def reset(self) -> None:
        """Clear per-request bookkeeping so the policy can be reused.

        Subclass preprocessing state is rebuilt by the next
        ``begin_generation``; only the shared record/step log need
        explicit clearing (fresh objects, so histories handed out for
        analysis stay intact).
        """
        self.prompt_len = 0
        self.record = RetrievalRecord()
        self._step_log = {}
        self._spec_mode = False
        self._spec_base = None
        self._spec_t = 0
        self._spec_flushed = False
        self._spec_log = {}
        self._spec_ops = {}

    def begin_generation(self, prompt_ids: np.ndarray, cache: ModelKVCache) -> None:
        """Capture the prompt boundary and run subclass preprocessing."""
        self.prompt_len = cache.seq_len
        self._prepare(cache)

    def pre_step(self, step: int, token_id: int, cache: ModelKVCache) -> None:
        if self._spec_mode:
            # Only the first speculative pre_step performs the ordinary flush
            # of the previous (committed) step's log; row 0 of a verify batch
            # always commits, so this flush is never rolled back. Later rows'
            # flushes are deferred to spec_commit, which knows how many
            # positions survived.
            if not self._spec_flushed:
                self._spec_flushed = True
                if self._step_log:
                    self.record.selection_history.append(self._step_log)
                    self._step_log = {}
            return
        if self._step_log:
            self.record.selection_history.append(self._step_log)
            self._step_log = {}

    def spec_begin(self) -> None:
        """Arm speculative mode: route logging per-position until commit.

        Between ``spec_begin`` and ``spec_commit`` the policy sees the usual
        ``pre_step``/``select`` call sequence for every verified position, but
        buffers all state mutations keyed by draft offset so the rejected
        suffix can be undone bit-exactly.
        """
        self._spec_mode = True
        self._spec_base = None
        self._spec_t = 0
        self._spec_flushed = False
        self._spec_log = {}
        self._spec_ops = {}

    def spec_commit(self, m: int) -> None:
        """Keep the first ``m`` speculative positions' effects; undo the rest.

        After this call the policy state is bit-identical to having decoded
        the ``m`` committed tokens sequentially and never drafted at all:
        positions ``0..m-2`` flush into the record (as their successors'
        pre_steps would have), position ``m-1`` becomes the pending step log,
        and rejected positions' retrieval ops are subtracted.
        """
        if not self._spec_mode:
            raise RuntimeError("spec_commit without spec_begin")
        if m < 1:
            raise ValueError(f"must commit at least the verified row 0, got m={m}")
        for t in range(m - 1):
            log = self._spec_log.get(t)
            if log:
                self.record.selection_history.append(log)
        self._step_log = self._spec_log.get(m - 1, {})
        self.record.retrieval_ops -= sum(
            ops for t, ops in self._spec_ops.items() if t >= m
        )
        self._spec_mode = False
        self._spec_base = None
        self._spec_flushed = False
        self._spec_log = {}
        self._spec_ops = {}

    def select(
        self, layer: int, hidden: np.ndarray, position: int, cache: LayerKVCache
    ) -> np.ndarray | None:
        """Per-layer selection: budgeted prompt tokens + retained new tokens."""
        if self._spec_mode:
            # Fused verify calls selects layer-major, ascending position; the
            # first call is the session's base position (cache length at
            # verify entry, == select-time cache length, same as sequential).
            if self._spec_base is None:
                self._spec_base = position
            self._spec_t = position - self._spec_base
        prompt_candidates = min(self.prompt_len, len(cache))
        if prompt_candidates <= self.budget:
            return None  # the whole prompt fits in the budget: full attention
        queries = self.model.layers[layer].attention.selection_queries(hidden, position)
        ops_before = self.record.retrieval_ops
        prompt_sel = self._select_prompt(layer, queries, cache)
        prompt_sel = np.asarray(prompt_sel)
        if prompt_sel.ndim == 1:
            prompt_sel = np.broadcast_to(
                prompt_sel, (queries.shape[0], prompt_sel.shape[0])
            )
        selection = self._append_generated(prompt_sel, len(cache))
        if self._spec_mode:
            t = self._spec_t
            self._spec_log.setdefault(t, {})[layer] = np.unique(selection)
            self._spec_ops[t] = self._spec_ops.get(t, 0) + (
                self.record.retrieval_ops - ops_before
            )
        else:
            self._step_log[layer] = np.unique(selection)
        return selection

    # ---- subclass hooks --------------------------------------------------------

    def supports_mla(self) -> bool:
        """Whether the policy can score an MLA latent cache."""
        return False

    def _prepare(self, cache: ModelKVCache) -> None:
        """Preprocess the prompt KV cache (paging/clustering/quantization)."""

    def _select_prompt(
        self, layer: int, queries: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        raise NotImplementedError

    # ---- helpers ---------------------------------------------------------------

    def _append_generated(self, prompt_sel: np.ndarray, cache_len: int) -> np.ndarray:
        """Union the retained decode-phase tokens into every head's set."""
        if not self.retain_generated or cache_len <= self.prompt_len:
            return prompt_sel
        generated = np.arange(self.prompt_len, cache_len)
        tail = np.broadcast_to(generated, (prompt_sel.shape[0], generated.shape[0]))
        return np.concatenate([prompt_sel, tail], axis=1)

    def prompt_keys(self, cache: LayerKVCache) -> np.ndarray:
        """Prompt-region keys, shape (n_kv_heads, prompt_len, head_dim)."""
        return cache.keys[0][:, : self.prompt_len, :]

    def count_ops(self, n: int) -> None:
        """Accumulate retrieval multiply-accumulate ops (Eq. 3 bookkeeping)."""
        self.record.retrieval_ops += int(n)
