"""H2O-style heavy-hitter selection (extra baseline beyond the paper's set).

Maintains, per layer and KV head, an accumulator of attention mass each
prompt token has received across decode steps; keeps the heaviest hitters
plus a recency window. Unlike the paper's baselines this one adapts its
scores over the course of generation, at the cost of computing full scores
every step — included because H2O is ubiquitous in the OSS KV-sparsity
ecosystem the paper situates itself in.
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.models.llm import TransformerLM
from repro.retrieval.base import BudgetedPolicy
from repro.tensor.ops import softmax, top_k_indices


class H2OPolicy(BudgetedPolicy):
    """Accumulated-attention heavy hitters + recency window."""

    def __init__(
        self,
        model: TransformerLM,
        budget: int,
        recent_fraction: float = 0.25,
        retain_generated: bool = True,
    ):
        super().__init__(model, budget, retain_generated)
        if not 0.0 <= recent_fraction < 1.0:
            raise ValueError("recent_fraction must be in [0, 1)")
        self.recent_fraction = recent_fraction
        self._accumulated: list[np.ndarray] = []  # per layer: (Hkv, prompt_len)
        self._spec_acc_base: list[np.ndarray] = []
        self._spec_contribs: list[list[tuple[int, np.ndarray]]] = []

    def _prepare(self, cache: ModelKVCache) -> None:
        self._accumulated = [
            np.zeros((layer_cache.keys.shape[1], self.prompt_len))
            for layer_cache in cache.layers
        ]

    def spec_begin(self) -> None:
        super().spec_begin()
        self._spec_acc_base = [acc.copy() for acc in self._accumulated]
        self._spec_contribs = [[] for _ in self._accumulated]

    def spec_commit(self, m: int) -> None:
        # Rebuild each layer's accumulator from the pre-speculation snapshot
        # by replaying only the committed positions' softmax contributions in
        # their original order — the exact float-add sequence a sequential
        # never-drafted run would have performed.
        for layer, base in enumerate(self._spec_acc_base):
            acc = base
            for t, contrib in self._spec_contribs[layer]:
                if t < m:
                    acc += contrib
            self._accumulated[layer] = acc
        self._spec_acc_base = []
        self._spec_contribs = []
        super().spec_commit(m)

    def _select_prompt(
        self, layer: int, queries: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        keys = self.prompt_keys(cache)
        scores = np.einsum("hnd,hd->hn", keys, queries) / np.sqrt(keys.shape[-1])
        self.count_ops(keys.size)
        contrib = softmax(scores, axis=-1)
        self._accumulated[layer] += contrib
        if self._spec_mode:
            self._spec_contribs[layer].append((self._spec_t, contrib))

        n_recent = int(self.budget * self.recent_fraction)
        n_heavy = self.budget - n_recent
        heavy = top_k_indices(self._accumulated[layer], n_heavy, axis=-1)
        if n_recent == 0:
            return heavy
        recent = np.arange(self.prompt_len - n_recent, self.prompt_len)
        heads = heavy.shape[0]
        out = np.empty((heads, self.budget), dtype=np.int64)
        for h in range(heads):
            merged = np.union1d(heavy[h], recent)
            if merged.size < self.budget:
                # Union removed duplicates; pad with next-heaviest tokens.
                pool = top_k_indices(
                    self._accumulated[layer][h], self.budget + n_recent
                )
                extra = [t for t in pool if t not in set(merged.tolist())]
                tail = np.array(
                    extra[: self.budget - merged.size], dtype=np.int64
                )
                merged = np.concatenate([merged, tail])
            out[h] = merged[: self.budget]
        return out
