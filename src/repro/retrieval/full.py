"""Full attention "policy": no selection at all.

The paper's three full-attention baselines (HuggingFace eager,
FlashAttention, FlashInfer) compute identical outputs; they differ only in
kernel efficiency and memory layout, which the timing models in
:mod:`repro.simulate` capture. Functionally they are all this policy.
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache


class FullAttentionPolicy:
    """Attends to the entire KV cache every step."""

    def begin_generation(self, prompt_ids: np.ndarray, cache: ModelKVCache) -> None:
        pass

    def pre_step(self, step: int, token_id: int, cache: ModelKVCache) -> None:
        pass

    def spec_begin(self) -> None:
        """Full attention holds no selection state; nothing to arm."""

    def spec_commit(self, m: int) -> None:
        """Nothing to roll back."""

    def select(
        self, layer: int, hidden: np.ndarray, position: int, cache: LayerKVCache
    ) -> np.ndarray | None:
        return None
