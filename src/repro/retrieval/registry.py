"""Policy registry: resolve every KV-selection policy through one factory.

Before this module existed, the seven baselines and SpeContext's own
policy lived in parallel class hierarchies that every experiment wired up
by hand. :func:`make_policy` is now the single construction path::

    policy = make_policy("quest", model, budget=256, page_size=16)
    policy = make_policy("specontext", model, budget=256, head=head)

Canonical names (one per paper engine): ``specontext``, ``quest``,
``h2o``, ``shadowkv``, ``clusterkv``, ``streaming``, ``sliding``,
``full``. Display aliases used by the figures ("Ours", "StreamingLLM",
"SlidingWindow", ...) resolve to the same builders, case-insensitively.

MLA models: the K-cache baselines raise ``NotImplementedError`` at
construction (the paper's "None Support" cells); ``specontext``, ``full``,
``streaming`` and ``sliding`` work on any attention kind.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
    SpeContextPolicy,
)
from repro.models.llm import SelectionPolicy, TransformerLM
from repro.retrieval.clusterkv import ClusterKVPolicy
from repro.retrieval.full import FullAttentionPolicy
from repro.retrieval.h2o import H2OPolicy
from repro.retrieval.quest import QuestPolicy
from repro.retrieval.shadowkv import ShadowKVPolicy
from repro.retrieval.sliding import SlidingWindowPolicy
from repro.retrieval.streaming import StreamingLLMPolicy

PolicyBuilder = Callable[..., SelectionPolicy]

_REGISTRY: dict[str, PolicyBuilder] = {}
_ALIASES: dict[str, str] = {}


def register_policy(
    name: str, *aliases: str
) -> Callable[[PolicyBuilder], PolicyBuilder]:
    """Decorator adding a builder under ``name`` (plus display aliases)."""

    def deco(builder: PolicyBuilder) -> PolicyBuilder:
        key = _normalize(name)
        if key in _REGISTRY:
            raise ValueError(f"duplicate policy name {name!r}")
        _REGISTRY[key] = builder
        for alias in aliases:
            _ALIASES[_normalize(alias)] = key
        return builder

    return deco


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "").replace("_", "")


def available_policies() -> tuple[str, ...]:
    """Canonical policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_policy_name(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive)."""
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown policy {name!r}; available: {list(available_policies())}"
        )
    return key


def make_policy(
    name: str, model: TransformerLM, budget: int, **opts
) -> SelectionPolicy:
    """Build the selection policy ``name`` for ``model`` at ``budget``.

    ``opts`` are forwarded to the concrete policy (e.g. ``page_size`` for
    quest, ``n_sinks`` for streaming, ``head``/``level``/``bos_id`` for
    specontext). Raises ``KeyError`` for unknown names and
    ``NotImplementedError`` when a K-cache baseline meets an MLA model.
    """
    return _REGISTRY[resolve_policy_name(name)](model, budget, **opts)


# ---- builders ------------------------------------------------------------------


@register_policy("specontext", "ours", "spe")
def _build_specontext(
    model: TransformerLM,
    budget: int,
    head: LightweightRetrievalHead | None = None,
    level: str = "head",
    bos_id: int | None = None,
    head_config: RetrievalHeadConfig | None = None,
    rng: np.random.Generator | None = None,
    head_seed: int = 0,
) -> SpeContextPolicy:
    """SpeContext's retrieval head; builds a fresh head unless one is given.

    A head owns its own K cache, so concurrent sessions must not share one
    instance — pass ``head=`` only for sequential reuse.
    """
    if head is None:
        rng = rng if rng is not None else np.random.default_rng(head_seed)
        if bos_id is None:
            raise ValueError(
                "specontext needs bos_id= (to build a retrieval head) "
                "or a prebuilt head="
            )
        head = LightweightRetrievalHead.from_teacher(
            model.weights, bos_id, rng, config=head_config
        )
    return SpeContextPolicy(head, budget, level=level)


@register_policy("quest")
def _build_quest(model: TransformerLM, budget: int, **opts) -> QuestPolicy:
    return QuestPolicy(model, budget, **opts)


@register_policy("h2o")
def _build_h2o(model: TransformerLM, budget: int, **opts) -> H2OPolicy:
    return H2OPolicy(model, budget, **opts)


@register_policy("shadowkv")
def _build_shadowkv(model: TransformerLM, budget: int, **opts) -> ShadowKVPolicy:
    return ShadowKVPolicy(model, budget, **opts)


@register_policy("clusterkv")
def _build_clusterkv(model: TransformerLM, budget: int, **opts) -> ClusterKVPolicy:
    return ClusterKVPolicy(model, budget, **opts)


@register_policy("streaming", "streamingllm")
def _build_streaming(
    model: TransformerLM, budget: int, **opts
) -> StreamingLLMPolicy:
    return StreamingLLMPolicy(budget, **opts)


@register_policy("sliding", "slidingwindow")
def _build_sliding(
    model: TransformerLM, budget: int, **opts
) -> SlidingWindowPolicy:
    return SlidingWindowPolicy(budget, **opts)


@register_policy("full", "fullattn", "fullattention")
def _build_full(model: TransformerLM, budget: int, **opts) -> FullAttentionPolicy:
    return FullAttentionPolicy(**opts)
