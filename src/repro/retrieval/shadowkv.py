"""ShadowKV: quantized-key retrieval (Sun et al., ICML'25).

After prefill the prompt keys are quantized to ``bits`` per value. At
decode time, exact dot products against the *quantized* keys rank every
prompt token, and the top-budget tokens per KV head are selected. Scores
cover all positions (no paging granularity), so accuracy tracks full
attention closely; the costs show up in the timing model (K reconstruction
and value fetch on the critical path, Fig. 7d).
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.models.llm import TransformerLM
from repro.retrieval.base import BudgetedPolicy
from repro.tensor.ops import top_k_indices
from repro.tensor.quantization import dequantize, quantize_per_channel


class ShadowKVPolicy(BudgetedPolicy):
    """Top-k selection by query scores against low-bit keys."""

    def __init__(
        self,
        model: TransformerLM,
        budget: int,
        bits: int = 4,
        retain_generated: bool = True,
    ):
        super().__init__(model, budget, retain_generated)
        self.bits = bits
        self._quantized_keys: list[np.ndarray] = []  # per layer: (Hkv, prompt, dim)

    def _prepare(self, cache: ModelKVCache) -> None:
        self._quantized_keys = []
        for layer_cache in cache.layers:
            keys = layer_cache.keys[0][:, : self.prompt_len, :]
            q = quantize_per_channel(keys, bits=self.bits, axis=-1)
            self._quantized_keys.append(dequantize(q))

    def _select_prompt(
        self, layer: int, queries: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        keys = self._quantized_keys[layer]
        scores = np.einsum("hnd,hd->hn", keys, queries)
        self.count_ops(keys.size)
        return top_k_indices(scores, self.budget, axis=-1)
