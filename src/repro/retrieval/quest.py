"""Quest: query-aware page-level KV selection (Tang et al., ICML'24).

After prefill, the prompt keys of every layer are partitioned into fixed
pages and summarized by element-wise min/max vectors. At each decode step,
each layer computes an upper bound on q.k per page from the metadata alone
(O(n_pages) instead of O(seq)) and loads the top pages within the budget.
Pages are coarse: a page earns a high bound if *any* coordinate pattern in
it could match, which over-selects correlated distractor pages — the source
of Quest's accuracy gap at small budgets in Fig. 8.
"""

from __future__ import annotations

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.models.llm import TransformerLM
from repro.retrieval.base import BudgetedPolicy
from repro.tensor.ops import top_k_indices


class QuestPolicy(BudgetedPolicy):
    """Page min/max upper-bound selection over the prompt KV cache."""

    def __init__(
        self,
        model: TransformerLM,
        budget: int,
        page_size: int = 16,
        retain_generated: bool = True,
    ):
        super().__init__(model, budget, retain_generated)
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if budget < page_size:
            raise ValueError(f"budget {budget} smaller than one page ({page_size})")
        self.page_size = page_size
        self._page_min: list[np.ndarray] = []  # per layer: (Hkv, n_pages, dim)
        self._page_max: list[np.ndarray] = []

    def _prepare(self, cache: ModelKVCache) -> None:
        """Build page metadata for the prompt region of every layer."""
        self._page_min = []
        self._page_max = []
        n_pages = self.prompt_len // self.page_size  # partial tail page dropped
        for layer_cache in cache.layers:
            keys = layer_cache.keys[0][:, : n_pages * self.page_size, :]
            heads, _, dim = keys.shape
            paged = keys.reshape(heads, n_pages, self.page_size, dim)
            self._page_min.append(paged.min(axis=2))
            self._page_max.append(paged.max(axis=2))

    def _select_prompt(
        self, layer: int, queries: np.ndarray, cache: LayerKVCache
    ) -> np.ndarray:
        page_min = self._page_min[layer]
        page_max = self._page_max[layer]
        heads, n_pages, dim = page_min.shape
        q = queries[:, None, :]  # (Hkv, 1, dim)
        bounds = np.maximum(q * page_min, q * page_max).sum(axis=-1)  # (Hkv, n_pages)
        self.count_ops(2 * heads * n_pages * dim)

        pages_needed = max(self.budget // self.page_size, 1)
        pages_needed = min(pages_needed, n_pages)
        top_pages = top_k_indices(bounds, pages_needed, axis=-1)  # (Hkv, P)

        token_count = pages_needed * self.page_size
        selection = np.empty((heads, token_count), dtype=np.int64)
        offsets = np.arange(self.page_size)
        for h in range(heads):
            starts = top_pages[h] * self.page_size
            selection[h] = (starts[:, None] + offsets[None, :]).ravel()

        # The prompt tail that doesn't fill a whole page (typically the
        # question itself) is always kept, like Quest's recent-token handling.
        tail_start = n_pages * self.page_size
        if tail_start < self.prompt_len:
            tail = np.arange(tail_start, self.prompt_len)
            tail = np.broadcast_to(tail, (heads, tail.shape[0]))
            selection = np.concatenate([selection, tail], axis=1)
        return selection
