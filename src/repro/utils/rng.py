"""Deterministic random-number management.

Every stochastic component in the reproduction (weight construction, workload
generation, distillation training) draws from a named stream so that results
are reproducible run-to-run and component-to-component: adding a new consumer
never perturbs the randomness seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_hash(text: str) -> int:
    """Map a string to a stable 64-bit integer (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def seeded_rng(seed: int | str) -> np.random.Generator:
    """Return a numpy Generator seeded from an int or a stable string hash."""
    if isinstance(seed, str):
        seed = _stable_hash(seed)
    return np.random.default_rng(seed)


class RngFactory:
    """Produces independent named random streams from a single master seed.

    >>> factory = RngFactory(1234)
    >>> weights_rng = factory.stream("model-weights")
    >>> data_rng = factory.stream("workload")

    The same (master seed, name) pair always yields the same stream.
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a Generator unique to ``name`` under this master seed."""
        mixed = _stable_hash(f"{self.master_seed}:{name}")
        return np.random.default_rng(mixed)

    def child(self, name: str) -> "RngFactory":
        """Return a derived factory, for nesting component namespaces."""
        return RngFactory(_stable_hash(f"{self.master_seed}:{name}"))
