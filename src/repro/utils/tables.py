"""Plain-text table/series formatting for the experiment harness.

The experiment modules print the same rows/columns the paper reports; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def _fmt_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    ``rows`` may contain strings, ints or floats; floats are rounded to
    ``precision`` decimal places.
    """
    rendered = [[_fmt_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    precision: int = 3,
) -> str:
    """Render a figure-style set of (x, y) series, one series per row."""
    headers = [name] + [_fmt_cell(x, precision) for x in xs]
    rows = [[label] + list(ys) for label, ys in series.items()]
    return format_table(headers, rows, precision=precision)
