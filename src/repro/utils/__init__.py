"""Shared utilities: seeded RNG, table formatting, simple serialization.

These helpers are deliberately dependency-free (numpy only) so every other
subpackage can import them without cycles.
"""

from repro.utils.rng import RngFactory, seeded_rng
from repro.utils.tables import format_series, format_table
from repro.utils.units import GB, KB, MB, bytes_to_gb, human_bytes

__all__ = [
    "RngFactory",
    "seeded_rng",
    "format_table",
    "format_series",
    "GB",
    "MB",
    "KB",
    "bytes_to_gb",
    "human_bytes",
]
