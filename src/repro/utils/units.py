"""Byte-size constants and formatting used by the memory model."""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB


def bytes_to_gb(n_bytes: float) -> float:
    """Convert a byte count to (binary) gigabytes."""
    return n_bytes / GB


def human_bytes(n_bytes: float) -> str:
    """Render a byte count with an appropriate unit suffix."""
    if n_bytes >= GB:
        return f"{n_bytes / GB:.2f} GiB"
    if n_bytes >= MB:
        return f"{n_bytes / MB:.2f} MiB"
    if n_bytes >= KB:
        return f"{n_bytes / KB:.2f} KiB"
    return f"{n_bytes:.0f} B"
