"""Typed request-validation errors shared by the server and HTTP frontend.

One validation vocabulary for every submission surface:
:meth:`repro.serving.server.SpeContextServer.add_request`, the executor
layer (:mod:`repro.serving.engine`) and the OpenAI-style HTTP frontend
(:mod:`repro.serving.http`) all raise (or forward) these instead of bare
``ValueError``/``KeyError``/asserts, so callers can branch on the *kind*
of rejection and the HTTP layer can map each one to a structured 4xx
without string matching.

Every class subclasses :class:`ValueError` (and
:class:`UnknownPolicyError` additionally :class:`KeyError`), so existing
callers catching the untyped exceptions keep working unchanged.

Attributes carried by every error:

- ``code``: stable machine-readable slug (OpenAI-style ``error.code``);
- ``http_status``: the status the HTTP frontend answers with.
"""

from __future__ import annotations

__all__ = [
    "RequestValidationError",
    "EmptyPromptError",
    "InvalidSamplingError",
    "PromptTooLongError",
    "UnknownPolicyError",
    "ConfigValidationError",
    "OverloadedError",
    "DeadlineExceededError",
    "EngineUnavailableError",
]


class RequestValidationError(ValueError):
    """A request was rejected at validation; the engine state is untouched."""

    code = "invalid_request_error"
    http_status = 400

    @property
    def message(self) -> str:
        """The human-readable rejection reason (first positional arg)."""
        return str(self.args[0]) if self.args else self.__class__.__name__


class EmptyPromptError(RequestValidationError):
    """Prompt missing, empty, whitespace-only, or not a 1-D token array."""

    code = "empty_prompt"


class InvalidSamplingError(RequestValidationError):
    """Sampling parameters out of range (max_new_tokens, temperature, top_p)."""

    code = "invalid_sampling_params"


class PromptTooLongError(RequestValidationError):
    """Request cannot fit the model's positions or the KV pool, even alone."""

    code = "prompt_too_long"


class UnknownPolicyError(RequestValidationError, KeyError):
    """Named KV-selection policy is not in the registry.

    Also a :class:`KeyError` because the policy registry historically
    raised that; ``str()`` is overridden back to the plain message
    (``KeyError`` would repr-quote it).
    """

    code = "unknown_policy"

    def __str__(self) -> str:  # KeyError.__str__ would add quotes
        return self.message


class ConfigValidationError(RequestValidationError):
    """An ``EngineConfig``/``ClusterConfig`` numeric field is out of range.

    Raised at config construction instead of letting a negative heartbeat
    or NaN pace crash deep inside a worker loop. Still a ``ValueError``
    (via :class:`RequestValidationError`), so callers catching the old
    untyped rejections keep working.
    """

    code = "invalid_config"


class OverloadedError(RuntimeError):
    """Admission control shed the request; retry after backoff.

    Raised by :meth:`repro.serving.server.SpeContextServer.add_request`
    when the configured :class:`~repro.serving.policies
    .AdmissionController` judges the request doomed (queue too deep,
    token backlog too large, deadline infeasible). The engine state is
    untouched; the HTTP layer answers 429 with a ``Retry-After`` header
    built from :attr:`retry_after_s`.
    """

    code = "overloaded"
    http_status = 429

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else self.__class__.__name__


class DeadlineExceededError(RuntimeError):
    """A request blew its TTFT or total deadline and was cancelled.

    ``kind`` is ``"ttft"`` (the first token never arrived in time; the
    HTTP layer answers 408) or ``"total"`` (generation started but could
    not finish in time; 504). The server frees the request's pool blocks
    and emits one terminal :class:`~repro.serving.server.StreamEvent`
    when it raises/records this.
    """

    code = "deadline_exceeded"

    def __init__(self, message: str, kind: str = "total"):
        super().__init__(message)
        if kind not in ("ttft", "total"):
            raise ValueError(f"deadline kind must be 'ttft' or 'total', got {kind!r}")
        self.kind = kind
        self.http_status = 408 if kind == "ttft" else 504

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else self.__class__.__name__


class EngineUnavailableError(RuntimeError):
    """No healthy worker can take the request (all replicas dead/draining)."""

    code = "engine_unavailable"
    http_status = 503
    retry_after_s = 1.0

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else self.__class__.__name__
