"""Typed request-validation errors shared by the server and HTTP frontend.

One validation vocabulary for every submission surface:
:meth:`repro.serving.server.SpeContextServer.add_request`, the executor
layer (:mod:`repro.serving.engine`) and the OpenAI-style HTTP frontend
(:mod:`repro.serving.http`) all raise (or forward) these instead of bare
``ValueError``/``KeyError``/asserts, so callers can branch on the *kind*
of rejection and the HTTP layer can map each one to a structured 4xx
without string matching.

Every class subclasses :class:`ValueError` (and
:class:`UnknownPolicyError` additionally :class:`KeyError`), so existing
callers catching the untyped exceptions keep working unchanged.

Attributes carried by every error:

- ``code``: stable machine-readable slug (OpenAI-style ``error.code``);
- ``http_status``: the status the HTTP frontend answers with.
"""

from __future__ import annotations

__all__ = [
    "RequestValidationError",
    "EmptyPromptError",
    "InvalidSamplingError",
    "PromptTooLongError",
    "UnknownPolicyError",
    "EngineUnavailableError",
]


class RequestValidationError(ValueError):
    """A request was rejected at validation; the engine state is untouched."""

    code = "invalid_request_error"
    http_status = 400

    @property
    def message(self) -> str:
        """The human-readable rejection reason (first positional arg)."""
        return str(self.args[0]) if self.args else self.__class__.__name__


class EmptyPromptError(RequestValidationError):
    """Prompt missing, empty, whitespace-only, or not a 1-D token array."""

    code = "empty_prompt"


class InvalidSamplingError(RequestValidationError):
    """Sampling parameters out of range (max_new_tokens, temperature, top_p)."""

    code = "invalid_sampling_params"


class PromptTooLongError(RequestValidationError):
    """Request cannot fit the model's positions or the KV pool, even alone."""

    code = "prompt_too_long"


class UnknownPolicyError(RequestValidationError, KeyError):
    """Named KV-selection policy is not in the registry.

    Also a :class:`KeyError` because the policy registry historically
    raised that; ``str()`` is overridden back to the plain message
    (``KeyError`` would repr-quote it).
    """

    code = "unknown_policy"

    def __str__(self) -> str:  # KeyError.__str__ would add quotes
        return self.message


class EngineUnavailableError(RuntimeError):
    """No healthy worker can take the request (all replicas dead/draining)."""

    code = "engine_unavailable"
    http_status = 503

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else self.__class__.__name__
