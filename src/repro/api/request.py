"""Request/response dataclasses for the request-level serving API.

A :class:`GenerationRequest` bundles a prompt with its sampling parameters
and (optionally) a per-request policy choice and budget; the server answers
with a :class:`GenerationOutput` carrying the generated tokens, the finish
reason and the full per-request :class:`~repro.core.engine.GenerationStats`
system accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.api.config import SamplingParams
from repro.api.errors import EmptyPromptError

if TYPE_CHECKING:  # pragma: no cover - type-only imports, avoid cycles
    from repro.core.engine import GenerationStats
    from repro.models.llm import SelectionPolicy


@dataclass
class GenerationRequest:
    """One generation request for the server.

    Attributes:
        prompt_ids: 1-D token array (non-empty).
        sampling: decoding parameters.
        policy: selection policy for this request — a registry name (see
            :func:`repro.retrieval.registry.make_policy`), a prebuilt
            policy object, or None to use the engine config's default.
        budget: KV token budget; None uses the engine config's default.
        policy_opts: extra kwargs forwarded to ``make_policy`` (merged over
            the engine config's ``policy_opts``).
        priority: scheduling weight — higher values admit earlier and are
            preempted later under the "priority" scheduler; other
            schedulers ignore it. Ties break by arrival order.
        request_id: assigned by the server at submission.
        rng: sampling RNG override (takes precedence over sampling.seed).
    """

    prompt_ids: np.ndarray
    sampling: SamplingParams = field(default_factory=SamplingParams)
    policy: "str | SelectionPolicy | None" = None
    budget: int | None = None
    policy_opts: dict = field(default_factory=dict)
    priority: int = 0
    request_id: int | None = None
    rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self):
        self.prompt_ids = np.asarray(self.prompt_ids)
        if self.prompt_ids.ndim != 1 or self.prompt_ids.size == 0:
            raise EmptyPromptError(
                "prompt_ids must be a non-empty 1-D token array"
            )
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")

    @property
    def prompt_len(self) -> int:
        return int(self.prompt_ids.size)


@dataclass
class GenerationOutput:
    """Server response for one finished request.

    ``finish_reason`` is "stop" when a stop id was emitted and "length"
    when the request exhausted ``max_new_tokens``.
    """

    request_id: int
    token_ids: list[int]
    finish_reason: str
    stats: "GenerationStats"

    @property
    def n_generated(self) -> int:
        return len(self.token_ids)
