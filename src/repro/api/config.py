"""Engine-level and request-level configuration for the serving API.

``EngineConfig`` captures everything that used to be loose
``SpeContextEngine.__init__`` kwargs — budget, hardware spec, selection
policy and granularity, elastic loading — plus the serving knobs the
continuous-batching :class:`~repro.serving.server.SpeContextServer` needs
(admission concurrency, seeding). ``SamplingParams`` captures the loose
``generate()`` kwargs (token limit, temperature, stop ids).

``ClusterConfig`` captures the multi-replica layer's knobs (replica
count, routing policy, affinity stickiness) for the
:class:`~repro.serving.cluster.ClusterFrontend`.

All are plain dataclasses with no upward dependencies, so every layer
(core engine, server, cluster frontend, experiments, examples, CLI) can
share them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import math

from repro.api.errors import ConfigValidationError, InvalidSamplingError
from repro.hardware.spec import EDGE_RTX4060, HardwareSpec

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.retrieval_head import RetrievalHeadConfig


@dataclass(frozen=True)
class SamplingParams:
    """Per-request decoding parameters.

    Attributes:
        max_new_tokens: decode-step cap for the request.
        temperature: 0 is greedy; > 0 samples from the softmax.
        top_p: nucleus cutoff for temperature sampling — restrict to the
            smallest probability mass >= top_p, renormalize, then sample.
            1.0 (default) disables the cutoff; greedy decoding ignores it.
        stop_ids: token ids that terminate generation once emitted.
        seed: RNG seed for temperature sampling (ignored when greedy).
        ttft_deadline_s: cancel the request (typed
            :class:`~repro.api.errors.DeadlineExceededError`, HTTP 408)
            if its first token has not been produced within this many
            seconds of arrival on the server clock. None disables.
        total_deadline_s: cancel the request (HTTP 504) if it has not
            finished within this many seconds of arrival. None disables.
            The server clock is virtual (one unit per engine step), so
            deadlines are deterministic and replayable at a fixed seed.

    Out-of-range values raise the typed
    :class:`repro.api.errors.InvalidSamplingError` (a ``ValueError``), so
    the HTTP frontend can map them to structured 4xx responses.
    """

    max_new_tokens: int = 128
    temperature: float = 0.0
    top_p: float = 1.0
    stop_ids: tuple[int, ...] = ()
    seed: int | None = None
    ttft_deadline_s: float | None = None
    total_deadline_s: float | None = None

    def __post_init__(self):
        if self.max_new_tokens < 1:
            raise InvalidSamplingError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.temperature < 0:
            raise InvalidSamplingError(
                f"temperature must be >= 0, got {self.temperature}"
            )
        if not 0.0 < self.top_p <= 1.0:
            raise InvalidSamplingError(
                f"top_p must be in (0, 1], got {self.top_p}"
            )
        for name in ("ttft_deadline_s", "total_deadline_s"):
            value = getattr(self, name)
            if value is None:
                continue
            if not math.isfinite(value) or value <= 0:
                raise InvalidSamplingError(
                    f"{name} must be a finite value > 0 or None, got {value}"
                )
        if (
            self.ttft_deadline_s is not None
            and self.total_deadline_s is not None
            and self.ttft_deadline_s > self.total_deadline_s
        ):
            raise InvalidSamplingError(
                f"ttft_deadline_s ({self.ttft_deadline_s}) cannot exceed "
                f"total_deadline_s ({self.total_deadline_s})"
            )


@dataclass
class EngineConfig:
    """Everything the engine/server needs beyond the model itself.

    Attributes:
        budget: default KV token budget for requests that don't set one.
        spec: hardware pair driving the memory model and offload thresholds.
        policy: default selection-policy name (see
            :func:`repro.retrieval.registry.make_policy`).
        selection_level: SpeContext granularity, "head" or "batch".
        bos_id: BOS token id, needed to build retrieval heads for
            "specontext" requests when no prebuilt head is supplied.
        head_config: retrieval-head construction parameters.
        elastic: set-difference (True) vs full-reload (False) transfer
            accounting.
        max_concurrency: upper bound on co-running sessions in the server
            (admission is primarily gated by KV-pool pressure and the
            adaptive memory manager's thresholds; this is a hard cap on
            top).
        block_size: tokens per KV block in the server's shared
            :class:`~repro.kvcache.pool.PagedKVPool`.
        pool_blocks: total blocks in the shared pool. None (default) sizes
            the pool from the adaptive manager's Algorithm-1 capacity
            (``capacity_tokens() / block_size``); an explicit small value
            forces memory pressure, preemption and prefix-cache eviction.
        enable_prefix_cache: publish full prompt blocks for reuse by later
            requests sharing the prefix (never changes logits; prefix KV
            values are bit-identical to recomputation).
        preempt_mode: what happens to a session evicted under pool
            pressure — "swap" stashes its KV cache host-side and restores
            it on resume (exact for every policy); "recompute" drops the
            cache and replays prefill + forced decode on resume (exact for
            policies without stateful sampling inside the policy itself).
        scheduler: admission/preemption ordering policy name (see
            :func:`repro.serving.policies.make_scheduler`): "fcfs",
            "priority" or "sjf".
        batched_decode: fuse every active session's decode step into one
            server-wide forward pass (stacked hidden states, row-batched
            QKV/O/FFN GEMMs, selection-shape-grouped attention). Token
            streams and selection histories are bit-identical to the
            sequential per-session path; set False to fall back to the
            one-session-at-a-time reference loop.
        kv_dtype: storage precision of per-session KV caches, "float64"
            (default, double-precision attention accumulation) or
            "float32" (half the memory traffic; projections are float32 so
            the stored values are unchanged — what production engines do
            with FP16 KV). Applies equally to both decode paths, which
            stay bit-identical to each other at either precision.
        prefill_chunk_tokens: split every prompt prefill into chunks of at
            most this many tokens, streamed in across server steps so one
            long-prompt arrival can no longer freeze the decode wave for
            its whole prefill (head-of-line blocking). A token's KV
            depends only on the tokens before it, so chunked prefill is
            bit-identical to the monolithic default (None). Full prompt
            blocks are prefix-published as chunks complete, so later
            requests can hit blocks of a still-prefilling peer.
        max_step_tokens: per-step token budget shared by the decode wave
            and prefill chunks. Each step reserves one token per ready
            (decoding) session, then spends the remainder on prefill
            chunks in scheduler admission order. The budget bounds
            *prefill* work; decode tokens are never dropped, so a session
            whose final chunk lands mid-step decodes in that same step
            (matching monolithic admission semantics) and may push the
            step's total a few tokens past the budget. None (default)
            schedules one chunk per prefilling session per step instead
            of a global budget. Requires ``prefill_chunk_tokens`` (a
            monolithic prefill cannot be budgeted).
        sparse_from_first_token: decode the final prompt token as the first
            policy-governed step (SpeContext's dataflow).
        requests: request multiplier for the theoretical memory model.
        dlm_bytes: DLM weight bytes charged to the memory model when the
            server builds it; None (default) auto-sizes from a retrieval
            head when the default policy is specontext, an explicit value
            (including 0) is used as-is.
        seed: base seed for per-request retrieval-head construction.
        policy_opts: default extra kwargs forwarded to ``make_policy``.
        spec_decode_k: speculative decoding draft length. 0 (default)
            disables speculation. With k >= 1 the server builds a
            :class:`~repro.distill.dlm.DraftModel` from the target model
            (shared content embedding, identity projections) and, for
            greedy (temperature == 0) sessions, drafts up to k tokens per
            step and verifies all of them plus one bonus position in a
            single fused multi-row target forward pass. Acceptance is a
            greedy longest-prefix match, so committed token streams are
            bit-identical to non-speculative runs; sampled sessions are
            never speculated (their RNG streams stay untouched). A plain
            int (not a model object) so the config stays picklable for
            multiprocessing executor workers.
        admission: admission-control policy name resolved by
            :func:`repro.serving.policies.make_admission` — "accept_all"
            (default, the historical behavior), "queue_depth",
            "token_backlog" or "deadline_feasible". Anything but
            accept_all sheds doomed requests at ``add_request`` with a
            typed :class:`~repro.api.errors.OverloadedError` (HTTP 429 +
            ``Retry-After``) instead of letting them queue past their
            deadlines.
        admission_opts: extra kwargs forwarded to ``make_admission``
            (e.g. ``max_waiting`` for queue_depth, ``max_backlog_tokens``
            for token_backlog). A plain dict so the config stays
            picklable for multiprocessing executor workers.
    """

    budget: int = 2048
    spec: HardwareSpec = EDGE_RTX4060
    policy: str = "specontext"
    selection_level: str = "head"
    bos_id: int | None = None
    head_config: "RetrievalHeadConfig | None" = None
    elastic: bool = True
    max_concurrency: int = 8
    block_size: int = 16
    pool_blocks: int | None = None
    enable_prefix_cache: bool = True
    preempt_mode: str = "swap"
    scheduler: str = "fcfs"
    batched_decode: bool = True
    kv_dtype: str = "float64"
    prefill_chunk_tokens: int | None = None
    max_step_tokens: int | None = None
    sparse_from_first_token: bool = True
    requests: int = 1
    dlm_bytes: int | None = None
    seed: int = 0
    policy_opts: dict = field(default_factory=dict)
    spec_decode_k: int = 0
    admission: str = "accept_all"
    admission_opts: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.budget < 1:
            raise ConfigValidationError(f"budget must be >= 1, got {self.budget}")
        if self.max_concurrency < 1:
            raise ConfigValidationError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.selection_level not in ("head", "batch"):
            raise ConfigValidationError(
                f"selection_level must be 'head' or 'batch', "
                f"got {self.selection_level!r}"
            )
        if self.requests < 1:
            raise ConfigValidationError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.block_size < 1:
            raise ConfigValidationError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        if self.pool_blocks is not None and self.pool_blocks < 1:
            raise ConfigValidationError(
                f"pool_blocks must be >= 1 or None, got {self.pool_blocks}"
            )
        if self.preempt_mode not in ("swap", "recompute"):
            raise ConfigValidationError(
                f"preempt_mode must be 'swap' or 'recompute', "
                f"got {self.preempt_mode!r}"
            )
        if self.kv_dtype not in ("float32", "float64"):
            raise ConfigValidationError(
                f"kv_dtype must be 'float32' or 'float64', got {self.kv_dtype!r}"
            )
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ConfigValidationError(
                f"prefill_chunk_tokens must be >= 1 or None, "
                f"got {self.prefill_chunk_tokens}"
            )
        if self.max_step_tokens is not None:
            if self.max_step_tokens < 1:
                raise ConfigValidationError(
                    f"max_step_tokens must be >= 1 or None, "
                    f"got {self.max_step_tokens}"
                )
            if self.prefill_chunk_tokens is None:
                raise ConfigValidationError(
                    "max_step_tokens requires prefill_chunk_tokens: a "
                    "monolithic prefill runs inline at admission and "
                    "cannot be budgeted per step"
                )
        if self.spec_decode_k < 0:
            raise ConfigValidationError(
                f"spec_decode_k must be >= 0, got {self.spec_decode_k}"
            )
        if not isinstance(self.admission, str) or not self.admission:
            raise ConfigValidationError(
                f"admission must be a policy name, got {self.admission!r}"
            )
        if not isinstance(self.admission_opts, dict):
            raise ConfigValidationError(
                f"admission_opts must be a dict, got "
                f"{type(self.admission_opts).__name__}"
            )


@dataclass
class ClusterConfig:
    """Multi-replica serving knobs for the cluster frontend.

    Attributes:
        n_replicas: independent :class:`~repro.serving.server
            .SpeContextServer` replicas, each with its own paged KV pool,
            scheduler and meter.
        router: routing-policy name resolved by
            :func:`repro.serving.policies.make_router` — "round_robin",
            "least_loaded" or "prefix_affinity".
        stickiness_tokens: minimum cached-prefix match (in tokens) for
            the prefix-affinity router to stick a request to a replica;
            below it placement falls back to least-loaded. Also the
            threshold the frontend's routing stats count an *affinity
            hit* against, so hit/miss numbers mean the same thing under
            every router.
        executor: which executor drives the replicas (see
            :func:`repro.serving.engine.make_executor`) — "inproc" keeps
            every replica a plain in-process server (the bit-identity
            reference), "multiproc" wraps each replica in its own worker
            process driven over pipes, overlapping steps across cores.
        heartbeat_s: seconds the multiproc executor waits for a worker's
            step/command reply before declaring it dead and resubmitting
            its in-flight requests to surviving replicas. Workers also
            stamp a shared per-step progress counter; any advance of the
            counter resets this deadline, so a slow-but-progressing
            worker survives while a *stalled* one (alive but frozen) is
            quarantined after ``heartbeat_s`` without progress.
        pace_s_per_token: modeled accelerator dwell per processed token,
            slept by each worker after every step. 0.0 (default) disables
            pacing; the engine benchmark sets it so each worker behaves
            like one device whose step time scales with its share of the
            batch — the parallelism the worker/executor split buys.
        pipe_retries: transient pipe-send failures (``OSError`` short of
            a closed pipe) tolerated per command before the executor
            declares the worker dead and fails over. Each retry backs
            off ``pipe_retry_backoff_s * attempt`` seconds.
        pipe_retry_backoff_s: base backoff between pipe-send retries.
        roles: per-replica serving role for disaggregated prefill/decode
            — a tuple of ``"prefill"``, ``"decode"`` and ``"mixed"``
            entries, one per replica. New requests are only *placed* on
            prefill-capable replicas (``prefill``/``mixed``), and a
            session whose prefill completes on a ``prefill`` replica is
            handed off (live KV migration) to the least-loaded
            decode-capable replica after the step. None (default) makes
            every replica ``mixed``: placement, stepping and routing are
            byte-for-byte the historical behavior. Roles bias placement
            only — every replica remains a full server, so a missing
            decode target degrades to local decode, never to an error.
        rebalance_every: run a live-migration rebalance pass every this
            many cluster steps (0, the default, disables periodic
            rebalancing; an explicit ``rebalance()`` call always works).
            A pass drains whole sessions — KV blocks, policy state, RNG
            — from the most loaded replica to the least loaded one; the
            migrated stream stays bit-identical to a never-migrated run.
        rebalance_ratio: load skew that triggers a migration: a session
            moves only while the source's load exceeds
            ``rebalance_ratio`` times the destination's (load is the
            reserved-token charge plus queue depth, the same quantity
            the least-loaded router balances).
        max_migrations_per_pass: cap on sessions moved per rebalance
            pass, bounding per-step migration work.

    Name resolution happens when the frontend builds the router (this
    module must stay import-cycle-free below the serving layer), so an
    unknown ``router`` raises at :class:`ClusterFrontend` construction,
    not here.
    """

    n_replicas: int = 2
    router: str = "prefix_affinity"
    stickiness_tokens: int = 16
    executor: str = "inproc"
    heartbeat_s: float = 30.0
    pace_s_per_token: float = 0.0
    pipe_retries: int = 2
    pipe_retry_backoff_s: float = 0.05
    roles: tuple[str, ...] | None = None
    rebalance_every: int = 0
    rebalance_ratio: float = 1.5
    max_migrations_per_pass: int = 4

    def __post_init__(self):
        if self.n_replicas < 1:
            raise ConfigValidationError(
                f"n_replicas must be >= 1, got {self.n_replicas}"
            )
        if self.stickiness_tokens < 1:
            raise ConfigValidationError(
                f"stickiness_tokens must be >= 1, got {self.stickiness_tokens}"
            )
        if self.executor not in ("inproc", "multiproc"):
            raise ConfigValidationError(
                f"executor must be 'inproc' or 'multiproc', "
                f"got {self.executor!r}"
            )
        if not math.isfinite(self.heartbeat_s) or self.heartbeat_s <= 0:
            raise ConfigValidationError(
                f"heartbeat_s must be finite and > 0, got {self.heartbeat_s}"
            )
        if not math.isfinite(self.pace_s_per_token) or self.pace_s_per_token < 0:
            raise ConfigValidationError(
                f"pace_s_per_token must be finite and >= 0, "
                f"got {self.pace_s_per_token}"
            )
        if self.pipe_retries < 0:
            raise ConfigValidationError(
                f"pipe_retries must be >= 0, got {self.pipe_retries}"
            )
        if (
            not math.isfinite(self.pipe_retry_backoff_s)
            or self.pipe_retry_backoff_s < 0
        ):
            raise ConfigValidationError(
                f"pipe_retry_backoff_s must be finite and >= 0, "
                f"got {self.pipe_retry_backoff_s}"
            )
        if self.roles is not None:
            roles = tuple(self.roles)
            if len(roles) != self.n_replicas:
                raise ConfigValidationError(
                    f"roles must name one role per replica: got "
                    f"{len(roles)} roles for {self.n_replicas} replicas"
                )
            for role in roles:
                if role not in ("prefill", "decode", "mixed"):
                    raise ConfigValidationError(
                        f"roles entries must be 'prefill', 'decode' or "
                        f"'mixed', got {role!r}"
                    )
            if not any(r in ("prefill", "mixed") for r in roles):
                raise ConfigValidationError(
                    "roles must include at least one prefill-capable "
                    "replica ('prefill' or 'mixed'); nothing could accept "
                    "new requests otherwise"
                )
            # Normalize to a tuple so the config stays hashable-ish and
            # picklable regardless of what sequence the caller passed.
            object.__setattr__(self, "roles", roles)
        if self.rebalance_every < 0:
            raise ConfigValidationError(
                f"rebalance_every must be >= 0, got {self.rebalance_every}"
            )
        if (
            not math.isfinite(self.rebalance_ratio)
            or self.rebalance_ratio < 1.0
        ):
            raise ConfigValidationError(
                f"rebalance_ratio must be finite and >= 1.0, "
                f"got {self.rebalance_ratio}"
            )
        if self.max_migrations_per_pass < 1:
            raise ConfigValidationError(
                f"max_migrations_per_pass must be >= 1, "
                f"got {self.max_migrations_per_pass}"
            )
