"""Engine-level and request-level configuration for the serving API.

``EngineConfig`` captures everything that used to be loose
``SpeContextEngine.__init__`` kwargs — budget, hardware spec, selection
policy and granularity, elastic loading — plus the serving knobs the
continuous-batching :class:`~repro.serving.server.SpeContextServer` needs
(admission concurrency, seeding). ``SamplingParams`` captures the loose
``generate()`` kwargs (token limit, temperature, stop ids).

Both are plain dataclasses with no upward dependencies, so every layer
(core engine, server, experiments, examples, CLI) can share them without
import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hardware.spec import EDGE_RTX4060, HardwareSpec

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.retrieval_head import RetrievalHeadConfig


@dataclass(frozen=True)
class SamplingParams:
    """Per-request decoding parameters.

    Attributes:
        max_new_tokens: decode-step cap for the request.
        temperature: 0 is greedy; > 0 samples from the softmax.
        stop_ids: token ids that terminate generation once emitted.
        seed: RNG seed for temperature sampling (ignored when greedy).
    """

    max_new_tokens: int = 128
    temperature: float = 0.0
    stop_ids: tuple[int, ...] = ()
    seed: int | None = None

    def __post_init__(self):
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")


@dataclass
class EngineConfig:
    """Everything the engine/server needs beyond the model itself.

    Attributes:
        budget: default KV token budget for requests that don't set one.
        spec: hardware pair driving the memory model and offload thresholds.
        policy: default selection-policy name (see
            :func:`repro.retrieval.registry.make_policy`).
        selection_level: SpeContext granularity, "head" or "batch".
        bos_id: BOS token id, needed to build retrieval heads for
            "specontext" requests when no prebuilt head is supplied.
        head_config: retrieval-head construction parameters.
        elastic: set-difference (True) vs full-reload (False) transfer
            accounting.
        max_concurrency: maximum co-running sessions in the server; further
            requests wait in the FIFO admission queue.
        sparse_from_first_token: decode the final prompt token as the first
            policy-governed step (SpeContext's dataflow).
        requests: request multiplier for the theoretical memory model.
        dlm_bytes: DLM weight bytes charged to the memory model when the
            server builds it; None (default) auto-sizes from a retrieval
            head when the default policy is specontext, an explicit value
            (including 0) is used as-is.
        seed: base seed for per-request retrieval-head construction.
        policy_opts: default extra kwargs forwarded to ``make_policy``.
    """

    budget: int = 2048
    spec: HardwareSpec = EDGE_RTX4060
    policy: str = "specontext"
    selection_level: str = "head"
    bos_id: int | None = None
    head_config: "RetrievalHeadConfig | None" = None
    elastic: bool = True
    max_concurrency: int = 8
    sparse_from_first_token: bool = True
    requests: int = 1
    dlm_bytes: int | None = None
    seed: int = 0
    policy_opts: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.selection_level not in ("head", "batch"):
            raise ValueError(
                f"selection_level must be 'head' or 'batch', "
                f"got {self.selection_level!r}"
            )
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
