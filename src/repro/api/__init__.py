"""Public request-level serving API.

The canonical entry points of the system:

- :class:`EngineConfig` / :class:`SamplingParams` — engine-level and
  request-level configuration, replacing the loose kwargs of the original
  one-shot engine API;
- :class:`GenerationRequest` / :class:`GenerationOutput` — the
  request/response pair the continuous-batching server speaks;
- :func:`repro.retrieval.registry.make_policy` — the single factory that
  resolves KV-selection policies by name;
- :class:`repro.serving.server.SpeContextServer` — the continuous-batching
  server itself (imported from :mod:`repro.serving` to keep this package
  dependency-free).

Typical flow::

    from repro.api import EngineConfig, GenerationRequest, SamplingParams
    from repro.serving import SpeContextServer

    server = SpeContextServer(model, EngineConfig(budget=96, bos_id=bos))
    server.add_request(GenerationRequest(prompt, SamplingParams(8)))
    outputs = server.run()
"""

from repro.api.config import ClusterConfig, EngineConfig, SamplingParams
from repro.api.errors import (
    ConfigValidationError,
    DeadlineExceededError,
    EmptyPromptError,
    EngineUnavailableError,
    InvalidSamplingError,
    OverloadedError,
    PromptTooLongError,
    RequestValidationError,
    UnknownPolicyError,
)
from repro.api.request import GenerationOutput, GenerationRequest

__all__ = [
    "ClusterConfig",
    "ConfigValidationError",
    "DeadlineExceededError",
    "EmptyPromptError",
    "EngineConfig",
    "EngineUnavailableError",
    "GenerationOutput",
    "GenerationRequest",
    "InvalidSamplingError",
    "OverloadedError",
    "PromptTooLongError",
    "RequestValidationError",
    "SamplingParams",
    "UnknownPolicyError",
]
