"""SpeContext reproduction: speculative context sparsity for long-context
LLM reasoning (ASPLOS 2026).

The package is organized bottom-up:

- :mod:`repro.tensor`, :mod:`repro.models`, :mod:`repro.kvcache` — the
  functional transformer substrate (pure numpy) with KV caches and
  constructed associative-recall circuits;
- :mod:`repro.retrieval` — the layer-wise KV-selection baselines (Quest,
  ClusterKV, ShadowKV, StreamingLLM, H2O, sliding window);
- :mod:`repro.distill` — knowledge-distillation substrate (the Sec. 3
  insight, verified by actually running KD);
- :mod:`repro.core` — SpeContext itself: the lightweight retrieval head
  (C1), elastic asynchronous prefetch (C2), the theoretical memory model
  and adaptive memory management (C3), and the end-to-end engine;
- :mod:`repro.hardware`, :mod:`repro.perf`, :mod:`repro.serving` — the
  timing/memory simulators and serving layer behind the performance
  experiments;
- :mod:`repro.workloads` — synthetic LongBench/LongWriter tasks, metrics
  and the six-dimension judge;
- :mod:`repro.experiments` — one module per paper table/figure plus the
  ``specontext-experiments`` CLI.

Quick start::

    from repro import SpeContextEngine, TransformerLM
    from repro.models import SyntheticTokenizer, build_recall_model, tiny_test_config

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

from repro.core.engine import GenerationStats, SpeContextEngine
from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
    SpeContextPolicy,
)
from repro.models.config import AttentionKind, ModelConfig, tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer

__version__ = "1.0.0"

__all__ = [
    "AttentionKind",
    "GenerationStats",
    "LightweightRetrievalHead",
    "ModelConfig",
    "RetrievalHeadConfig",
    "SpeContextEngine",
    "SpeContextPolicy",
    "SyntheticTokenizer",
    "TransformerLM",
    "tiny_test_config",
    "__version__",
]
