"""SpeContext reproduction: speculative context sparsity for long-context
LLM reasoning (ASPLOS 2026).

The package is organized bottom-up:

- :mod:`repro.tensor`, :mod:`repro.models`, :mod:`repro.kvcache` — the
  functional transformer substrate (pure numpy) with KV caches and
  constructed associative-recall circuits;
- :mod:`repro.retrieval` — the layer-wise KV-selection baselines (Quest,
  ClusterKV, ShadowKV, StreamingLLM, H2O, sliding window);
- :mod:`repro.distill` — knowledge-distillation substrate (the Sec. 3
  insight, verified by actually running KD);
- :mod:`repro.core` — SpeContext itself: the lightweight retrieval head
  (C1), elastic asynchronous prefetch (C2), the theoretical memory model
  and adaptive memory management (C3), and the end-to-end engine;
- :mod:`repro.hardware`, :mod:`repro.perf`, :mod:`repro.serving` — the
  timing/memory simulators and serving layer behind the performance
  experiments;
- :mod:`repro.workloads` — synthetic LongBench/LongWriter tasks, metrics
  and the six-dimension judge;
- :mod:`repro.experiments` — one module per paper table/figure plus the
  ``specontext-experiments`` CLI.

Quick start (request-level API)::

    from repro import EngineConfig, GenerationRequest, SpeContextServer

    server = SpeContextServer(model, EngineConfig(budget=96, bos_id=bos))
    server.add_request(GenerationRequest(prompt_ids))
    outputs = server.run()

See ``examples/quickstart.py`` for a complete runnable walk-through and
``README.md`` for the config -> registry -> server tour.
"""

from repro.api.config import EngineConfig, SamplingParams
from repro.api.request import GenerationOutput, GenerationRequest
from repro.core.engine import GenerationStats, SpeContextEngine
from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
    SpeContextPolicy,
)
from repro.models.config import AttentionKind, ModelConfig, tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.retrieval.registry import available_policies, make_policy
from repro.serving.server import SpeContextServer

__version__ = "1.1.0"

__all__ = [
    "AttentionKind",
    "EngineConfig",
    "GenerationOutput",
    "GenerationRequest",
    "GenerationStats",
    "LightweightRetrievalHead",
    "ModelConfig",
    "RetrievalHeadConfig",
    "SamplingParams",
    "SpeContextEngine",
    "SpeContextPolicy",
    "SpeContextServer",
    "SyntheticTokenizer",
    "TransformerLM",
    "available_policies",
    "make_policy",
    "tiny_test_config",
    "__version__",
]
