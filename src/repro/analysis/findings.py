"""Finding records, inline suppressions and the grandfathering baseline.

Every pass reports :class:`Finding`s; the runner then subtracts two
overlays before anything reaches the user:

- **inline suppressions** — ``# repro: allow(<rule>[, <rule>...])``
  comments, optionally followed by ``: reason``. A suppression on a code
  line covers that line; a suppression on a standalone comment line
  covers the next code line (for statements too long to share a line
  with their justification). ``allow(*)`` covers every rule.
- **the baseline** — a committed JSON file of grandfathered findings
  keyed by ``(rule, path, stripped source line)`` with a count, so
  line-number drift does not invalidate entries but *new* occurrences of
  the same pattern still fail.

Comments are read with :mod:`tokenize`, not a regex over raw lines, so
string literals that merely *contain* the marker text never suppress
anything.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([*\w\-, ]+?)\s*\)(?::.*)?$"
)

BASELINE_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # posix-style, as scanned (relative to the scan root)
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""  # stripped source line, the stable part of identity

    @property
    def baseline_key(self) -> str:
        """Identity that survives line-number drift: rule + path + code."""
        return f"{self.rule}::{self.path}::{self.snippet}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }


class Suppressions:
    """Per-file map of which rules are allowed on which lines."""

    def __init__(self, allowed: dict[int, set[str]]):
        self._allowed = allowed

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        allowed: dict[int, set[str]] = {}
        # line -> True when any non-comment, non-NL token lives there
        code_lines: set[int] = set()
        comments: list[tuple[int, str, bool]] = []  # (line, text, standalone)
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return cls({})
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                line = tok.start[0]
                standalone = line not in code_lines
                comments.append((line, tok.string, standalone))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                for ln in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(ln)
        for line, text, standalone in comments:
            match = SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            if standalone:
                # Cover the next code line below the comment.
                target = line + 1
                while target not in code_lines and target <= line + 50:
                    target += 1
            else:
                target = line
            allowed.setdefault(target, set()).update(rules)
        return cls(allowed)

    def covers(self, line: int, rule: str) -> bool:
        rules = self._allowed.get(line)
        return rules is not None and (rule in rules or "*" in rules)


@dataclass
class Baseline:
    """Grandfathered finding counts, keyed by :attr:`Finding.baseline_key`."""

    counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        counts = data.get("findings", {})
        if not all(
            isinstance(k, str) and isinstance(v, int) for k, v in counts.items()
        ):
            raise ValueError(f"malformed baseline file {path}")
        return cls(dict(counts))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
        return cls(counts)

    def dump(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered) against the baseline budget."""
        budget = dict(self.counts)
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            if budget.get(finding.baseline_key, 0) > 0:
                budget[finding.baseline_key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old
