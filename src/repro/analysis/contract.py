"""Pass 4 — HTTP error contract: errors.py statuses vs http.py mapping.

:mod:`repro.api.errors` is the single validation vocabulary: every
error type carries ``code`` and ``http_status``, and
:mod:`repro.serving.http` maps statuses to OpenAI-style ``error.type``
strings in ``_error_type_for``. The two files can drift silently — a
new error class with a fresh status falls through to the mapper's
default branch and ships with the wrong ``type``. This pass pins them
together:

- ``unmapped-error-status``: an error class carries an ``http_status``
  the HTTP mapper never names explicitly (literal equality/membership
  comparison, or a ``>=``/``>`` range arm).
- ``unknown-contract-status``: the mapper explicitly names a status no
  error class carries — dead mapping arms that suggest a deleted or
  renamed error type.
- ``error-missing-code``: a class carrying ``http_status`` without a
  (possibly inherited) ``code`` slug — it would serialize as the
  generic ``invalid_request_error``.
- ``duplicate-error-code``: two classes sharing one ``code`` slug;
  clients branching on ``error.code`` cannot tell them apart.

``http_status`` is read from class-level assignments *and* from
``self.http_status = ...`` in ``__init__`` (conditional statuses like
DeadlineExceededError's 408/504 contribute every int literal in the
assigned expression). Inheritance inside the module is resolved.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutil import Module, int_literals
from repro.analysis.findings import Finding

RULES = (
    "unmapped-error-status",
    "unknown-contract-status",
    "error-missing-code",
    "duplicate-error-code",
)

MAPPER_NAME = "_error_type_for"


@dataclass
class ErrorClass:
    name: str
    node: ast.ClassDef
    bases: list[str]
    own_statuses: set[int] = field(default_factory=set)
    own_code: str | None = None
    statuses: set[int] = field(default_factory=set)  # after inheritance
    code: str | None = None


def collect_error_classes(module: Module) -> list[ErrorClass]:
    classes: dict[str, ErrorClass] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        info = ErrorClass(
            name=node.name,
            node=node,
            bases=[b.id for b in node.bases if isinstance(b, ast.Name)],
        )
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if target.id == "http_status":
                        info.own_statuses.update(int_literals(stmt.value))
                    elif target.id == "code" and isinstance(
                        stmt.value, ast.Constant
                    ):
                        info.own_code = str(stmt.value.value)
            elif (
                isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ):
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Attribute)
                        and sub.targets[0].attr == "http_status"
                        and isinstance(sub.targets[0].value, ast.Name)
                        and sub.targets[0].value.id == "self"
                    ):
                        info.own_statuses.update(int_literals(sub.value))
        classes[node.name] = info

    def resolve(info: ErrorClass, seen: frozenset[str]) -> tuple[set[int], str | None]:
        statuses = set(info.own_statuses)
        code = info.own_code
        for base in info.bases:
            parent = classes.get(base)
            if parent is None or base in seen:
                continue
            p_statuses, p_code = resolve(parent, seen | {base})
            if not statuses:
                statuses = set(p_statuses)
            if code is None:
                code = p_code
        return statuses, code

    result = []
    for info in classes.values():
        info.statuses, info.code = resolve(info, frozenset({info.name}))
        if info.statuses:
            result.append(info)
    return result


@dataclass
class MapperSurface:
    """Statuses the HTTP mapper names, split exact vs range-covered."""

    exact: set[int] = field(default_factory=set)
    exact_nodes: dict[int, ast.AST] = field(default_factory=dict)
    range_floors: set[int] = field(default_factory=set)

    def covers(self, status: int) -> bool:
        return status in self.exact or any(
            status >= floor for floor in self.range_floors
        )


def collect_mapper(module: Module) -> tuple[MapperSurface | None, ast.AST | None]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == MAPPER_NAME
        ):
            surface = MapperSurface()
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Compare) or len(sub.ops) != 1:
                    continue
                op = sub.ops[0]
                comparator = sub.comparators[0]
                if isinstance(op, ast.Eq):
                    for lit in int_literals(comparator):
                        surface.exact.add(lit)
                        surface.exact_nodes.setdefault(lit, sub)
                elif isinstance(op, ast.In):
                    for lit in int_literals(comparator):
                        surface.exact.add(lit)
                        surface.exact_nodes.setdefault(lit, sub)
                elif isinstance(op, (ast.GtE, ast.Gt)):
                    for lit in int_literals(comparator):
                        surface.range_floors.add(
                            lit if isinstance(op, ast.GtE) else lit + 1
                        )
            return surface, node
    return None, None


def check_contract(errors: Module, http: Module) -> list[Finding]:
    findings: list[Finding] = []
    classes = collect_error_classes(errors)
    surface, mapper_node = collect_mapper(http)
    if surface is None:
        findings.append(
            Finding(
                path=http.path,
                line=1,
                col=1,
                rule="unmapped-error-status",
                message=(
                    f"no {MAPPER_NAME}() mapper found in {http.path}; the "
                    "HTTP layer cannot type its error responses"
                ),
                snippet="",
            )
        )
        return findings

    carried: set[int] = set()
    codes: dict[str, str] = {}
    for info in classes:
        carried.update(info.statuses)
        for status in sorted(info.statuses):
            if not surface.covers(status):
                findings.append(
                    errors.finding(
                        info.node,
                        "unmapped-error-status",
                        f"{info.name} carries http_status {status} but "
                        f"{http.path}::{MAPPER_NAME} never maps it; the "
                        "response would ship a default error type",
                    )
                )
        if info.code is None:
            findings.append(
                errors.finding(
                    info.node,
                    "error-missing-code",
                    f"{info.name} carries http_status but no code slug; "
                    "clients cannot branch on error.code",
                )
            )
        elif info.own_code is not None:
            if info.own_code in codes:
                findings.append(
                    errors.finding(
                        info.node,
                        "duplicate-error-code",
                        f"code {info.own_code!r} on {info.name} is already "
                        f"used by {codes[info.own_code]}",
                    )
                )
            else:
                codes[info.own_code] = info.name

    for status in sorted(surface.exact):
        if status not in carried:
            node = surface.exact_nodes[status]
            findings.append(
                http.finding(
                    node,
                    "unknown-contract-status",
                    f"{MAPPER_NAME} maps status {status} but no error type "
                    f"in {errors.path} carries it; dead mapping arm",
                )
            )
    return sorted(findings)
