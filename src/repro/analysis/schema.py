"""Pass 5 — HTTP schema lint: the wire shapes http.py actually speaks.

The HTTP frontend promises an OpenAI-compatible surface, which drifts
in two directions the type system cannot see:

- **request side** — ``parse_completion_body`` reads fields out of the
  JSON body while ``COMPLETION_REQUEST_FIELDS`` is the allowlist the
  unknown-field rejection enforces. A field read but not allowlisted
  can never arrive (the 400 fires first); an allowlisted field never
  read is accepted and silently ignored. Both are schema drift.
- **response side** — the dict literals the endpoints serialize are
  the de-facto response schema. Their key sets are pinned against the
  committed table ``http_schema.json`` (same grandfathering model as
  the findings baseline: change the wire shape, change the table, and
  the diff shows up in review).

Rules:

- ``unknown-fields-accepted``: the parser never checks the body
  against the allowlist (or the allowlist is missing) — unknown
  fields would be silently dropped.
- ``schema-field-unlisted``: the parser reads a body field the
  allowlist omits; clients sending it are rejected before parse.
- ``schema-field-unread``: the allowlist names a field the parser
  never reads; it is accepted and ignored.
- ``schema-response-drift``: a serialized response shape's key set
  does not match the committed table (extra, missing, or an object
  kind absent from either side).

Response shapes are discovered structurally: every dict literal with a
constant ``"object"`` tag contributes its keys to that kind (unioned
across the streaming and non-streaming paths), and the nested
``choices`` / ``usage`` / ``error`` payloads are tracked as their own
kinds.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.astutil import Module, mentions_name
from repro.analysis.findings import Finding

RULES = (
    "unknown-fields-accepted",
    "schema-field-unlisted",
    "schema-field-unread",
    "schema-response-drift",
)

ALLOWLIST_NAME = "COMPLETION_REQUEST_FIELDS"
PARSER_NAME = "parse_completion_body"
BODY_ARG = "body"

DEFAULT_TABLE = Path(__file__).resolve().parent / "http_schema.json"
TABLE_VERSION = 1

# Dict keys whose (nested) values are response shapes of their own.
_NESTED_KINDS = {"usage": "usage", "error": "error"}
_NESTED_LIST_KINDS = {"choices": "choice"}


def load_table(path: Path = DEFAULT_TABLE) -> dict[str, set[str]] | None:
    """The committed kind -> key-set table, or None when unusable."""
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if data.get("version") != TABLE_VERSION:
        return None
    objects = data.get("objects")
    if not isinstance(objects, dict):
        return None
    table: dict[str, set[str]] = {}
    for kind, keys in objects.items():
        if not isinstance(keys, list) or not all(
            isinstance(k, str) for k in keys
        ):
            return None
        table[str(kind)] = set(keys)
    return table


def _str_constants(node: ast.AST) -> set[str]:
    return {
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    }


def collect_allowlist(
    module: Module,
) -> tuple[set[str] | None, ast.AST | None]:
    """The ``COMPLETION_REQUEST_FIELDS`` literal's members, if assigned."""
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == ALLOWLIST_NAME
        ):
            return _str_constants(node.value), node
    return None, None


def collect_read_fields(
    parser: ast.FunctionDef,
) -> dict[str, ast.AST]:
    """Body fields the parser reads: ``body.get(...)`` / ``_field(body, ...)``."""
    fields: dict[str, ast.AST] = {}

    def record(name_node: ast.AST) -> None:
        if isinstance(name_node, ast.Constant) and isinstance(
            name_node.value, str
        ):
            fields.setdefault(name_node.value, name_node)

    for node in ast.walk(parser):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and isinstance(func.value, ast.Name)
            and func.value.id == BODY_ARG
        ):
            record(node.args[0])
        elif (
            isinstance(func, ast.Name)
            and func.id == "_field"
            and len(node.args) >= 2
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == BODY_ARG
        ):
            record(node.args[1])
    return fields


def collect_response_shapes(
    module: Module,
) -> dict[str, tuple[set[str], ast.AST]]:
    """Union of serialized keys per response-object kind, with an anchor."""
    shapes: dict[str, tuple[set[str], ast.AST]] = {}

    def add(kind: str, keys: set[str], node: ast.AST) -> None:
        if kind in shapes:
            shapes[kind][0].update(keys)
        else:
            shapes[kind] = (set(keys), node)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Dict):
            continue
        keys: dict[str, ast.AST] = {}
        for key, value in zip(node.keys, node.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys[key.value] = value
        tag = keys.get("object")
        if isinstance(tag, ast.Constant) and isinstance(tag.value, str):
            add(tag.value, set(keys), node)
        for name, kind in _NESTED_KINDS.items():
            value = keys.get(name)
            if isinstance(value, ast.Dict):
                add(kind, _dict_keys(value), value)
        for name, kind in _NESTED_LIST_KINDS.items():
            value = keys.get(name)
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Dict):
                        add(kind, _dict_keys(element), element)
    return shapes


def _dict_keys(node: ast.Dict) -> set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _find_parser(module: Module) -> ast.FunctionDef | None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef) and node.name == PARSER_NAME:
            return node
    return None


def check_schema(
    http: Module, table_path: Path = DEFAULT_TABLE
) -> list[Finding]:
    findings: list[Finding] = []
    allowlist, allow_node = collect_allowlist(http)
    parser = _find_parser(http)

    if parser is None or allowlist is None or not mentions_name(
        parser, ALLOWLIST_NAME
    ):
        findings.append(
            Finding(
                path=http.path,
                line=getattr(parser, "lineno", 1),
                col=1,
                rule="unknown-fields-accepted",
                message=(
                    f"{PARSER_NAME} does not reject unknown body fields "
                    f"against {ALLOWLIST_NAME}; client typos would be "
                    "silently dropped"
                ),
                snippet=http.snippet(getattr(parser, "lineno", 1)),
            )
        )

    if parser is not None and allowlist is not None:
        read = collect_read_fields(parser)
        for name in sorted(set(read) - allowlist):
            findings.append(
                http.finding(
                    read[name],
                    "schema-field-unlisted",
                    f"{PARSER_NAME} reads body field {name!r} but "
                    f"{ALLOWLIST_NAME} omits it; clients sending it are "
                    "rejected before the parser ever sees it",
                )
            )
        for name in sorted(allowlist - set(read)):
            findings.append(
                http.finding(
                    allow_node,
                    "schema-field-unread",
                    f"{ALLOWLIST_NAME} allows body field {name!r} but "
                    f"{PARSER_NAME} never reads it; the field is accepted "
                    "and silently ignored",
                )
            )

    table = load_table(table_path)
    shapes = collect_response_shapes(http)
    if table is None:
        findings.append(
            Finding(
                path=http.path,
                line=1,
                col=1,
                rule="schema-response-drift",
                message=(
                    f"committed schema table {table_path.name} is missing "
                    "or malformed; response shapes cannot be pinned"
                ),
                snippet="",
            )
        )
        return sorted(findings)
    for kind in sorted(set(shapes) - set(table)):
        keys, node = shapes[kind]
        findings.append(
            http.finding(
                node,
                "schema-response-drift",
                f"response object kind {kind!r} (keys: "
                f"{', '.join(sorted(keys))}) is not in the committed "
                "schema table",
            )
        )
    for kind in sorted(set(table) - set(shapes)):
        findings.append(
            Finding(
                path=http.path,
                line=1,
                col=1,
                rule="schema-response-drift",
                message=(
                    f"committed schema table pins object kind {kind!r} "
                    "but the HTTP layer never serializes it"
                ),
                snippet="",
            )
        )
    for kind in sorted(set(shapes) & set(table)):
        keys, node = shapes[kind]
        missing = sorted(table[kind] - keys)
        extra = sorted(keys - table[kind])
        if missing or extra:
            detail = []
            if missing:
                detail.append(f"missing {', '.join(missing)}")
            if extra:
                detail.append(f"extra {', '.join(extra)}")
            findings.append(
                http.finding(
                    node,
                    "schema-response-drift",
                    f"response object {kind!r} drifted from the committed "
                    f"schema table ({'; '.join(detail)})",
                )
            )
    return sorted(findings)
