"""Pass 1 — determinism: wall clocks, unseeded RNGs, set iteration, matmuls.

The reproduction's north star is bit-identical token streams across
batched/sequential/speculative/cluster modes. Four source patterns are
the recurring ways that property quietly dies:

- ``wall-clock``: ``time.time()``/``monotonic()``/``datetime.now()``
  reads inside the deterministic core. The serving stack runs on a
  *virtual* step clock; real-time reads make schedules (and therefore
  preemption victims, eviction order, streams) depend on host load.
  ``time.sleep`` is deliberately not flagged — pacing dwell changes
  wall latency, never state.
- ``unseeded-rng``: ``np.random.default_rng()`` with no seed, the
  module-level ``np.random.*`` convenience samplers, and stdlib
  ``random.*`` module functions. All randomness must flow from an
  explicit seeded generator handed down by config.
- ``set-iteration``: ``for``/comprehension iteration directly over a
  set expression. Python set order is salted per process; any schedule
  or selection derived from it diverges across runs and workers.
  Wrapping in ``sorted(...)`` is the blessed fix and is not flagged.
- ``row-fused-matmul`` (``models/`` only): any ``@`` / ``np.matmul`` /
  ``np.dot`` outside the blessed :func:`repro.tensor.ops.linear_rows`
  helper. Row-fused ``(n, d) @ W.T`` is *not* bit-stable under BLAS
  (reduction order changes with the number of rows); per-row GEMM
  slices are. Sites that are shape-stable by construction (per-head
  scores, >=3-D batched matmuls, 1-row projections) carry explicit
  ``# repro: allow(row-fused-matmul)`` justifications.

Scope: files whose path contains a ``serving``, ``kvcache``, ``models``
or ``retrieval`` segment; ``experiments`` and ``benchmarks`` segments
are allowlisted wholesale (wall-clock timing is their entire point).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import ImportMap, Module, call_name, dotted_name
from repro.analysis.findings import Finding

RULES = ("wall-clock", "unseeded-rng", "set-iteration", "row-fused-matmul")

DETERMINISTIC_SEGMENTS = frozenset(
    {"serving", "kvcache", "models", "retrieval"}
)
ALLOWLISTED_SEGMENTS = frozenset({"experiments", "benchmarks", "tests"})
MATMUL_SEGMENTS = frozenset({"models"})

WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

# Module-level convenience samplers: global hidden state, never seedable
# per call site.
NP_RANDOM_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "choice",
        "shuffle", "permutation", "normal", "uniform", "standard_normal",
        "beta", "binomial", "exponential", "poisson", "sample", "bytes",
    }
)
STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "normalvariate", "gauss", "getrandbits",
        "expovariate", "paretovariate", "triangular", "betavariate",
    }
)


def applies_to(segments: tuple[str, ...]) -> bool:
    if ALLOWLISTED_SEGMENTS & set(segments):
        return False
    return bool(DETERMINISTIC_SEGMENTS & set(segments))


def _is_set_expr(node: ast.AST, local_sets: set[str]) -> bool:
    """Syntactic set detection: literals, set()/frozenset(), set algebra."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        # set(...).difference(...) / .union(...) / .intersection(...)
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "difference", "union", "intersection", "symmetric_difference",
        ):
            return _is_set_expr(node.func.value, local_sets)
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
    ):
        return _is_set_expr(node.left, local_sets) or _is_set_expr(
            node.right, local_sets
        )
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, module: Module, check_matmul: bool):
        self.module = module
        self.imports = ImportMap(module.tree)
        self.check_matmul = check_matmul
        self.findings: list[Finding] = []
        # Function-local names assigned a syntactic set expression.
        self._local_sets: list[set[str]] = [set()]

    # ---- scope tracking --------------------------------------------------------

    def _visit_function(self, node) -> None:
        self._local_sets.append(set())
        self.generic_visit(node)
        self._local_sets.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self._local_sets[-1]):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._local_sets[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._local_sets[-1].discard(target.id)
        self.generic_visit(node)

    # ---- wall clock + rng ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(call_name(node))
        if resolved in WALL_CLOCK_CALLS:
            self.findings.append(
                self.module.finding(
                    node,
                    "wall-clock",
                    f"wall-clock read {resolved}() in deterministic code; "
                    "use the virtual step clock (server.clock) or suppress "
                    "with a justification",
                )
            )
        else:
            self._check_rng(node, resolved)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, resolved: str | None) -> None:
        if resolved is None:
            return
        if resolved.endswith(".default_rng") or resolved == "default_rng":
            if not node.args and not node.keywords:
                self.findings.append(
                    self.module.finding(
                        node,
                        "unseeded-rng",
                        "default_rng() without a seed is entropy-seeded; "
                        "thread an explicit seed from config",
                    )
                )
            return
        parts = resolved.split(".")
        if (
            len(parts) >= 3
            and parts[-3] == "numpy"
            and parts[-2] == "random"
            and parts[-1] in NP_RANDOM_FUNCS
        ) or (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in STDLIB_RANDOM_FUNCS
        ):
            self.findings.append(
                self.module.finding(
                    node,
                    "unseeded-rng",
                    f"{resolved}() draws from hidden global RNG state; "
                    "use a seeded np.random.Generator",
                )
            )
        elif resolved in ("random.Random", "numpy.random.RandomState"):
            if not node.args and not node.keywords:
                self.findings.append(
                    self.module.finding(
                        node,
                        "unseeded-rng",
                        f"{resolved}() constructed without a seed",
                    )
                )

    # ---- set iteration ---------------------------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node, self._local_sets[-1]):
            self.findings.append(
                self.module.finding(
                    iter_node,
                    "set-iteration",
                    "iteration over a set: order is hash-salted per process; "
                    "wrap in sorted(...) before it can feed scheduling or "
                    "selection order",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_holder(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_holder
    visit_GeneratorExp = _visit_comprehension_holder
    visit_DictComp = _visit_comprehension_holder

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is fine (result is a set either way);
        # only ordered collections built from sets are order-sensitive.
        self.generic_visit(node)

    # ---- matmul ----------------------------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.check_matmul and isinstance(node.op, ast.MatMult):
            self.findings.append(
                self.module.finding(
                    node,
                    "row-fused-matmul",
                    "bare @ in models/: row-fused GEMMs are not bit-stable "
                    "under BLAS; route through tensor.ops.linear_rows or "
                    "justify with repro: allow(row-fused-matmul)",
                )
            )
        self.generic_visit(node)


def check_module(module: Module) -> list[Finding]:
    segments = set(module.segments)
    if ALLOWLISTED_SEGMENTS & segments:
        return []
    in_scope = bool(DETERMINISTIC_SEGMENTS & segments)
    if not in_scope:
        return []
    check_matmul = bool(MATMUL_SEGMENTS & segments)
    visitor = _DeterminismVisitor(module, check_matmul)
    visitor.visit(module.tree)
    findings = visitor.findings
    if check_matmul:
        findings += _matmul_calls(module)
    return sorted(findings)


def _matmul_calls(module: Module) -> list[Finding]:
    imports = ImportMap(module.tree)
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = imports.resolve(dotted_name(node.func)) or ""
        if resolved in ("numpy.matmul", "numpy.dot") or resolved.endswith(
            (".matmul", ".dot")
        ) and resolved.split(".")[0] in ("numpy", "np"):
            findings.append(
                module.finding(
                    node,
                    "row-fused-matmul",
                    f"{resolved}() in models/: route through "
                    "tensor.ops.linear_rows or justify with "
                    "repro: allow(row-fused-matmul)",
                )
            )
    return findings
