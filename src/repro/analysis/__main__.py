"""CLI for the invariant linter: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (after suppressions and baseline), 1 findings or
unparseable files, 2 usage errors. ``--write-baseline`` regenerates the
committed grandfather file from the current tree instead of reporting.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.findings import Baseline
from repro.analysis.runner import ALL_RULES, DEFAULT_BASELINE, RULE_DOCS, run


def _default_paths() -> list[Path]:
    # The repro package itself: src/repro, wherever it is installed.
    return [Path(__file__).resolve().parent.parent]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static invariant linter: determinism, pool resource pairing, "
            "worker wire protocol, HTTP error contract, HTTP schema."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="grandfathered-findings file (default: the committed baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report grandfathered findings too",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule subset to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule:24s} {RULE_DOCS.get(rule, '')}")
        return 0

    rules: set[str] | None = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rules - set(ALL_RULES)
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    paths = args.paths or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"no such path(s): {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    if args.write_baseline:
        report = run(paths, rules=rules, baseline=None)
        Baseline.from_findings(report.findings).dump(args.baseline)
        print(
            f"wrote {len(report.findings)} grandfathered finding(s) to "
            f"{args.baseline}"
        )
        return 0

    baseline = None if args.no_baseline else Baseline.load(args.baseline)
    report = run(paths, rules=rules, baseline=baseline)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
