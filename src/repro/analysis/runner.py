"""Orchestrates the five passes over a file tree and applies overlays.

The flow: discover ``*.py`` files, parse each once into a
:class:`~repro.analysis.astutil.Module`, run the per-file passes
(determinism, resource pairing), locate the cross-file pass inputs by
path suffix (worker/executor for the protocol pass, errors/http for
the contract pass, http alone for the schema pass), then subtract
inline suppressions and the committed baseline. :func:`run` returns a :class:`Report`; the CLI in
:mod:`repro.analysis.__main__` turns it into text or JSON and an exit
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import contract, determinism, protocol, resources, schema
from repro.analysis.astutil import Module
from repro.analysis.findings import Baseline, Finding

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

WORKER_SUFFIX = ("serving", "engine", "worker.py")
ISSUER_SUFFIXES = (("serving", "engine", "executor.py"),)
ERRORS_SUFFIX = ("api", "errors.py")
HTTP_SUFFIX = ("serving", "http.py")

ALL_RULES: tuple[str, ...] = (
    determinism.RULES
    + resources.RULES
    + protocol.RULES
    + contract.RULES
    + schema.RULES
)

RULE_DOCS: dict[str, str] = {
    "wall-clock": "wall-clock read in deterministic code",
    "unseeded-rng": "unseeded / global-state randomness",
    "set-iteration": "iteration over hash-salted set order",
    "row-fused-matmul": "matmul in models/ outside tensor.ops.linear_rows",
    "spec-reservation-leak": "reserve_spec not paired on every path",
    "free-in-try-body": "pool free skippable by an exception",
    "unknown-op": "issued worker op with no handler",
    "unused-op": "worker op handler never issued",
    "op-arity-mismatch": "issued args cannot satisfy the handler",
    "unmapped-error-status": "error http_status the HTTP mapper ignores",
    "unknown-contract-status": "mapped status no error type carries",
    "error-missing-code": "http_status without a code slug",
    "duplicate-error-code": "two error types share a code slug",
    "unknown-fields-accepted": "completions parser skips the allowlist check",
    "schema-field-unlisted": "parsed body field the allowlist omits",
    "schema-field-unread": "allowlisted body field never parsed",
    "schema-response-drift": "response keys vs the committed schema table",
}


@dataclass
class Report:
    findings: list[Finding] = field(default_factory=list)  # actionable
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)  # unparseable files
    n_files: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.errors else 0

    def to_json(self) -> dict:
        return {
            "findings": [f.to_json() for f in self.findings],
            "n_findings": len(self.findings),
            "n_suppressed": len(self.suppressed),
            "n_baselined": len(self.baselined),
            "n_files": self.n_files,
            "errors": self.errors,
            "exit_code": self.exit_code,
        }

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(self.findings)]
        for err in self.errors:
            lines.append(f"error: {err}")
        lines.append(
            f"{len(self.findings)} finding(s) in {self.n_files} file(s) "
            f"({len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined)"
        )
        return "\n".join(lines)


def discover(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while preserving order.
    seen: set[Path] = set()
    unique = []
    for f in files:
        resolved = f.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(f)
    return unique


def _display_path(path: Path, roots: list[Path]) -> str:
    resolved = path.resolve()
    for root in roots:
        try:
            return resolved.relative_to(root.resolve().parent).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def _endswith(module: Module, suffix: tuple[str, ...]) -> bool:
    return module.segments[-len(suffix):] == suffix


def run(
    paths: list[Path],
    rules: set[str] | None = None,
    baseline: Baseline | None = None,
) -> Report:
    """Run every pass over ``paths`` and apply suppression + baseline."""
    report = Report()
    modules: list[Module] = []
    roots = [p for p in paths if p.is_dir()]
    for path in discover(paths):
        display = _display_path(path, roots)
        try:
            modules.append(Module.parse(path, display))
        except (SyntaxError, UnicodeDecodeError) as err:
            report.errors.append(f"{display}: {err}")
    report.n_files = len(modules)

    raw: list[Finding] = []
    for module in modules:
        raw.extend(determinism.check_module(module))
        raw.extend(resources.check_module(module))

    workers = [m for m in modules if _endswith(m, WORKER_SUFFIX)]
    issuers = [
        m for m in modules
        if any(_endswith(m, s) for s in ISSUER_SUFFIXES)
    ]
    for worker in workers:
        raw.extend(protocol.check_protocol(worker, issuers))

    errors_mods = [m for m in modules if _endswith(m, ERRORS_SUFFIX)]
    http_mods = [m for m in modules if _endswith(m, HTTP_SUFFIX)]
    for errors_mod in errors_mods:
        for http_mod in http_mods:
            raw.extend(contract.check_contract(errors_mod, http_mod))
    for http_mod in http_mods:
        raw.extend(schema.check_schema(http_mod))

    if rules is not None:
        raw = [f for f in raw if f.rule in rules]

    by_path = {m.path: m for m in modules}
    unsuppressed: list[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.suppressions.covers(
            finding.line, finding.rule
        ):
            report.suppressed.append(finding)
        else:
            unsuppressed.append(finding)

    baseline = baseline or Baseline()
    report.findings, report.baselined = baseline.split(sorted(unsuppressed))
    return report
