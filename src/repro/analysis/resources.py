"""Pass 2 — resource pairing: spec reservations and exception-safe frees.

Two rules, both about pool blocks escaping their owner:

- ``spec-reservation-leak``: an intraprocedural CFG walk proving that
  every ``<name> = ...reserve_spec(...)`` reaches a consumer on *all*
  paths out of the function. Consumers are ``promote_spec`` /
  ``release_spec`` calls taking the name (or a slice of it), or an
  *escape* — the name returned, yielded, stored into an attribute /
  subscript, or passed whole to a non-builtin call (ownership moves to
  the callee). Pure reads (``len(name)``, ``name[i]``, iteration,
  membership) do not discharge the obligation: a path that only ever
  *measures* the reservation has still leaked it.

  The walk is a bounded path interpretation of the statement list:
  branches fork, loop bodies run zero-or-once, ``break``/``continue``
  propagate, ``try`` contributes the body path plus one path per
  handler (handler paths restart from the state at try entry — the
  conservative reading when the raise point is unknown), and
  ``finally`` runs on every path.

- ``free-in-try-body``: in ``serving/`` a pool free (``free_table`` /
  ``release`` / ``release_spec``) must not sit in a ``try`` body that
  has except handlers, unless the attached ``finally`` frees too — an
  exception raised before the free skips it and the blocks leak. Frees
  belong in ``finally``/except paths or outside the ``try`` entirely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from repro.analysis.astutil import Module, attr_tail, mentions_name
from repro.analysis.findings import Finding

RULES = ("spec-reservation-leak", "free-in-try-body")

RESERVE_FUNCS = frozenset({"reserve_spec"})
CONSUME_FUNCS = frozenset({"promote_spec", "release_spec"})
FREE_FUNCS = frozenset({"free_table", "release", "release_spec"})
FREE_SCOPE_SEGMENTS = frozenset({"serving"})

# Builtins that read a value without taking ownership of it.
PURE_READERS = frozenset(
    {
        "len", "bool", "list", "tuple", "sorted", "reversed", "enumerate",
        "sum", "min", "max", "any", "all", "str", "repr", "print", "iter",
        "next", "set", "frozenset", "zip", "map", "filter", "id", "type",
        "isinstance", "range",
    }
)

# The subset whose result carries no block ids at all: returning or
# storing these is still just a *measurement* of the reservation, so it
# never discharges the obligation (``return len(reserved)`` leaks).
SCALAR_READERS = frozenset(
    {
        "len", "bool", "sum", "any", "all", "str", "repr", "print", "id",
        "type", "isinstance",
    }
)


def _exposes_name(expr: ast.AST | None, name: str) -> bool:
    """Does ``expr``'s *value* carry the reservation (not just measure it)?"""
    if expr is None:
        return False
    if isinstance(expr, ast.Name):
        return expr.id == name
    if isinstance(expr, ast.Call) and attr_tail(expr.func) in SCALAR_READERS:
        return False
    return any(_exposes_name(c, name) for c in ast.iter_child_nodes(expr))


# ---- spec-reservation-leak ---------------------------------------------------


@dataclass(frozen=True)
class _State:
    """Path state: does the obligation exist, and was it discharged?"""

    live: bool = False  # reserve_spec executed on this path
    consumed: bool = False


@dataclass(frozen=True)
class _Exit:
    kind: str  # "fall" | "return" | "break" | "continue" | "raise"
    state: _State


def _is_reserve_assign(stmt: ast.stmt) -> str | None:
    """The bound name when ``stmt`` is ``<name> = ...reserve_spec(...)``."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = stmt.value
    if isinstance(value, ast.Call) and attr_tail(value.func) in RESERVE_FUNCS:
        return target.id
    return None


def _name_passed_whole(call: ast.Call, name: str) -> bool:
    """The tracked name (or a slice/star of it) appears as a direct arg."""

    def is_name_ish(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id == name
        if isinstance(node, ast.Subscript):
            # Only slices of the name count as "the reservation"; an
            # index read (name[0]) is a block id, but passing even one
            # reserved id onward moves ownership, so keep both.
            return is_name_ish(node.value)
        if isinstance(node, ast.Starred):
            return is_name_ish(node.value)
        return False

    return any(is_name_ish(arg) for arg in call.args) or any(
        is_name_ish(kw.value) for kw in call.keywords
    )


def _classify_use(stmt: ast.stmt, name: str) -> str:
    """'consume' | 'escape' | 'kill' | 'none' for one statement."""
    if not mentions_name(stmt, name):
        # Rebinding the name to something unrelated kills the tracked
        # alias: the reservation is no longer reachable through it, and
        # that is itself a leak we cannot see past — treat as kill.
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        ):
            return "kill"
        return "none"
    result = "none"
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            tail = attr_tail(node.func)
            if tail in CONSUME_FUNCS and _name_passed_whole(node, name):
                return "consume"
            if (
                tail not in PURE_READERS
                and tail not in RESERVE_FUNCS
                and _name_passed_whole(node, name)
            ):
                result = "escape"
    if isinstance(stmt, (ast.Return, ast.Expr)) and isinstance(
        getattr(stmt, "value", None), (ast.expr,)
    ):
        value = stmt.value
        if isinstance(stmt, ast.Return) and _exposes_name(value, name):
            return "escape"
        if isinstance(value, (ast.Yield, ast.YieldFrom)) and _exposes_name(
            value, name
        ):
            return "escape"
    if isinstance(stmt, ast.Assign):
        if _exposes_name(stmt.value, name):
            targets_self = all(
                isinstance(t, ast.Name) and t.id == name for t in stmt.targets
            )
            if not targets_self:
                # Aliased or stored somewhere persistent; tracking ends.
                return "escape"
        for target in stmt.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) and (
                mentions_name(target, name)
            ):
                return "escape"
    return result


class _PathWalker:
    """Bounded all-paths walk of one function body for one obligation."""

    def __init__(self, reserve_stmt: ast.stmt, name: str):
        self.reserve_stmt = reserve_stmt
        self.name = name
        self.leaky = False

    def walk(self, body: list[ast.stmt]) -> None:
        for exit_ in self._run_block(body, _State()):
            if exit_.kind in ("fall", "return") and (
                exit_.state.live and not exit_.state.consumed
            ):
                self.leaky = True

    # The walker returns the set of exits from a block given an entry
    # state. Path count is bounded by deduplication at every join: the
    # state space is 4 values, so sets stay tiny even in big functions.

    def _run_block(self, body: list[ast.stmt], state: _State) -> set[_Exit]:
        states = {state}
        exits: set[_Exit] = set()
        for stmt in body:
            next_states: set[_State] = set()
            for st in states:
                for exit_ in self._run_stmt(stmt, st):
                    if exit_.kind == "fall":
                        next_states.add(exit_.state)
                    else:
                        exits.add(exit_)
            states = next_states
            if not states:
                return exits
        exits.update(_Exit("fall", st) for st in states)
        return exits

    def _run_stmt(self, stmt: ast.stmt, state: _State) -> set[_Exit]:
        if stmt is self.reserve_stmt:
            return {_Exit("fall", _State(live=True, consumed=False))}

        if state.live and not state.consumed:
            use = _classify_use(stmt, self.name)
            if use in ("consume", "escape"):
                state = replace(state, consumed=True)
            elif use == "kill":
                # Alias destroyed without consumption: leak at this point.
                self.leaky = True
                state = replace(state, consumed=True)

        if isinstance(stmt, ast.Return):
            return {_Exit("return", state)}
        if isinstance(stmt, ast.Raise):
            return {_Exit("raise", state)}
        if isinstance(stmt, ast.Break):
            return {_Exit("break", state)}
        if isinstance(stmt, ast.Continue):
            return {_Exit("continue", state)}

        if isinstance(stmt, ast.If):
            return self._run_block(stmt.body, state) | self._run_block(
                stmt.orelse, state
            )

        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            exits: set[_Exit] = {_Exit("fall", state)}  # zero iterations
            for exit_ in self._run_block(stmt.body, state):
                if exit_.kind in ("break", "continue", "fall"):
                    exits.add(_Exit("fall", exit_.state))
                else:
                    exits.add(exit_)
            for exit_ in self._run_block(stmt.orelse, state):
                exits.add(exit_)
            return exits

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._run_block(stmt.body, state)

        if isinstance(stmt, ast.Try):
            exits = set()
            # Normal path: body (+ else), then finally.
            for exit_ in self._run_block(stmt.body, state):
                if exit_.kind == "fall":
                    for else_exit in self._run_block(stmt.orelse, exit_.state):
                        exits.update(self._through_finally(stmt, else_exit))
                else:
                    exits.update(self._through_finally(stmt, exit_))
            # Handler paths: entered from the state at try entry (the
            # raise point inside the body is unknown; assuming nothing in
            # the body ran is the conservative choice for obligations
            # created before the try).
            for handler in stmt.handlers:
                for exit_ in self._run_block(handler.body, state):
                    exits.update(self._through_finally(stmt, exit_))
            return exits

        return {_Exit("fall", state)}

    def _through_finally(self, stmt: ast.Try, exit_: _Exit) -> set[_Exit]:
        if not stmt.finalbody:
            return {exit_}
        results: set[_Exit] = set()
        for fin_exit in self._run_block(stmt.finalbody, exit_.state):
            if fin_exit.kind == "fall":
                results.add(_Exit(exit_.kind, fin_exit.state))
            else:
                results.add(fin_exit)  # finally overrides the exit
        return results


def _check_function(
    module: Module, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> list[Finding]:
    findings = []
    reserves = [
        (stmt, name)
        for stmt in ast.walk(func)
        if (name := _is_reserve_assign(stmt)) is not None
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for stmt, name in reserves:
        walker = _PathWalker(stmt, name)
        walker.walk(func.body)
        if walker.leaky:
            findings.append(
                module.finding(
                    stmt,
                    "spec-reservation-leak",
                    f"reservation {name!r} from reserve_spec() does not "
                    "reach promote_spec()/release_spec() on every path out "
                    f"of {func.name}(); a rejected draft would leak pool "
                    "blocks",
                )
            )
    return findings


# ---- free-in-try-body --------------------------------------------------------


def _is_free_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and attr_tail(node.func) in FREE_FUNCS


def _block_frees(body: list[ast.stmt]) -> bool:
    return any(_is_free_call(n) for stmt in body for n in ast.walk(stmt))


def _check_frees(module: Module) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try) or not node.handlers:
            continue
        # A free in the try body is fine when the exception path frees
        # too: a freeing finally, or every handler freeing on its own.
        if _block_frees(node.finalbody) or all(
            _block_frees(handler.body) for handler in node.handlers
        ):
            continue
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Try):
                    # Nested trys get their own visit.
                    break
                if _is_free_call(sub):
                    findings.append(
                        module.finding(
                            sub,
                            "free-in-try-body",
                            "pool free inside a try body with except "
                            "handlers: an exception raised earlier in the "
                            "body skips it and leaks blocks — move the free "
                            "to a finally/except path or out of the try",
                        )
                    )
    return findings


def check_module(module: Module) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.extend(_check_function(module, node))
    if FREE_SCOPE_SEGMENTS & set(module.segments):
        findings.extend(_check_frees(module))
    return sorted(findings)
