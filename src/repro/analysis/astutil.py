"""Shared AST helpers: parsing, import-alias resolution, name matching.

The passes all need the same three primitives:

- :class:`Module` — a parsed file plus its source lines and suppression
  map, so passes can attach snippets and the runner can filter.
- :class:`ImportMap` — resolve local names through ``import``/``from``
  aliases to fully-qualified dotted names (``t.monotonic`` with
  ``import time as t`` resolves to ``time.monotonic``), which is what
  the determinism rules match against.
- :func:`dotted_name` / :func:`call_name` — syntactic dotted paths for
  attribute chains and call targets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding, Suppressions


@dataclass
class Module:
    """One parsed source file, ready for the passes."""

    path: str  # posix-style path the findings will carry
    tree: ast.Module
    lines: list[str]
    suppressions: Suppressions

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "Module":
        source = path.read_text()
        return cls.from_source(source, display_path or path.as_posix())

    @classmethod
    def from_source(cls, source: str, display_path: str) -> "Module":
        return cls(
            path=display_path,
            tree=ast.parse(source, filename=display_path),
            lines=source.splitlines(),
            suppressions=Suppressions.parse(source),
        )

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col + 1,
            rule=rule,
            message=message,
            snippet=self.snippet(line),
        )

    @property
    def segments(self) -> tuple[str, ...]:
        return tuple(Path(self.path).parts)


class ImportMap:
    """Local name -> fully-qualified dotted name, from a module's imports."""

    def __init__(self, tree: ast.Module):
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c->a.b.
                    target = alias.name if alias.asname else local
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str | None) -> str | None:
        """Expand the first component through the import aliases."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        expanded = self._aliases.get(head)
        if expanded is None:
            return dotted
        return f"{expanded}.{rest}" if rest else expanded


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    return dotted_name(node.func)


def attr_tail(node: ast.AST) -> str | None:
    """The final attribute/name component (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def mentions_name(node: ast.AST, name: str) -> bool:
    """Whether ``name`` is loaded anywhere inside ``node``."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


def int_literals(node: ast.AST) -> list[int]:
    """Every plain int constant inside ``node`` (bools excluded)."""
    return [
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant)
        and isinstance(sub.value, int)
        and not isinstance(sub.value, bool)
    ]
