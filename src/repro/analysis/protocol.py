"""Pass 3 — worker wire protocol: dispatched ops vs issued ops.

:class:`~repro.serving.engine.worker.WorkerCore` dispatches ``(op,
args)`` commands to ``_op_<name>`` methods; the executor issues them as
string literals through ``handle.call("op", ...)`` / ``_send("op",
(args...))`` / ``conn.send(("op", (args...)))``. Nothing ties the two
sides together at runtime except an ``unknown worker op`` ValueError in
production — this pass ties them together at lint time:

- ``unknown-op``: an op issued somewhere that no ``_op_<name>`` handler
  (or the pipe loop's inline ``shutdown``) dispatches — the exact
  failure deleting a handler produces.
- ``op-arity-mismatch``: an issue site whose positional argument count
  cannot satisfy the handler's signature.
- ``unused-op``: a handler no scanned issuer ever sends — dead
  protocol surface (suppressible for ops addressed to tests or
  external tooling).

Issue-site recognition is syntactic: the op must be a string literal in
one of the three shapes above. Dynamic dispatch (``self._send(op,
args)`` forwarding a variable) is invisible and deliberately ignored —
the protocol's ground truth is the literal vocabulary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.astutil import Module, attr_tail
from repro.analysis.findings import Finding

RULES = ("unknown-op", "unused-op", "op-arity-mismatch")

HANDLER_PREFIX = "_op_"
ISSUER_METHODS = frozenset({"call", "handle"})
SEND_METHODS = frozenset({"_send", "send"})


@dataclass(frozen=True)
class Handler:
    """One ``_op_<name>`` method: its op and positional-arity window."""

    op: str
    min_args: int
    max_args: int | None  # None = *args
    node_line: int

    def accepts(self, n_args: int) -> bool:
        if n_args < self.min_args:
            return False
        return self.max_args is None or n_args <= self.max_args


@dataclass(frozen=True)
class IssueSite:
    op: str
    n_args: int | None  # None when the arg tuple is not a literal
    node: ast.AST


def collect_handlers(module: Module) -> dict[str, Handler]:
    """Every ``_op_*`` method plus inline string-compare dispatch arms."""
    handlers: dict[str, Handler] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith(HANDLER_PREFIX):
                continue
            args = node.args
            positional = [a.arg for a in args.posonlyargs + args.args]
            if positional and positional[0] in ("self", "cls"):
                positional = positional[1:]
            n_defaults = len(args.defaults)
            handlers[node.name[len(HANDLER_PREFIX):]] = Handler(
                op=node.name[len(HANDLER_PREFIX):],
                min_args=len(positional) - n_defaults,
                max_args=None if args.vararg else len(positional),
                node_line=node.lineno,
            )
        elif isinstance(node, ast.Compare):
            # `if op == "shutdown":` — the pipe loop's inline arm.
            if (
                isinstance(node.left, ast.Name)
                and node.left.id == "op"
                and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Eq,))
                and len(node.comparators) == 1
                and isinstance(node.comparators[0], ast.Constant)
                and isinstance(node.comparators[0].value, str)
            ):
                op = node.comparators[0].value
                handlers.setdefault(
                    op, Handler(op=op, min_args=0, max_args=0,
                                node_line=node.lineno)
                )
    return handlers


def collect_issue_sites(module: Module) -> list[IssueSite]:
    sites: list[IssueSite] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        tail = attr_tail(node.func)
        if tail in ISSUER_METHODS:
            # handle.call("op", a, b) / core.handle("op", (a, b))
            if node.args and _str_const(node.args[0]) is not None:
                op = _str_const(node.args[0])
                if tail == "handle":
                    # handle(op, args_tuple)
                    n = _tuple_len(node.args[1]) if len(node.args) > 1 else 0
                else:
                    n = len(node.args) - 1
                sites.append(IssueSite(op=op, n_args=n, node=node))
        elif tail in SEND_METHODS and node.args:
            first = node.args[0]
            if _str_const(first) is not None and len(node.args) >= 2:
                # self._send("op", (a, b))
                sites.append(
                    IssueSite(
                        op=_str_const(first),
                        n_args=_tuple_len(node.args[1]),
                        node=node,
                    )
                )
            elif isinstance(first, ast.Tuple) and len(first.elts) == 2:
                # conn.send(("op", (a, b)))
                op = _str_const(first.elts[0])
                if op is not None:
                    sites.append(
                        IssueSite(
                            op=op,
                            n_args=_tuple_len(first.elts[1]),
                            node=node,
                        )
                    )
    return sites


def _str_const(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _tuple_len(node: ast.AST) -> int | None:
    if isinstance(node, ast.Tuple):
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return None
        return len(node.elts)
    return None


def check_protocol(
    worker: Module, issuers: list[Module]
) -> list[Finding]:
    handlers = collect_handlers(worker)
    findings: list[Finding] = []
    issued_ops: set[str] = set()
    for issuer in issuers:
        for site in collect_issue_sites(issuer):
            issued_ops.add(site.op)
            handler = handlers.get(site.op)
            if handler is None:
                findings.append(
                    issuer.finding(
                        site.node,
                        "unknown-op",
                        f"op {site.op!r} is issued but {worker.path} has no "
                        f"_op_{site.op} handler; the worker would raise "
                        "'unknown worker op' at runtime",
                    )
                )
            elif site.n_args is not None and not handler.accepts(site.n_args):
                expected = (
                    f">= {handler.min_args}"
                    if handler.max_args is None
                    else f"{handler.min_args}"
                    if handler.min_args == handler.max_args
                    else f"{handler.min_args}..{handler.max_args}"
                )
                findings.append(
                    issuer.finding(
                        site.node,
                        "op-arity-mismatch",
                        f"op {site.op!r} issued with {site.n_args} args but "
                        f"_op_{site.op} takes {expected}",
                    )
                )
    # Ops the worker itself issues internally (e.g. tests driving
    # core.handle) also count as exercised.
    for site in collect_issue_sites(worker):
        issued_ops.add(site.op)
    for op, handler in sorted(handlers.items()):
        if op not in issued_ops:
            finding = Finding(
                path=worker.path,
                line=handler.node_line,
                col=1,
                rule="unused-op",
                message=(
                    f"handler _op_{op} is never issued by any scanned "
                    "executor; dead protocol surface (suppress if it is "
                    "addressed to tests or external tooling)"
                ),
                snippet=worker.snippet(handler.node_line),
            )
            findings.append(finding)
    return sorted(findings)
