"""Static invariant analysis for the reproduction (``python -m repro.analysis``).

Five AST-based passes enforce, at lint time, the invariants the test
suite otherwise only catches after the fact:

1. **determinism** (:mod:`repro.analysis.determinism`) — wall-clock
   reads, unseeded RNGs, set-order iteration and unblessed matmuls in
   the bit-identity-critical packages;
2. **resource pairing** (:mod:`repro.analysis.resources`) — a CFG walk
   proving ``reserve_spec`` reaches ``promote_spec``/``release_spec``
   on every path, and that pool frees are exception-safe;
3. **worker protocol** (:mod:`repro.analysis.protocol`) — the ops the
   executor issues vs the ops ``WorkerCore`` dispatches, with arity;
4. **error contract** (:mod:`repro.analysis.contract`) — every
   ``http_status``-carrying error type vs the HTTP layer's mapper;
5. **HTTP schema** (:mod:`repro.analysis.schema`) — the completions
   request allowlist vs the fields the parser reads, and serialized
   response key sets vs the committed ``http_schema.json`` table.

Findings are filtered by inline ``# repro: allow(<rule>)`` suppressions
and the committed ``baseline.json`` (see
:mod:`repro.analysis.findings`). The runner lives in
:mod:`repro.analysis.runner`; the CLI in ``__main__``.
"""

from repro.analysis.findings import Baseline, Finding, Suppressions
from repro.analysis.runner import ALL_RULES, DEFAULT_BASELINE, Report, run

__all__ = [
    "ALL_RULES",
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "Report",
    "Suppressions",
    "run",
]
