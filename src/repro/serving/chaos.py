"""Chaos fault-injection harness for the process-parallel engine.

Robustness claims are only as good as the faults they were tested
against, so the serving layer ships a deterministic chaos harness
instead of leaving fault scripts to ad-hoc test code. A
:class:`FaultPlan` names *what* goes wrong and *when* on the executor's
step-count virtual clock; :func:`run_chaos` replays a seeded trace
through an executor while firing the plan, and returns a
:class:`ChaosReport` with everything a test needs to check the two
contracts that define overload-safe serving:

- every request that was admitted and not expired streams **bit-identical**
  tokens to a fault-free run (compare ``report.streams`` across runs);
- every request that was shed or expired surfaces **exactly one** typed
  terminal error (``report.shed`` + ``report.failures``), never a hang,
  never a duplicate.

Fault kinds (``Fault.kind``):

- ``"kill"`` — hard-kill the worker at the given step (exitcode death);
- ``"stall"`` — the worker freezes without progress beats; the
  executor's progress watchdog must quarantine it;
- ``"slow_step"`` — the worker's wave takes ``duration_s`` longer but
  keeps beating; the watchdog must let it finish (no false positive);
- ``"pipe_drop"`` — the next ``drops`` pipe sends fail transiently;
  bounded retry-with-backoff must absorb them (multiproc only — an
  in-process worker has no pipe, so the fault is a no-op there);
- ``"pool_burst"`` — ``n_requests`` filler requests slam the executor at
  the given step, driving pool pressure and queue depth up so admission
  control and preemption fire. Fillers ride the normal submit path;
  their ids are reported separately so foreground accounting stays clean.

Everything is deterministic at fixed seed: the trace, the plan, the
resubmission schedule and the merged streams replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.api.config import SamplingParams
from repro.api.errors import OverloadedError
from repro.api.request import GenerationOutput, GenerationRequest
from repro.serving.server import RequestFailure
from repro.serving.trace import TraceEntry

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.serving.engine import ExecutorBase

_FAULT_KINDS = ("kill", "stall", "slow_step", "pipe_drop", "pool_burst")


@dataclass(frozen=True)
class Fault:
    """One scripted fault: what happens, to whom, at which executor step.

    ``step`` counts executor waves from the start of the replay (fault 0
    fires before the first wave). ``duration_s`` parameterizes
    stall/slow_step sleeps, ``drops`` the pipe-drop count, and
    ``n_requests``/``prompt_len``/``max_new_tokens`` the pool burst.
    """

    step: int
    kind: str
    worker: int = 0
    duration_s: float = 0.0
    drops: int = 1
    n_requests: int = 4
    prompt_len: int = 12
    max_new_tokens: int = 4

    def __post_init__(self):
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_FAULT_KINDS}"
            )
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered fault script (replayable chaos scenario)."""

    name: str
    faults: tuple[Fault, ...] = ()

    def at_step(self, step: int) -> list[Fault]:
        return [f for f in self.faults if f.step == step]

    @property
    def last_step(self) -> int:
        return max((f.step for f in self.faults), default=-1)


@dataclass
class ChaosReport:
    """Everything one chaos replay produced, keyed by global request id.

    ``streams`` holds the exactly-once merged token stream of every
    request that produced tokens (fillers included — subtract
    ``filler_ids`` for foreground-only views). ``failures`` are the
    typed terminal errors (deadline expiries), ``shed`` the admission
    rejections that never got an id (``(trace index, error code)``).
    """

    plan: str
    outputs: list[GenerationOutput] = field(default_factory=list)
    streams: dict[int, list[int]] = field(default_factory=dict)
    request_ids: dict[int, int] = field(default_factory=dict)
    failures: list[RequestFailure] = field(default_factory=list)
    shed: list[tuple[int, str]] = field(default_factory=list)
    filler_ids: set[int] = field(default_factory=set)
    filler_shed: int = 0
    resubmissions: list[tuple[int, int]] = field(default_factory=list)
    faults_fired: list[Fault] = field(default_factory=list)
    steps: int = 0
    # Replicas whose pool passed the post-plan invariant audit (dead
    # workers are unreachable and excluded).
    pools_audited: int = 0

    @property
    def foreground_streams(self) -> dict[int, list[int]]:
        """Streams of admitted trace requests, keyed by *trace index*.

        Keyed by position in the trace (not global id) so streams stay
        comparable across runs even when fault-injected fillers shift
        the id sequence.
        """
        return {
            index: self.streams[gid]
            for index, gid in self.request_ids.items()
            if gid in self.streams
        }

    @property
    def terminal_errors(self) -> dict[int, list[RequestFailure]]:
        """Failures grouped by request id (each list must have length 1)."""
        grouped: dict[int, list[RequestFailure]] = {}
        for failure in self.failures:
            grouped.setdefault(failure.request_id, []).append(failure)
        return grouped


def _filler_request(fault: Fault, index: int, vocab_size: int) -> GenerationRequest:
    """Deterministic filler for a pool burst (no RNG, no wall clock)."""
    span = max(2, vocab_size - 2)
    ids = ((np.arange(fault.prompt_len, dtype=np.int64) * 7 + index * 13) % span) + 1
    return GenerationRequest(
        prompt_ids=ids,
        sampling=SamplingParams(max_new_tokens=fault.max_new_tokens),
    )


def run_chaos(
    executor: "ExecutorBase",
    trace: Sequence[TraceEntry],
    plan: FaultPlan,
    vocab_size: int = 512,
) -> ChaosReport:
    """Replay ``trace`` through ``executor`` while firing ``plan``.

    The loop mirrors :func:`repro.serving.trace.replay_trace` — submit
    every entry whose arrival step the clock has reached, jump idle gaps
    — with two additions: faults scheduled for the current wave count
    fire *before* the wave runs, and admission rejections are recorded
    (not raised). The executor keeps running until the trace is spent,
    all in-flight work drained, and every planned fault has fired.

    The caller owns the executor (and its shutdown); a fresh executor
    per run is what makes cross-run stream comparison meaningful.
    """
    entries = sorted(trace, key=lambda e: e.arrival_step)
    report = ChaosReport(plan=plan.name)
    submitted = 0
    step_no = 0
    while (
        submitted < len(entries)
        or executor.has_unfinished
        or step_no <= plan.last_step
    ):
        while (
            submitted < len(entries)
            and entries[submitted].arrival_step <= executor.clock
        ):
            index = submitted
            entry = entries[index]
            submitted += 1
            try:
                report.request_ids[index] = executor.add_request(entry.request)
            except OverloadedError as err:
                report.shed.append((index, err.code))
        for fault in plan.at_step(step_no):
            if fault.kind == "pool_burst":
                for i in range(fault.n_requests):
                    filler = _filler_request(fault, i, vocab_size)
                    try:
                        gid = executor.add_request(filler)
                    except OverloadedError:
                        report.filler_shed += 1
                    else:
                        report.filler_ids.add(gid)
            else:
                executor.inject_fault(
                    fault.worker % executor.n_workers,
                    fault.kind,
                    duration_s=fault.duration_s,
                    drops=fault.drops,
                )
            report.faults_fired.append(fault)
        if not executor.has_unfinished:
            if submitted < len(entries):
                executor.advance_clock_to(entries[submitted].arrival_step)
                continue
            if step_no > plan.last_step:
                break
            step_no += 1
            continue
        report.outputs.extend(executor.step())
        for event in executor.pop_stream_events():
            if event.error is None:
                report.streams.setdefault(event.request_id, []).append(
                    event.token_id
                )
        report.failures.extend(executor.pop_failures())
        step_no += 1
    report.resubmissions = list(executor.resubmissions)
    report.steps = step_no
    report.outputs.sort(key=lambda o: o.request_id)
    # Post-plan pool audit on every surviving replica: after the trace
    # drains, no block may be leaked, shared inconsistently, or left as
    # an orphaned speculative reservation — faults included. A violation
    # raises PoolAuditError out of run_chaos rather than letting a leak
    # masquerade as a passing plan.
    report.pools_audited = executor.audit_pools()
    return report
