"""One resolve surface for every named-policy registry in the system.

The serving layer grew three parallel registry APIs — schedulers, cluster
routers and admission controllers in :mod:`repro.serving.policies` — next
to the retrieval layer's selection-policy registry
(:func:`repro.retrieval.registry.make_policy`). Each had its own
normalization, aliasing, listing and error spelling. This module folds
them behind one uniform surface::

    from repro.serving import registry

    registry.available("router")            # ("least_loaded", ...)
    registry.resolve("scheduler", "FIFO")   # "fcfs"
    router = registry.make("router", "prefix_affinity", stickiness_tokens=16)
    policy = registry.make("policy", "quest", model, budget=256)

Uniform guarantees, for every kind:

- **aliasing** is case-, dash- and underscore-insensitive, and resolves
  to the *display-preserving* canonical name (``prefix_affinity`` stays
  ``prefix_affinity``, never a squashed ``prefixaffinity``);
- **listing** via :func:`available` returns the sorted canonical names;
- **unknown names** raise a *typed* error — :class:`UnknownSchedulerError`,
  :class:`UnknownRouterError`, :class:`UnknownAdmissionError` (all
  ``KeyError`` subclasses carrying ``.name`` and ``.available``) or the
  existing :class:`repro.api.errors.UnknownPolicyError` — with the same
  ``unknown <kind> <name>; available: [...]`` message shape throughout.

The historical per-kind functions (``make_router``, ``make_admission``,
``make_scheduler``, ``resolve_*_name``, ``available_*``) remain importable
from :mod:`repro.serving.policies` as thin shims over this module, so
existing code keeps working; new code should come here.
"""

from __future__ import annotations

from typing import Callable


class UnknownNameError(KeyError):
    """An unrecognized registry name; carries what *would* have worked.

    ``KeyError`` ancestry keeps every pre-existing ``except KeyError``
    and ``pytest.raises(KeyError)`` working; the typed subclasses let new
    call sites catch exactly the registry they resolved against.
    """

    kind = "name"

    def __init__(self, name: str, available: tuple[str, ...]):
        self.name = name
        self.available = tuple(available)
        super().__init__(
            f"unknown {self.kind} {name!r}; available: {list(self.available)}"
        )

    def __str__(self) -> str:  # KeyError.__str__ repr()s its arg; undo that
        return self.args[0]


class UnknownSchedulerError(UnknownNameError):
    """No scheduler policy is registered under this name."""

    kind = "scheduler"


class UnknownRouterError(UnknownNameError):
    """No cluster router is registered under this name."""

    kind = "router"


class UnknownAdmissionError(UnknownNameError):
    """No admission controller is registered under this name."""

    kind = "admission policy"


def normalize(name: str) -> str:
    """Alias-lookup key: lowercase, dashes/underscores/spaces stripped."""
    return name.strip().lower().replace("-", "").replace("_", "")


class Registry:
    """One named-builder registry: display-preserving names plus aliases.

    ``register`` is a decorator factory adding a builder under a
    canonical (display) name and any number of aliases; ``resolve`` maps
    any alias spelling back to the canonical name or raises the
    registry's typed error; ``make`` resolves and calls the builder.
    """

    def __init__(self, kind: str, error_cls: type[UnknownNameError]):
        self.kind = kind
        self._error_cls = error_cls
        self._builders: dict[str, Callable] = {}
        self._lookup: dict[str, str] = {}

    def register(self, name: str, *aliases: str) -> Callable:
        def deco(builder: Callable) -> Callable:
            if name in self._builders:
                raise ValueError(f"duplicate {self.kind} name {name!r}")
            self._builders[name] = builder
            for alias in (name, *aliases):
                self._lookup[normalize(alias)] = name
            return builder

        return deco

    def available(self) -> tuple[str, ...]:
        """Canonical names, sorted."""
        return tuple(sorted(self._builders))

    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (alias- and case-insensitive)."""
        key = self._lookup.get(normalize(name))
        if key is None:
            raise self._error_cls(name, self.available())
        return key

    def make(self, name: str, *args, **opts):
        """Build the entry registered under ``name``.

        ``opts`` are forwarded to the builder; builders reject options
        they do not understand (a misspelled knob must not silently fall
        back to defaults).
        """
        return self._builders[self.resolve(name)](*args, **opts)


SCHEDULERS = Registry("scheduler", UnknownSchedulerError)
ROUTERS = Registry("router", UnknownRouterError)
ADMISSIONS = Registry("admission policy", UnknownAdmissionError)

_KINDS = {
    "scheduler": SCHEDULERS,
    "router": ROUTERS,
    "admission": ADMISSIONS,
}


def _ensure_loaded() -> None:
    # Builders register at policies-import time; the import lives here
    # (not at module top) because policies imports this module for the
    # Registry instances — the lazy direction breaks the cycle.
    import repro.serving.policies  # noqa: F401


def _registry(kind: str) -> Registry:
    _ensure_loaded()
    try:
        return _KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown registry kind {kind!r}; "
            f"available: {sorted(_KINDS)} + ['policy']"
        ) from None


def available(kind: str) -> tuple[str, ...]:
    """Sorted canonical names registered under ``kind``.

    Kinds: ``"scheduler"``, ``"router"``, ``"admission"`` (serving) and
    ``"policy"`` (retrieval selection policies).
    """
    if kind == "policy":
        from repro.retrieval.registry import available_policies

        return available_policies()
    return _registry(kind).available()


def resolve(kind: str, name: str) -> str:
    """Canonical name for ``name`` within ``kind``; typed error if unknown."""
    if kind == "policy":
        from repro.retrieval.registry import resolve_policy_name

        return resolve_policy_name(name)
    return _registry(kind).resolve(name)


def make(kind: str, name: str, *args, **opts):
    """Resolve ``name`` within ``kind`` and build it with ``opts``."""
    if kind == "policy":
        from repro.retrieval.registry import make_policy

        return make_policy(name, *args, **opts)
    return _registry(kind).make(name, *args, **opts)
