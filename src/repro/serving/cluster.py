"""Multi-replica cluster serving with pluggable request routing.

Scaling *out*: a :class:`ClusterFrontend` owns N independent
:class:`~repro.serving.server.SpeContextServer` replicas — each with its
own :class:`~repro.kvcache.pool.PagedKVPool`, scheduler and meter — and
routes every incoming :class:`~repro.api.request.GenerationRequest`
through a pluggable router (:func:`repro.serving.policies.make_router`):

- ``round_robin`` — cyclic placement, the locality-blind baseline;
- ``least_loaded`` — smallest outstanding admission charge (reserved
  tokens of unfinished sessions) plus queue depth, ties to the lowest
  replica index;
- ``prefix_affinity`` — probe every replica's prefix cache (a read-only
  blake2b-chain walk, :meth:`~repro.kvcache.pool.PagedKVPool
  .longest_prefix_match`) and stick to the longest match when it reaches
  the stickiness threshold, falling back to least-loaded otherwise. This
  turns the per-replica prefix cache into a cluster-wide asset: requests
  sharing a system prompt land where their prefix KV already lives.

Placement is the *only* cluster-level decision. Once routed, a request
runs under the replica's own admission, preemption and scheduling — and
the single-server guarantees carry over verbatim: each request's token
stream is bit-identical to a solo run of the same request on a fresh
replica (the exact-streams contract; no cross-replica array-equality is
asserted anywhere). :meth:`ClusterFrontend.step` drives all replicas one
wave each in lockstep and merges their per-token
:class:`~repro.serving.server.StreamEvent`s and
:class:`~repro.serving.server.PreemptionEvent`s into a single ordered
client view (replica order within a step, emission order within a
replica — deterministic at fixed seed).

Request ids are assigned globally by the frontend and passed through to
the replicas (each replica sees an increasing subsequence, which the
server's submission contract accepts), so stream events, outputs and
preemption events all speak global ids without a translation table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig
from repro.api.request import GenerationOutput, GenerationRequest
from repro.core.memory_model import MemoryModel
from repro.models.llm import TransformerLM
from repro.serving.meter import ThroughputMeter
from repro.serving.policies import make_router, resolve_router_name
from repro.serving.server import PreemptionEvent, SpeContextServer, StreamEvent


@dataclass(frozen=True)
class ClusterPreemptionEvent:
    """One replica-local preemption, tagged with its replica index."""

    replica: int
    event: PreemptionEvent


@dataclass
class ClusterRoutingStats:
    """Per-replica placement accounting (one list slot per replica).

    A routed request is an **affinity hit** when the chosen replica's
    prefix cache covered at least ``stickiness_tokens`` of its prompt at
    placement time, an **affinity miss** when some *other* replica held
    such a match but the chosen one did not (locality left on the
    table — the round-robin failure mode), and **cold** when no replica
    held a qualifying match (nothing to exploit; every group's first
    request is cold). Hits + misses + cold = routed.
    """

    routed: list[int] = field(default_factory=list)
    affinity_hits: list[int] = field(default_factory=list)
    affinity_misses: list[int] = field(default_factory=list)
    cold: list[int] = field(default_factory=list)

    @property
    def total_routed(self) -> int:
        return sum(self.routed)

    @property
    def hit_rate(self) -> float:
        """Affinity hits over non-cold placements (1.0 when all cold)."""
        contested = sum(self.affinity_hits) + sum(self.affinity_misses)
        if contested == 0:
            return 1.0
        return sum(self.affinity_hits) / contested


class _ReplicaView:
    """The cheap router-facing surface of one replica."""

    def __init__(self, index: int, server: SpeContextServer):
        self.index = index
        self.server = server

    @property
    def queue_depth(self) -> int:
        return self.server.n_waiting

    @property
    def reserved_tokens(self) -> int:
        return self.server.reserved_tokens

    def prefix_match_tokens(self, prompt_ids: np.ndarray) -> int:
        return self.server.pool.longest_prefix_match(prompt_ids)


class _ProbedView:
    """A replica view with this request's prefix probe precomputed.

    The frontend probes every replica once per submission (it needs the
    matches for hit/miss accounting whatever the router); handing the
    router these memoized views means ``prefix_affinity`` does not walk
    the blake2b chains a second time.
    """

    def __init__(self, view: _ReplicaView, match: int):
        self._view = view
        self.index = view.index
        self._match = match

    @property
    def queue_depth(self) -> int:
        return self._view.queue_depth

    @property
    def reserved_tokens(self) -> int:
        return self._view.reserved_tokens

    def prefix_match_tokens(self, prompt_ids: np.ndarray) -> int:
        return self._match


class ClusterFrontend:
    """N server replicas behind one request-level API."""

    def __init__(
        self,
        model: TransformerLM,
        config: EngineConfig | None = None,
        cluster: ClusterConfig | None = None,
        memory_model: MemoryModel | None = None,
    ):
        self.config = config or EngineConfig()
        self.cluster = cluster or ClusterConfig()
        router_opts = {}
        if resolve_router_name(self.cluster.router) == "prefix_affinity":
            router_opts["stickiness_tokens"] = self.cluster.stickiness_tokens
        self.router = make_router(self.cluster.router, **router_opts)
        self.replicas = [
            SpeContextServer(model, self.config, memory_model)
            for _ in range(self.cluster.n_replicas)
        ]
        self._views = [
            _ReplicaView(i, server) for i, server in enumerate(self.replicas)
        ]
        self.routing = ClusterRoutingStats(
            routed=[0] * self.cluster.n_replicas,
            affinity_hits=[0] * self.cluster.n_replicas,
            affinity_misses=[0] * self.cluster.n_replicas,
            cold=[0] * self.cluster.n_replicas,
        )
        self._replica_of: dict[int, int] = {}  # request id -> replica index
        self._stream: list[StreamEvent] = []
        self._preemption_log: list[ClusterPreemptionEvent] = []
        self._preemption_cursors = [0] * self.cluster.n_replicas
        self._next_id = 0
        self._clock = 0.0

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    # ---- submission ------------------------------------------------------------

    def add_request(self, request: GenerationRequest) -> int:
        """Route and enqueue one request; returns its global request id.

        The router places the request, then the chosen replica runs its
        full submission validation. On rejection the request object, the
        id counter, the routing stats *and the router's own state* (the
        round-robin cursor) are all restored, so a rejected submission is
        retryable and placement stays identical to a run that never saw
        it.
        """
        if request.request_id is not None and request.request_id < self._next_id:
            raise ValueError(
                f"request_id {request.request_id} already used; ids must be "
                "unique and increasing"
            )
        # One probe per replica feeds both the router (through memoized
        # views, so prefix_affinity never re-walks the hash chains) and
        # the hit/miss accounting below.
        matches = [
            view.prefix_match_tokens(request.prompt_ids) for view in self._views
        ]
        probed = [
            _ProbedView(view, match)
            for view, match in zip(self._views, matches)
        ]
        cursor = getattr(self.router, "_next", None)
        chosen = self.router.route(request, probed)
        if not 0 <= chosen < self.n_replicas:
            raise ValueError(
                f"router {self.router.name!r} returned replica {chosen}; "
                f"cluster has {self.n_replicas}"
            )
        preset = request.request_id
        if preset is None:
            request.request_id = self._next_id
        try:
            request_id = self.replicas[chosen].add_request(request)
        except Exception:
            request.request_id = preset
            if cursor is not None:
                self.router._next = cursor
            raise
        self._next_id = request_id + 1
        self._replica_of[request_id] = chosen
        self.routing.routed[chosen] += 1
        threshold = self.cluster.stickiness_tokens
        if matches[chosen] >= threshold:
            self.routing.affinity_hits[chosen] += 1
        elif max(matches) >= threshold:
            self.routing.affinity_misses[chosen] += 1
        else:
            self.routing.cold[chosen] += 1
        return request_id

    def replica_of(self, request_id: int) -> int:
        """Replica index a submitted request was placed on."""
        return self._replica_of[request_id]

    # ---- stepping --------------------------------------------------------------

    @property
    def clock(self) -> float:
        """The shared step-count clock (replicas tick in lockstep)."""
        return self._clock

    def advance_clock_to(self, when: float) -> None:
        """Jump every replica's idle clock forward (trace replay gaps)."""
        for server in self.replicas:
            server.advance_clock_to(when)
        self._clock = float(when)

    @property
    def has_unfinished(self) -> bool:
        return any(server.has_unfinished for server in self.replicas)

    def step(self) -> list[GenerationOutput]:
        """Drive every replica one wave; merge events into one client view.

        All replicas step every cluster step — idle ones merely tick
        their clock — so per-replica clocks stay in lockstep and merged
        meter percentiles are measured on one shared timeline. Stream and
        preemption events accumulate in replica order within the step,
        emission order within each replica: a deterministic total order.
        Returns the requests that finished during this step, sorted by
        global request id.
        """
        finished: list[GenerationOutput] = []
        for i, server in enumerate(self.replicas):
            finished.extend(server.step())
            self._stream.extend(server.pop_stream_events())
            log = server.preemption_log
            for event in log[self._preemption_cursors[i]:]:
                self._preemption_log.append(
                    ClusterPreemptionEvent(replica=i, event=event)
                )
            self._preemption_cursors[i] = len(log)
        self._clock += 1.0
        return sorted(finished, key=lambda o: o.request_id)

    def run(self) -> list[GenerationOutput]:
        """Step until every replica drains; returns outputs by global id."""
        outputs: list[GenerationOutput] = []
        while self.has_unfinished:
            outputs.extend(self.step())
        return sorted(outputs, key=lambda o: o.request_id)

    # ---- merged views ----------------------------------------------------------

    def pop_stream_events(self) -> list[StreamEvent]:
        """Drain the merged per-token stream (global request ids)."""
        events = self._stream
        self._stream = []
        return events

    def pop_failures(self):
        """Drain typed per-request failures across every replica."""
        failures = []
        for server in self.replicas:
            failures.extend(server.pop_failures())
        return failures

    @property
    def shedding(self) -> bool:
        """True when any replica's admission policy is shedding."""
        return any(server.shedding for server in self.replicas)

    @property
    def preemption_log(self) -> list[ClusterPreemptionEvent]:
        """Every preemption on any replica, in merged client order."""
        return list(self._preemption_log)

    @property
    def outputs(self) -> list[GenerationOutput]:
        """All finished outputs across replicas, sorted by global id."""
        merged: list[GenerationOutput] = []
        for server in self.replicas:
            merged.extend(server.outputs)
        return sorted(merged, key=lambda o: o.request_id)

    def stats(self) -> ThroughputMeter:
        """Cluster-wide meter: the union of every replica's records.

        Percentiles over the union are not derivable from per-replica
        aggregates, hence :meth:`ThroughputMeter.merge` rather than any
        averaging of replica meters.
        """
        return ThroughputMeter.merge(*(s.meter for s in self.replicas))

    def prefix_reused_tokens(self) -> int:
        """Cluster-wide prompt tokens served from prefix caches so far."""
        return sum(
            o.stats.prefix_reused_tokens for server in self.replicas
            for o in server.outputs
        )
