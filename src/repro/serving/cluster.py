"""Multi-replica cluster serving with pluggable request routing.

Scaling *out*: a :class:`ClusterFrontend` owns N independent
:class:`~repro.serving.server.SpeContextServer` replicas — each with its
own :class:`~repro.kvcache.pool.PagedKVPool`, scheduler and meter — and
routes every incoming :class:`~repro.api.request.GenerationRequest`
through a pluggable router (:func:`repro.serving.policies.make_router`):

- ``round_robin`` — cyclic placement, the locality-blind baseline;
- ``least_loaded`` — smallest outstanding admission charge (reserved
  tokens of unfinished sessions) plus queue depth, ties to the lowest
  replica index;
- ``prefix_affinity`` — probe every replica's prefix cache (a read-only
  blake2b-chain walk, :meth:`~repro.kvcache.pool.PagedKVPool
  .longest_prefix_match`) and stick to the longest match when it reaches
  the stickiness threshold, falling back to least-loaded otherwise. This
  turns the per-replica prefix cache into a cluster-wide asset: requests
  sharing a system prompt land where their prefix KV already lives.

Placement is the *only* cluster-level decision. Once routed, a request
runs under the replica's own admission, preemption and scheduling — and
the single-server guarantees carry over verbatim: each request's token
stream is bit-identical to a solo run of the same request on a fresh
replica (the exact-streams contract; no cross-replica array-equality is
asserted anywhere). :meth:`ClusterFrontend.step` drives all replicas one
wave each in lockstep and merges their per-token
:class:`~repro.serving.server.StreamEvent`s and
:class:`~repro.serving.server.PreemptionEvent`s into a single ordered
client view (replica order within a step, emission order within a
replica — deterministic at fixed seed).

Request ids are assigned globally by the frontend and passed through to
the replicas (each replica sees an increasing subsequence, which the
server's submission contract accepts), so stream events, outputs and
preemption events all speak global ids without a translation table.

Placement decisions are made by the shared
:class:`~repro.serving.placement.PlacementEngine` (the same surface the
process-parallel executor speaks), which also plans **live KV
migrations**: a ``rebalance()`` pass drains whole sessions — KV blocks,
policy state, RNG — from the most loaded replica to the least loaded
one, and in disaggregated mode (``cluster.roles``) sessions that finish
prefill on a ``prefill``-role replica hand off to a decode-capable
replica after every step. Migration moves the session object wholesale
(:meth:`~repro.serving.server.SpeContextServer.export_session`), so the
continued stream is bit-identical to a never-migrated run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig
from repro.api.request import GenerationOutput, GenerationRequest
from repro.core.memory_model import MemoryModel
from repro.models.llm import TransformerLM
from repro.serving.meter import ThroughputMeter
from repro.serving.placement import (
    ClusterRoutingStats,
    MigrationPlan,
    PlacementEngine,
)
from repro.serving.server import PreemptionEvent, SpeContextServer, StreamEvent

__all__ = [
    "ClusterFrontend",
    "ClusterPreemptionEvent",
    "ClusterRoutingStats",
    "MigrationPlan",
]


@dataclass(frozen=True)
class ClusterPreemptionEvent:
    """One replica-local preemption, tagged with its replica index."""

    replica: int
    event: PreemptionEvent


class _ReplicaView:
    """The cheap router-facing surface of one replica."""

    def __init__(self, index: int, server: SpeContextServer):
        self.index = index
        self.server = server

    @property
    def queue_depth(self) -> int:
        return self.server.n_waiting

    @property
    def reserved_tokens(self) -> int:
        return self.server.reserved_tokens

    def prefix_match_tokens(self, prompt_ids: np.ndarray) -> int:
        return self.server.pool.longest_prefix_match(prompt_ids)


class ClusterFrontend:
    """N server replicas behind one request-level API."""

    def __init__(
        self,
        model: TransformerLM,
        config: EngineConfig | None = None,
        cluster: ClusterConfig | None = None,
        memory_model: MemoryModel | None = None,
    ):
        self.config = config or EngineConfig()
        self.cluster = cluster or ClusterConfig()
        self.placement = PlacementEngine(
            self.cluster, self.cluster.n_replicas
        )
        self.router = self.placement.router  # historical alias
        self.routing = self.placement.routing
        self.replicas = [
            SpeContextServer(model, self.config, memory_model)
            for _ in range(self.cluster.n_replicas)
        ]
        self._views = [
            _ReplicaView(i, server) for i, server in enumerate(self.replicas)
        ]
        self._replica_of: dict[int, int] = {}  # request id -> replica index
        self._stream: list[StreamEvent] = []
        self._preemption_log: list[ClusterPreemptionEvent] = []
        self._preemption_cursors = [0] * self.cluster.n_replicas
        self.migrations: list[MigrationPlan] = []  # applied, in order
        self._steps_since_rebalance = 0
        self._next_id = 0
        self._clock = 0.0

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    # ---- submission ------------------------------------------------------------

    def add_request(self, request: GenerationRequest) -> int:
        """Route and enqueue one request; returns its global request id.

        The router places the request, then the chosen replica runs its
        full submission validation. On rejection the request object, the
        id counter, the routing stats *and the router's own state* (the
        round-robin cursor) are all restored, so a rejected submission is
        retryable and placement stays identical to a run that never saw
        it.
        """
        if request.request_id is not None and request.request_id < self._next_id:
            raise ValueError(
                f"request_id {request.request_id} already used; ids must be "
                "unique and increasing"
            )
        placement = self.placement.place(request, self._views)
        chosen = placement.target
        preset = request.request_id
        if preset is None:
            request.request_id = self._next_id
        try:
            request_id = self.replicas[chosen].add_request(request)
        except Exception:
            request.request_id = preset
            self.placement.rollback(placement)
            raise
        self.placement.commit(placement)
        self._next_id = request_id + 1
        self._replica_of[request_id] = chosen
        return request_id

    def replica_of(self, request_id: int) -> int:
        """Replica index a submitted request was placed on."""
        return self._replica_of[request_id]

    # ---- stepping --------------------------------------------------------------

    @property
    def clock(self) -> float:
        """The shared step-count clock (replicas tick in lockstep)."""
        return self._clock

    def advance_clock_to(self, when: float) -> None:
        """Jump every replica's idle clock forward (trace replay gaps)."""
        for server in self.replicas:
            server.advance_clock_to(when)
        self._clock = float(when)

    @property
    def has_unfinished(self) -> bool:
        return any(server.has_unfinished for server in self.replicas)

    def step(self) -> list[GenerationOutput]:
        """Drive every replica one wave; merge events into one client view.

        All replicas step every cluster step — idle ones merely tick
        their clock — so per-replica clocks stay in lockstep and merged
        meter percentiles are measured on one shared timeline. Stream and
        preemption events accumulate in replica order within the step,
        emission order within each replica: a deterministic total order.
        Returns the requests that finished during this step, sorted by
        global request id.
        """
        finished: list[GenerationOutput] = []
        for i, server in enumerate(self.replicas):
            finished.extend(server.step())
            self._stream.extend(server.pop_stream_events())
            log = server.preemption_log
            for event in log[self._preemption_cursors[i]:]:
                self._preemption_log.append(
                    ClusterPreemptionEvent(replica=i, event=event)
                )
            self._preemption_cursors[i] = len(log)
        self._clock += 1.0
        if self.placement.disaggregated:
            self._apply_plans(
                self.placement.plan_handoffs(self._loads(), self._migratable())
            )
        every = self.cluster.rebalance_every
        if every > 0:
            self._steps_since_rebalance += 1
            if self._steps_since_rebalance >= every:
                self._steps_since_rebalance = 0
                self.rebalance()
        return sorted(finished, key=lambda o: o.request_id)

    def run(self) -> list[GenerationOutput]:
        """Step until every replica drains; returns outputs by global id."""
        outputs: list[GenerationOutput] = []
        while self.has_unfinished:
            outputs.extend(self.step())
        return sorted(outputs, key=lambda o: o.request_id)

    # ---- live migration --------------------------------------------------------

    def rebalance(self) -> list[MigrationPlan]:
        """Drain sessions from overloaded replicas onto idle ones.

        Plans via the shared :meth:`~repro.serving.placement
        .PlacementEngine.plan_rebalance` and applies each move as a live
        KV migration (:meth:`~repro.serving.server.SpeContextServer
        .export_session` -> ``import_session``); the migrated request's
        remaining stream is bit-identical to a never-migrated run.
        Returns the plans actually applied (a session that finished
        between planning and export is skipped, not an error). Must be
        called between steps, never mid-wave.
        """
        return self._apply_plans(
            self.placement.plan_rebalance(self._loads(), self._migratable())
        )

    def migrate(self, request_id: int, target: int) -> bool:
        """Migrate one in-flight request to ``target`` (manual override).

        Returns False when the request is unknown or already finished;
        raises :class:`IndexError` for an out-of-range target.
        """
        if not 0 <= target < self.n_replicas:
            raise IndexError(
                f"target replica {target} out of range "
                f"(cluster has {self.n_replicas})"
            )
        source = self._replica_of.get(request_id)
        if source is None or source == target:
            return False
        export = self.replicas[source].export_session(request_id)
        if export is None:
            return False
        self.replicas[target].import_session(export)
        self._replica_of[request_id] = target
        self.migrations.append(
            MigrationPlan(
                request_id=request_id,
                source=source,
                target=target,
                charge=export.request.prompt_len
                + export.request.sampling.max_new_tokens,
                reason="manual",
            )
        )
        return True

    def _loads(self) -> list[int]:
        return [
            view.reserved_tokens + view.queue_depth for view in self._views
        ]

    def _migratable(self) -> dict[int, list[tuple[int, int, bool]]]:
        return {
            i: server.migratable_requests()
            for i, server in enumerate(self.replicas)
        }

    def _apply_plans(
        self, plans: list[MigrationPlan]
    ) -> list[MigrationPlan]:
        applied: list[MigrationPlan] = []
        for plan in plans:
            export = self.replicas[plan.source].export_session(
                plan.request_id
            )
            if export is None:
                continue  # finished between planning and export
            self.replicas[plan.target].import_session(export)
            self._replica_of[plan.request_id] = plan.target
            self.migrations.append(plan)
            applied.append(plan)
        return applied

    # ---- merged views ----------------------------------------------------------

    def pop_stream_events(self) -> list[StreamEvent]:
        """Drain the merged per-token stream (global request ids)."""
        events = self._stream
        self._stream = []
        return events

    def pop_failures(self):
        """Drain typed per-request failures across every replica."""
        failures = []
        for server in self.replicas:
            failures.extend(server.pop_failures())
        return failures

    @property
    def shedding(self) -> bool:
        """True when any replica's admission policy is shedding."""
        return any(server.shedding for server in self.replicas)

    @property
    def preemption_log(self) -> list[ClusterPreemptionEvent]:
        """Every preemption on any replica, in merged client order."""
        return list(self._preemption_log)

    @property
    def outputs(self) -> list[GenerationOutput]:
        """All finished outputs across replicas, sorted by global id."""
        merged: list[GenerationOutput] = []
        for server in self.replicas:
            merged.extend(server.outputs)
        return sorted(merged, key=lambda o: o.request_id)

    def stats(self) -> ThroughputMeter:
        """Cluster-wide meter: the union of every replica's records.

        Percentiles over the union are not derivable from per-replica
        aggregates, hence :meth:`ThroughputMeter.merge` rather than any
        averaging of replica meters.
        """
        return ThroughputMeter.merge(*(s.meter for s in self.replicas))

    def prefix_reused_tokens(self) -> int:
        """Cluster-wide prompt tokens served from prefix caches so far."""
        return sum(
            o.stats.prefix_reused_tokens for server in self.replicas
            for o in server.outputs
        )
