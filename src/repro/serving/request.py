"""Request model for the serving simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RequestState(enum.Enum):
    """Lifecycle of a request inside the serving system."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    REJECTED = "rejected"  # cannot fit even alone (OOM)


@dataclass
class Request:
    """One generation request.

    Attributes:
        request_id: unique identifier.
        in_len: prompt length in tokens.
        out_len: tokens to generate.
        arrival_s: arrival time on the serving clock.
        first_token_s: clock time the first generated token was emitted;
            None when the serving layer did not record it (legacy
            records, synthetic simulator requests).
    """

    request_id: int
    in_len: int
    out_len: int
    arrival_s: float = 0.0
    state: RequestState = RequestState.QUEUED
    start_s: float = field(default=0.0)
    finish_s: float = field(default=0.0)
    first_token_s: float | None = field(default=None)

    def __post_init__(self):
        if self.in_len < 1 or self.out_len < 1:
            raise ValueError("in_len and out_len must be positive")

    @property
    def latency_s(self) -> float:
        """Queue + execution latency (valid once finished)."""
        if self.state is not RequestState.FINISHED:
            raise RuntimeError(f"request {self.request_id} not finished")
        return self.finish_s - self.arrival_s

    @property
    def ttft_s(self) -> float | None:
        """Time to first token (arrival -> first emitted token), if recorded."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def queueing_delay_s(self) -> float:
        """Time spent waiting before first activation (arrival -> start)."""
        return self.start_s - self.arrival_s

    @property
    def total_tokens(self) -> int:
        return self.in_len + self.out_len
