"""SpeContextServer: continuous batching of real inference over the
functional engine.

The original API was one-shot: ``SpeContextEngine.generate()`` ran exactly
one request, and the serving layer only ever drove the performance
*simulator*. This server runs **actual numpy inference** for many
concurrent sessions:

- ``add_request`` enqueues a :class:`~repro.api.request.GenerationRequest`
  (FIFO admission up to ``EngineConfig.max_concurrency``);
- ``step`` admits waiting requests, then runs **one decode step for every
  active session** — continuous batching: requests join and leave the
  running batch at step granularity, each with its own policy, budget,
  sampling parameters and stop conditions;
- ``run`` steps until the queue drains and returns per-request
  :class:`~repro.api.request.GenerationOutput`s.

System accounting matches the one-shot engine: each session gets elastic
transfer statistics (set-difference bytes over PCIe, adjacent-step
overlap) and the **shared** adaptive memory manager walks the Algorithm-1
thresholds against the *aggregate* KV footprint of all co-resident
sessions, so offload events reflect multi-request pressure. Completions
feed a :class:`~repro.serving.meter.ThroughputMeter` on a step-count
virtual clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import EngineConfig, SamplingParams
from repro.api.request import GenerationOutput, GenerationRequest
from repro.core.adaptive import AdaptiveMemoryManager, OffloadEvent
from repro.core.elastic import ElasticTransferTracker
from repro.core.engine import GenerationStats
from repro.core.memory_model import MemoryModel
from repro.core.retrieval_head import SpeContextPolicy
from repro.kvcache.cache import ModelKVCache
from repro.models.config import AttentionKind
from repro.models.llm import DecodeResult, SelectionPolicy, TransformerLM
from repro.retrieval.registry import make_policy, resolve_policy_name
from repro.serving.meter import ThroughputMeter
from repro.serving.request import Request, RequestState


@dataclass
class _Session:
    """One in-flight request: its cache, policy, and decode progress."""

    request: GenerationRequest
    policy: SelectionPolicy | None
    budget: int  # the budget that actually governs selection
    cache: ModelKVCache
    rng: np.random.Generator | None
    result: DecodeResult
    arrival_s: float
    start_s: float = 0.0
    pending: int | None = None  # next token to decode
    prefill_token: int | None = None  # step-0 token from full-prompt prefill
    steps_taken: int = 0
    finish_reason: str = ""
    offload_events: list[OffloadEvent] = field(default_factory=list)

    @property
    def request_id(self) -> int:
        assert self.request.request_id is not None
        return self.request.request_id

    @property
    def sampling(self) -> SamplingParams:
        return self.request.sampling

    @property
    def current_len(self) -> int:
        """KV footprint in tokens: full prompt plus generated tokens."""
        return self.request.prompt_len + len(self.result.token_ids)

    @property
    def done(self) -> bool:
        return bool(self.finish_reason)


class SpeContextServer:
    """Request-level serving of the functional model with mixed policies."""

    def __init__(
        self,
        model: TransformerLM,
        config: EngineConfig | None = None,
        memory_model: MemoryModel | None = None,
    ):
        self.model = model
        self.config = config or EngineConfig()
        if memory_model is None:
            memory_model = MemoryModel(
                model.config,
                self.config.dlm_bytes
                if self.config.dlm_bytes is not None
                else self._estimate_dlm_bytes(),
                self.config.spec,
                requests=self.config.requests,
                budget=self.config.budget,
            )
        self.memory_model = memory_model
        # One manager for the whole server: thresholds are computed once;
        # runtime state is reset between busy periods (idle -> first admit).
        self.manager = AdaptiveMemoryManager(self.memory_model)
        self.meter = ThroughputMeter()
        self._waiting: deque[_Session] = deque()
        self._active: list[_Session] = []
        self._outputs: list[GenerationOutput] = []
        self._next_id = 0
        self._clock = 0.0

    def _estimate_dlm_bytes(self) -> int:
        """Retrieval-head bytes to charge the memory model (Eq. 6-8).

        When the default policy is specontext, per-request heads occupy
        real memory; the size is a pure function of the teacher's shapes
        (per-head Q/K projections plus the shared embedding slice, FP16),
        so the server's Algorithm-1 thresholds match the one-shot
        engine's for the same workload without building a head.
        """
        if (
            self.config.bos_id is None
            or resolve_policy_name(self.config.policy) != "specontext"
        ):
            return 0
        cfg = self.model.config
        dc = cfg.head_dim
        n_heads = (
            cfg.n_kv_heads
            if cfg.attention is AttentionKind.MLA
            else cfg.n_kv_heads * cfg.group_size
        )
        params = 2 * n_heads * dc * dc + cfg.vocab_size * dc
        return 2 * params

    def clear_history(self) -> None:
        """Drop accumulated outputs and meter records.

        Long-lived servers (and the engine's private single-session
        server) call this between runs so per-request bookkeeping does
        not grow without bound; queued/active sessions are unaffected.
        """
        self._outputs.clear()
        self.meter.finished.clear()
        self.meter.rejected.clear()

    # ---- submission ------------------------------------------------------------

    def add_request(self, request: GenerationRequest) -> int:
        """Enqueue a request; returns its assigned request id.

        Policy and RNG resolution happen before any state changes, so a
        rejected submission (unknown policy, MLA mismatch, missing seed)
        leaves the server and the request object untouched and retryable.
        """
        if request.request_id is not None and request.request_id < self._next_id:
            raise ValueError(
                f"request_id {request.request_id} already used; ids must be "
                "unique and increasing"
            )
        if not isinstance(request.policy, str) and request.policy is not None:
            # A prebuilt policy owns mutable per-request state (K cache,
            # selection history); sharing one across in-flight sessions
            # would silently merge their token streams.
            for session in (*self._waiting, *self._active):
                if session.policy is request.policy:
                    raise ValueError(
                        "policy object is already bound to in-flight request "
                        f"{session.request_id}; prebuilt policies can only be "
                        "reused sequentially"
                    )
        policy = self._resolve_policy(request)
        rng = self._resolve_rng(request)
        if request.request_id is None:
            request.request_id = self._next_id
        self._next_id = request.request_id + 1
        session = _Session(
            request=request,
            policy=policy,
            budget=self._effective_budget(request, policy),
            cache=self.model.new_cache(),
            rng=rng,
            result=DecodeResult(
                prompt_len=request.prompt_len, token_ids=[], stopped_by_eos=False
            ),
            arrival_s=self._clock,
        )
        self._waiting.append(session)
        return request.request_id

    def _effective_budget(
        self, request: GenerationRequest, policy: SelectionPolicy | None
    ) -> int:
        """The budget that actually governs selection for this session.

        A prebuilt policy carries its own budget, which wins over the
        request/config values so stats never misreport what ran.
        """
        policy_budget = getattr(policy, "budget", None)
        if policy_budget is not None:
            return int(policy_budget)
        return request.budget or self.config.budget

    def _resolve_policy(self, request: GenerationRequest) -> SelectionPolicy | None:
        policy = request.policy if request.policy is not None else self.config.policy
        if not isinstance(policy, str):
            return policy  # prebuilt instance (sequential reuse, e.g. engine)
        # Config-level opts describe the config's *default* policy; they
        # must not leak into requests that name a different one.
        opts = dict(request.policy_opts)
        if resolve_policy_name(policy) == resolve_policy_name(self.config.policy):
            opts = {**self.config.policy_opts, **opts}
        budget = request.budget or self.config.budget
        if resolve_policy_name(policy) == "specontext":
            # Each concurrent session needs its own head (it owns a K
            # cache); identical seeding keeps batched runs bit-identical
            # to single-request runs.
            opts.setdefault("bos_id", self.config.bos_id)
            opts.setdefault("head_config", self.config.head_config)
            opts.setdefault("level", self.config.selection_level)
            if "head" not in opts and "rng" not in opts:
                opts["rng"] = np.random.default_rng(self.config.seed)
        return make_policy(policy, self.model, budget, **opts)

    def _resolve_rng(self, request: GenerationRequest) -> np.random.Generator | None:
        if request.rng is not None:
            return request.rng
        if request.sampling.seed is not None:
            return np.random.default_rng(request.sampling.seed)
        if request.sampling.temperature > 0:
            raise ValueError("temperature sampling requires a seed or rng")
        return None

    # ---- stepping --------------------------------------------------------------

    @property
    def has_unfinished(self) -> bool:
        return bool(self._waiting or self._active)

    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    @property
    def outputs(self) -> list[GenerationOutput]:
        """All outputs completed over the server's lifetime."""
        return list(self._outputs)

    def step(self) -> list[GenerationOutput]:
        """Admit + one decode step for every active session.

        Returns the requests that finished during this step.
        """
        self._admit()
        finished: list[GenerationOutput] = []
        for session in list(self._active):
            self._decode_one(session)
            if session.done:
                self._active.remove(session)
                finished.append(self._finish(session))
        self._clock += 1.0
        return finished

    def run(self) -> list[GenerationOutput]:
        """Step until all queued requests finish; returns their outputs."""
        outputs: list[GenerationOutput] = []
        while self.has_unfinished:
            outputs.extend(self.step())
        return sorted(outputs, key=lambda o: o.request_id)

    # ---- internals -------------------------------------------------------------

    def _admit(self) -> None:
        while self._waiting and len(self._active) < self.config.max_concurrency:
            if not self._active:
                # New busy period: fresh Algorithm-2 state (thresholds kept).
                self.manager.reset()
            session = self._waiting.popleft()
            self._prefill(session)
            session.start_s = self._clock
            self._active.append(session)
            # The prompt's KV lands on the GPU: account it immediately.
            self._advance_memory(session)

    def _prefill(self, session: _Session) -> None:
        """Prefill mirroring ``TransformerLM.generate``'s two entry modes.

        _prefill/_decode_one deliberately open-code the generate() loop:
        continuous batching needs one-step-at-a-time control that the
        closed loop can't provide. Equivalence with the model path is
        pinned by tests/test_api_server.py (wrapper == direct generate,
        batched == solo).
        """
        prompt = session.request.prompt_ids
        policy = session.policy
        if policy is not None and hasattr(policy, "reset"):
            policy.reset()
        sparse_first = self.config.sparse_from_first_token and prompt.size >= 2
        if sparse_first:
            self.model.prefill(prompt[:-1], session.cache)
            if policy is not None:
                policy.begin_generation(prompt[:-1], session.cache)
            session.pending = int(prompt[-1])
        else:
            logits = self.model.prefill(prompt, session.cache)
            if policy is not None:
                policy.begin_generation(prompt, session.cache)
            session.prefill_token = self._sample(session, logits)

    def _decode_one(self, session: _Session) -> None:
        """One decode step for one session (one generated token)."""
        if session.steps_taken == 0 and session.prefill_token is not None:
            token = session.prefill_token
        else:
            policy = session.policy
            if policy is not None:
                policy.pre_step(
                    session.steps_taken, int(session.pending), session.cache
                )
            logits, selections, _ = self.model.decode_step(
                int(session.pending), session.cache, policy=policy
            )
            session.result.selections.append(selections)
            token = self._sample(session, logits)
        session.steps_taken += 1
        session.result.token_ids.append(int(token))
        self._advance_memory(session)
        if int(token) in session.sampling.stop_ids:
            session.result.stopped_by_eos = True
            session.finish_reason = "stop"
        elif session.steps_taken >= session.sampling.max_new_tokens:
            session.finish_reason = "length"
        else:
            session.pending = int(token)

    def _sample(self, session: _Session, logits: np.ndarray) -> int:
        return TransformerLM._sample(
            logits, session.sampling.temperature, session.rng
        )

    def _advance_memory(self, session: _Session) -> None:
        """Walk Algorithm 2 against the aggregate multi-request footprint.

        The aggregate KV footprint of R co-resident sessions is modelled as
        a single stream of their summed lengths; events fired by one
        session's growth are attributed to that session's stats.
        """
        aggregate = sum(s.current_len for s in self._active)
        session.offload_events.extend(self.manager.advance(aggregate))

    def _finish(self, session: _Session) -> GenerationOutput:
        stats = GenerationStats(
            result=session.result,
            budget=session.budget,
            offload_events=session.offload_events,
        )
        bytes_moved, reduction, overlap = self._transfer_stats(session)
        stats.bytes_transferred = bytes_moved
        stats.transfer_reduction = reduction
        stats.mean_selection_overlap = overlap
        output = GenerationOutput(
            request_id=session.request_id,
            token_ids=list(session.result.token_ids),
            finish_reason=session.finish_reason,
            stats=stats,
        )
        self._outputs.append(output)
        self._record_meter(session)
        return output

    def _transfer_stats(self, session: _Session) -> tuple[int, float, float]:
        """Elastic-loading accounting for one finished session.

        SpeContext selects once per step for all layers (its history is the
        global selection stream); layer-wise baselines are tracked per
        layer from the selections the decode steps actually used.
        """
        bytes_per_layer = self.model.config.kv_bytes_per_token_layer()
        policy = session.policy
        if isinstance(policy, SpeContextPolicy):
            tracker = ElasticTransferTracker(
                bytes_per_token=bytes_per_layer * self.model.config.n_layers,
                elastic=self.config.elastic,
            )
            for selection in policy.selection_history:
                tracker.observe(selection)
            return (
                tracker.total_bytes,
                tracker.transfer_reduction_vs_full_reload(),
                tracker.mean_overlap,
            )
        trackers: dict[int, ElasticTransferTracker] = {}
        for step_selections in session.result.selections:
            for layer, selection in step_selections.items():
                tracker = trackers.get(layer)
                if tracker is None:
                    tracker = trackers[layer] = ElasticTransferTracker(
                        bytes_per_token=bytes_per_layer,
                        elastic=self.config.elastic,
                    )
                tracker.observe(selection)
        if not trackers:
            return 0, 0.0, 0.0
        total = sum(t.total_bytes for t in trackers.values())
        full = sum(
            sum(s.selection_size for s in t.steps) * t.bytes_per_token
            for t in trackers.values()
        )
        reduction = 0.0 if full == 0 else 1.0 - total / full
        overlap = float(np.mean([t.mean_overlap for t in trackers.values()]))
        return total, reduction, overlap

    def _record_meter(self, session: _Session) -> None:
        record = Request(
            request_id=session.request_id,
            in_len=session.request.prompt_len,
            out_len=len(session.result.token_ids),
            arrival_s=session.arrival_s,
        )
        record.state = RequestState.FINISHED
        record.start_s = session.start_s
        record.finish_s = self._clock + 1.0  # this step completes at clock+1
        self.meter.record(record)
