"""SpeContextServer: continuous batching over a shared paged KV pool.

The server runs **actual numpy inference** for many concurrent sessions,
with the memory discipline of a production engine:

- ``add_request`` enqueues a :class:`~repro.api.request.GenerationRequest`;
  admission is gated by the shared :class:`~repro.kvcache.pool.PagedKVPool`
  and the :class:`~repro.core.adaptive.AdaptiveMemoryManager`'s Algorithm-1
  capacity (``max_concurrency`` remains only a hard cap on top);
- every session's KV footprint is block-accounted in the pool; full prompt
  blocks are **prefix-cached** so requests sharing a prompt prefix re-use
  resident blocks and skip recomputing the teacher's prefill for them —
  never changing logits, because the reused KV values are exactly what
  prefill would have produced;
- on pool exhaustion the scheduler policy (``fcfs`` / ``priority`` /
  ``sjf``, see :mod:`repro.serving.policies`) picks a victim to **preempt**:
  its blocks are freed and the session is requeued, either with its cache
  stashed host-side (``preempt_mode="swap"``) or to be replayed from the
  prompt (``preempt_mode="recompute"``). Both modes resume with
  bit-identical token streams for deterministic policies; swap is exact
  for every policy (the cache object is restored as-is);
- with ``prefill_chunk_tokens`` set, prompt prefill is **chunked**: an
  admitted session enters a ``PREFILLING`` state and its prompt streams
  in over several steps under a per-step token budget
  (``max_step_tokens``) shared with the decode wave, so one long-prompt
  arrival no longer freezes every active decode for its whole prefill.
  Chunking is bit-identical to monolithic prefill (a token's KV depends
  only on its predecessors — the same argument behind the prefix cache),
  full prompt blocks are prefix-published as chunks complete (a later
  request can hit blocks of a still-prefilling peer), and mid-prefill
  preemption resumes at the correct chunk in both preempt modes;
- ``step`` admits, ensures capacity, then runs **one decode step for every
  ready session** — continuous batching at step granularity — and emits
  per-token :class:`StreamEvent`s drainable via :meth:`pop_stream_events`.
  With ``batched_decode`` (default) the sessions' forward passes are fused
  into one server-wide batch (stacked hidden states, row-batched GEMMs,
  selection-shape-grouped attention; see
  :meth:`repro.models.llm.TransformerLM.decode_step_batch`), bit-identical
  to the sequential per-session reference loop;
- ``run`` steps until the queue drains and returns per-request
  :class:`~repro.api.request.GenerationOutput`s.

System accounting matches the one-shot engine: per-session elastic
transfer statistics, shared adaptive memory manager walking the
Algorithm-1 thresholds against the aggregate KV footprint, completions
feeding a :class:`~repro.serving.meter.ThroughputMeter` on a step-count
virtual clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.api.config import EngineConfig, SamplingParams
from repro.api.errors import (
    DeadlineExceededError,
    OverloadedError,
    PromptTooLongError,
    UnknownPolicyError,
)
from repro.api.request import GenerationOutput, GenerationRequest
from repro.core.adaptive import AdaptiveMemoryManager, OffloadEvent
from repro.core.elastic import ElasticTransferTracker
from repro.core.engine import GenerationStats
from repro.core.memory_model import MemoryModel
from repro.core.retrieval_head import SpeContextPolicy
from repro.distill.dlm import DraftModel
from repro.kvcache.cache import ModelKVCache
from repro.kvcache.pool import (
    BlockChainExport,
    BlockTable,
    PagedKVPool,
    PoolExhausted,
)
from repro.models.config import AttentionKind
from repro.models.llm import DecodeResult, SelectionPolicy, TransformerLM
from repro.retrieval.registry import make_policy, resolve_policy_name
from repro.serving.meter import ThroughputMeter
from repro.serving.policies import make_admission, make_scheduler
from repro.serving.request import Request, RequestState


@dataclass(frozen=True)
class StreamEvent:
    """One generated token, emitted at the step that produced it.

    A terminal *error* event (deadline expiry) carries ``token_id == -1``,
    ``finished=True`` and the error code in ``error``; it is not a
    generated token and consumers comparing token streams must exclude it.
    """

    request_id: int
    step: int
    token_id: int
    finished: bool
    error: str | None = None


@dataclass(frozen=True)
class RequestFailure:
    """One request terminated with a typed error instead of an output.

    The in-band error record paired with a terminal
    :class:`StreamEvent`: the server appends one per expired request,
    executors forward them (translated to global ids) and the HTTP layer
    turns them into structured 408/504 responses. Exactly one failure is
    recorded per failed request — failover resubmission drops failed
    requests from the in-flight set, so a replayed worker cannot re-fail
    them.
    """

    request_id: int
    code: str
    message: str
    http_status: int
    clock: float


@dataclass
class SpecDecodeStats:
    """Server-wide speculative-decoding counters.

    Kept on the server (not on per-request :class:`GenerationStats`) so
    speculative runs produce per-request stats bit-identical to
    non-speculative references; acceptance telemetry is observability on
    the side, mirroring how the pool keeps its own counters.
    """

    spec_steps: int = 0  # fused draft-verify passes executed
    drafted: int = 0  # draft tokens proposed to the verifier
    accepted: int = 0  # draft tokens accepted (excludes bonus tokens)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafted tokens the target model accepted."""
        if self.drafted == 0:
            return 0.0
        return self.accepted / self.drafted

    @property
    def tokens_per_spec_step(self) -> float:
        """Mean tokens committed per verify pass (>= 1.0; 1.0 = no wins)."""
        if self.spec_steps == 0:
            return 0.0
        return (self.spec_steps + self.accepted) / self.spec_steps


@dataclass(frozen=True)
class PreemptionEvent:
    """One session evicted from the pool under memory pressure."""

    request_id: int
    clock: float
    mode: str  # "swap" | "recompute"
    blocks_freed: int
    kv_bytes: int


@dataclass
class SessionExport:
    """Wholesale picklable snapshot of one in-flight session (live migration).

    Produced by :meth:`SpeContextServer.export_session`, consumed by
    :meth:`SpeContextServer.import_session` on another replica. The dense
    :class:`~repro.kvcache.cache.ModelKVCache`, the live policy object and
    the request RNG move *as objects* — the same argument that makes swap
    preemption exact for every policy makes migration exact: nothing about
    the session's numeric state is recomputed, so the continued stream is
    bit-identical to a never-migrated run by construction.

    ``chain`` optionally carries the session's published prefix blocks
    (:class:`~repro.kvcache.pool.BlockChainExport`) so the destination's
    prefix cache is warmed for later requests sharing the prefix.
    """

    request: GenerationRequest
    policy: SelectionPolicy | None
    budget: int
    cache: ModelKVCache
    rng: np.random.Generator | None
    result: DecodeResult
    state: str
    arrival_s: float
    start_s: float
    first_token_s: float | None
    pending: int | None
    prefill_token: int | None
    steps_taken: int
    offload_events: list[OffloadEvent]
    preemptions: int
    swap_bytes: int
    prefix_reused_tokens: int
    prefill_pos: int
    prefill_started: bool
    prefill_done: bool
    published_blocks: int
    replaying: bool
    chain: BlockChainExport | None = None

    @property
    def request_id(self) -> int:
        assert self.request.request_id is not None
        return self.request.request_id

    @property
    def prefill_remaining(self) -> int:
        """Prompt tokens this session still has to prefill somewhere."""
        if self.prefill_done:
            return 0
        return self.request.prompt_len - self.prefill_pos


class _SessionState:
    FRESH = "fresh"  # never prefilled
    PREFILLING = "prefilling"  # active, prompt streaming in chunk by chunk
    READY = "ready"  # active (or finished)
    SWAPPED = "swapped"  # preempted, cache stashed host-side
    RECOMPUTE = "recompute"  # preempted, cache dropped; replay on resume


@dataclass(eq=False)  # identity semantics: sessions live in queues/lists
class _Session:
    """One in-flight request: its cache, policy, blocks, decode progress."""

    request: GenerationRequest
    policy: SelectionPolicy | None
    budget: int  # the budget that actually governs selection
    cache: ModelKVCache
    rng: np.random.Generator | None
    result: DecodeResult
    arrival_s: float
    start_s: float = 0.0
    first_token_s: float | None = None
    pending: int | None = None  # next token to decode
    prefill_token: int | None = None  # step-0 token from full-prompt prefill
    steps_taken: int = 0
    finish_reason: str = ""
    offload_events: list[OffloadEvent] = field(default_factory=list)
    state: str = _SessionState.FRESH
    block_table: BlockTable = field(default_factory=BlockTable)
    preemptions: int = 0
    swap_bytes: int = 0
    prefix_reused_tokens: int = 0
    # ---- chunked-prefill cursor ----
    # prefill_pos counts prefill-input tokens whose KV is in the cache
    # (prefix-cache reuse included); prefill_started flips at the first
    # chunk (policy reset + prefix acquisition happen there); replaying
    # marks a recompute-resume that must not touch the sampler, the
    # prefix cache or the prefill-block stats (mirroring _replay).
    prefill_pos: int = 0
    prefill_started: bool = False
    prefill_done: bool = False
    published_blocks: int = 0  # full prompt blocks already prefix-published
    replaying: bool = False

    @property
    def request_id(self) -> int:
        assert self.request.request_id is not None
        return self.request.request_id

    @property
    def sampling(self) -> SamplingParams:
        return self.request.sampling

    @property
    def priority(self) -> int:
        return self.request.priority

    @property
    def prompt_len(self) -> int:
        return self.request.prompt_len

    @property
    def current_len(self) -> int:
        """KV footprint in tokens.

        Mid-prefill that is the chunk cursor (only ``prefill_pos`` prompt
        tokens are resident); once prefill completes it is the full
        prompt plus generated tokens, exactly the monolithic accounting.
        """
        if not self.prefill_done:
            return self.prefill_pos
        return self.request.prompt_len + len(self.result.token_ids)

    @property
    def projected_len(self) -> int:
        """Footprint once prefill lands: prompt plus generated tokens.

        Admission projections must charge a still-prefilling session its
        whole prompt (the blocks it is guaranteed to claim), not the
        partial cursor — otherwise chunked mode would over-admit relative
        to the monolithic server, whose active sessions always hold their
        full prompt.
        """
        return self.request.prompt_len + len(self.result.token_ids)

    @property
    def done(self) -> bool:
        return bool(self.finish_reason)


class SpeContextServer:
    """Request-level serving of the functional model with mixed policies."""

    def __init__(
        self,
        model: TransformerLM,
        config: EngineConfig | None = None,
        memory_model: MemoryModel | None = None,
        draft_model: DraftModel | None = None,
    ):
        self.model = model
        self.config = config or EngineConfig()
        # Draft model for speculative decoding: built from the target's own
        # embedding when enabled and not injected (tests inject truncated-
        # vocab variants). Plumbed here rather than via EngineConfig so the
        # config stays picklable for multiprocessing executor workers.
        if self.config.spec_decode_k > 0:
            self._draft = draft_model or DraftModel.from_teacher(model)
        else:
            self._draft = None
        self.spec_stats = SpecDecodeStats()
        if memory_model is None:
            memory_model = MemoryModel(
                model.config,
                self.config.dlm_bytes
                if self.config.dlm_bytes is not None
                else self._estimate_dlm_bytes(),
                self.config.spec,
                requests=self.config.requests,
                budget=self.config.budget,
            )
        self.memory_model = memory_model
        # One manager for the whole server: thresholds are computed once;
        # runtime state is reset between busy periods (idle -> first admit).
        self.manager = AdaptiveMemoryManager(self.memory_model)
        self.pool = PagedKVPool(
            self._pool_blocks(), block_size=self.config.block_size
        )
        self.scheduler = make_scheduler(self.config.scheduler)
        self.admission = make_admission(
            self.config.admission, **self.config.admission_opts
        )
        self.meter = ThroughputMeter()
        self._waiting: deque[_Session] = deque()
        self._active: list[_Session] = []
        self._outputs: list[GenerationOutput] = []
        self._stream: list[StreamEvent] = []
        self._failures: list[RequestFailure] = []
        self._preemption_log: list[PreemptionEvent] = []
        self._next_id = 0
        self._clock = 0.0
        self._step_prefill_tokens = 0
        # Live-migration traffic counters (observability only).
        self.migrated_in = 0
        self.migrated_out = 0

    def _pool_blocks(self) -> int:
        """Pool capacity in blocks.

        An explicit ``EngineConfig.pool_blocks`` wins (that is how tests
        and over-commit demos force pressure); otherwise the pool is sized
        from the adaptive manager's Algorithm-1 capacity — the aggregate
        sequence length servable with every layer offloaded — floored at
        one full-length request so degenerate specs stay runnable.
        """
        if self.config.pool_blocks is not None:
            return self.config.pool_blocks
        block = self.config.block_size
        derived = -(-self.manager.capacity_tokens() // block)
        floor = -(-self.model.config.max_position // block)
        return max(derived, floor, 1)

    def _estimate_dlm_bytes(self) -> int:
        """Retrieval-head bytes to charge the memory model (Eq. 6-8).

        When the default policy is specontext, per-request heads occupy
        real memory; the size is a pure function of the teacher's shapes
        (per-head Q/K projections plus the shared embedding slice, FP16),
        so the server's Algorithm-1 thresholds match the one-shot
        engine's for the same workload without building a head.
        """
        if (
            self.config.bos_id is None
            or resolve_policy_name(self.config.policy) != "specontext"
        ):
            return 0
        cfg = self.model.config
        dc = cfg.head_dim
        n_heads = (
            cfg.n_kv_heads
            if cfg.attention is AttentionKind.MLA
            else cfg.n_kv_heads * cfg.group_size
        )
        params = 2 * n_heads * dc * dc + cfg.vocab_size * dc
        return 2 * params

    def clear_history(self) -> None:
        """Drop accumulated outputs, meter records and stream events.

        Long-lived servers (and the engine's private single-session
        server) call this between runs so per-request bookkeeping does
        not grow without bound; queued/active sessions are unaffected.
        """
        self._outputs.clear()
        self._stream.clear()
        self._failures.clear()
        self._preemption_log.clear()
        self.meter.finished.clear()
        self.meter.rejected.clear()

    # ---- submission ------------------------------------------------------------

    def add_request(self, request: GenerationRequest) -> int:
        """Enqueue a request; returns its assigned request id.

        Policy and RNG resolution happen before any state changes, so a
        rejected submission (unknown policy, MLA mismatch, missing seed,
        prompt larger than the pool) leaves the server and the request
        object untouched and retryable.
        """
        if request.request_id is not None and request.request_id < self._next_id:
            raise ValueError(
                f"request_id {request.request_id} already used; ids must be "
                "unique and increasing"
            )
        peak_tokens = request.prompt_len + request.sampling.max_new_tokens
        if peak_tokens > self.model.config.max_position:
            # Without this check the request is admitted and decodes past
            # the cached RoPE table instead of failing at submission.
            raise PromptTooLongError(
                f"request needs up to {peak_tokens} positions (prompt "
                f"{request.prompt_len} + max_new_tokens "
                f"{request.sampling.max_new_tokens}) but the model's "
                f"max_position is {self.model.config.max_position}; shrink "
                "the prompt or max_new_tokens"
            )
        peak_blocks = self.pool.blocks_for_tokens(peak_tokens)
        if peak_blocks > self.pool.capacity:
            raise PromptTooLongError(
                f"request needs up to {peak_blocks} KV blocks but the pool "
                f"holds {self.pool.capacity}; raise pool_blocks or shrink "
                "the request"
            )
        if not isinstance(request.policy, str) and request.policy is not None:
            # A prebuilt policy owns mutable per-request state (K cache,
            # selection history); sharing one across in-flight sessions
            # would silently merge their token streams.
            for session in (*self._waiting, *self._active):
                if session.policy is request.policy:
                    raise ValueError(
                        "policy object is already bound to in-flight request "
                        f"{session.request_id}; prebuilt policies can only be "
                        "reused sequentially"
                    )
        reason = self.admission.should_admit(request, self)
        if reason is not None:
            # Shed before policy/RNG resolution: a doomed request must not
            # pay for retrieval-head construction, and the request object
            # stays untouched and retryable (no id is consumed).
            self._record_shed(request)
            raise OverloadedError(
                f"request shed by admission policy "
                f"{self.admission.name!r}: {reason}",
                retry_after_s=self.admission.retry_after_s(self),
            )
        try:
            policy = self._resolve_policy(request)
        except UnknownPolicyError:
            raise
        except KeyError as err:
            # The registry speaks KeyError; surface the typed error the
            # HTTP layer maps to a structured 4xx (still a KeyError, so
            # pre-existing callers keep working).
            raise UnknownPolicyError(
                err.args[0] if err.args else str(err)
            ) from err
        rng = self._resolve_rng(request)
        if request.request_id is None:
            request.request_id = self._next_id
        self._next_id = request.request_id + 1
        session = _Session(
            request=request,
            policy=policy,
            budget=self._effective_budget(request, policy),
            cache=self.model.new_cache(dtype=np.dtype(self.config.kv_dtype)),
            rng=rng,
            result=DecodeResult(
                prompt_len=request.prompt_len, token_ids=[], stopped_by_eos=False
            ),
            arrival_s=self._clock,
        )
        self._waiting.append(session)
        return request.request_id

    def _effective_budget(
        self, request: GenerationRequest, policy: SelectionPolicy | None
    ) -> int:
        """The budget that actually governs selection for this session.

        A prebuilt policy carries its own budget, which wins over the
        request/config values so stats never misreport what ran.
        """
        policy_budget = getattr(policy, "budget", None)
        if policy_budget is not None:
            return int(policy_budget)
        return request.budget or self.config.budget

    def _resolve_policy(self, request: GenerationRequest) -> SelectionPolicy | None:
        policy = request.policy if request.policy is not None else self.config.policy
        if not isinstance(policy, str):
            return policy  # prebuilt instance (sequential reuse, e.g. engine)
        # Config-level opts describe the config's *default* policy; they
        # must not leak into requests that name a different one.
        opts = dict(request.policy_opts)
        if resolve_policy_name(policy) == resolve_policy_name(self.config.policy):
            opts = {**self.config.policy_opts, **opts}
        budget = request.budget or self.config.budget
        if resolve_policy_name(policy) == "specontext":
            # Each concurrent session needs its own head (it owns a K
            # cache); identical seeding keeps batched runs bit-identical
            # to single-request runs.
            opts.setdefault("bos_id", self.config.bos_id)
            opts.setdefault("head_config", self.config.head_config)
            opts.setdefault("level", self.config.selection_level)
            if "head" not in opts and "rng" not in opts:
                opts["rng"] = np.random.default_rng(self.config.seed)
        return make_policy(policy, self.model, budget, **opts)

    def _resolve_rng(self, request: GenerationRequest) -> np.random.Generator | None:
        if request.rng is not None:
            return request.rng
        if request.sampling.seed is not None:
            return np.random.default_rng(request.sampling.seed)
        if request.sampling.temperature > 0:
            raise ValueError("temperature sampling requires a seed or rng")
        return None

    def _record_shed(self, request: GenerationRequest) -> None:
        """Meter a shed submission as rejected.

        Shed requests never consume a request id (they stay retryable), so
        the record carries a synthetic negative id unique among rejections.
        """
        record = Request(
            request_id=(
                request.request_id
                if request.request_id is not None
                else -(len(self.meter.rejected) + 1)
            ),
            in_len=request.prompt_len,
            out_len=request.sampling.max_new_tokens,
            arrival_s=self._clock,
        )
        record.state = RequestState.REJECTED
        self.meter.record(record)

    def abort(self, request_id: int) -> bool:
        """Drop an in-flight request (client disconnect, executor abort).

        The session is removed from whichever queue holds it and its pool
        blocks are freed; no output is produced and the meter records
        nothing (an abort is neither a completion nor a rejection).
        Returns False when the id is unknown or already finished — abort
        races against completion, so that is not an error.
        """
        for queue in (self._waiting, self._active):
            for session in list(queue):
                if session.request_id == request_id:
                    queue.remove(session)
                    self.pool.free_table(session.block_table)
                    return True
        return False

    # ---- live migration --------------------------------------------------------

    def export_session(self, request_id: int) -> SessionExport | None:
        """Drain one in-flight session into a portable snapshot.

        The session leaves this server entirely: it is removed from its
        queue and its pool blocks are freed (the published prefix chain is
        deep-copied into the export first, so the destination can re-publish
        it). An *active* session is stashed exactly like a swap preemption
        — the dense cache object becomes the snapshot, with the d2h leg
        charged here and the h2d leg at resume on the destination; waiting
        sessions keep their current resume state (fresh / swapped /
        recompute) unchanged. No output, stream event or meter record is
        produced: from the request's point of view nothing happened.

        Returns None when the id is unknown or already finished — a
        rebalance pass races against completion, so that is not an error.
        Must be called between steps, never mid-wave.
        """
        for queue in (self._waiting, self._active):
            for session in list(queue):
                if session.request_id != request_id:
                    continue
                chain: BlockChainExport | None = None
                if (
                    self.config.enable_prefix_cache
                    and session.published_blocks > 0
                    and len(session.block_table) > 0
                ):
                    chain = self.pool.export_chain(
                        session.request.prompt_ids,
                        session.block_table,
                        session.published_blocks,
                    )
                    if chain.n_blocks == 0:
                        chain = None
                queue.remove(session)
                self.pool.free_table(session.block_table)
                state = session.state
                if state in (_SessionState.READY, _SessionState.PREFILLING):
                    # Same exactness argument as swap preemption: the
                    # ModelKVCache object *is* the stash, so the resumed
                    # stream cannot diverge for any policy.
                    state = _SessionState.SWAPPED
                    session.swap_bytes += session.cache.nbytes()
                self.migrated_out += 1
                return SessionExport(
                    request=session.request,
                    policy=session.policy,
                    budget=session.budget,
                    cache=session.cache,
                    rng=session.rng,
                    result=session.result,
                    state=state,
                    arrival_s=session.arrival_s,
                    start_s=session.start_s,
                    first_token_s=session.first_token_s,
                    pending=session.pending,
                    prefill_token=session.prefill_token,
                    steps_taken=session.steps_taken,
                    offload_events=session.offload_events,
                    preemptions=session.preemptions,
                    swap_bytes=session.swap_bytes,
                    prefix_reused_tokens=session.prefix_reused_tokens,
                    prefill_pos=session.prefill_pos,
                    prefill_started=session.prefill_started,
                    prefill_done=session.prefill_done,
                    published_blocks=session.published_blocks,
                    replaying=session.replaying,
                    chain=chain,
                )
        return None

    def import_session(
        self, export: SessionExport, *, new_request_id: int | None = None
    ) -> int:
        """Adopt a migrated session; it resumes via the ordinary queue.

        The snapshot's cache/policy/rng objects are installed as-is and
        the session joins the waiting queue in its exported resume state;
        the existing activation paths (fresh prefill, swap re-claim,
        recompute replay) do the rest, so migration adds no new resume
        semantics. The exported prefix chain (if any) is re-published
        into this pool's cache first.

        By default the request keeps its exported id (the cluster
        frontend migrates global ids verbatim) — the id counter is
        bumped past it, bypassing the monotonicity check that guards
        *new* submissions. ``new_request_id`` rewrites the id instead:
        the executor path re-keys migrated sessions into the
        destination worker's local id space, where the exported source-
        local id could collide with an unrelated session. Returns the
        id the session now answers to.
        """
        request = export.request
        if new_request_id is not None:
            request.request_id = int(new_request_id)
        if request.request_id is None:
            raise ValueError("exported session lacks a request_id")
        rid = request.request_id
        for session in (*self._waiting, *self._active):
            if session.request_id == rid:
                raise ValueError(
                    f"request_id {rid} is already in flight on this replica"
                )
        peak_blocks = self.pool.blocks_for_tokens(
            request.prompt_len + request.sampling.max_new_tokens
        )
        if peak_blocks > self.pool.capacity:
            raise PromptTooLongError(
                f"migrated request needs up to {peak_blocks} KV blocks but "
                f"this pool holds {self.pool.capacity}"
            )
        if export.chain is not None:
            self.pool.import_chain(export.chain)
        session = _Session(
            request=request,
            policy=export.policy,
            budget=export.budget,
            cache=export.cache,
            rng=export.rng,
            result=export.result,
            arrival_s=export.arrival_s,
            start_s=export.start_s,
            first_token_s=export.first_token_s,
            pending=export.pending,
            prefill_token=export.prefill_token,
            steps_taken=export.steps_taken,
            offload_events=export.offload_events,
            state=export.state,
            preemptions=export.preemptions,
            swap_bytes=export.swap_bytes,
            prefix_reused_tokens=export.prefix_reused_tokens,
            prefill_pos=export.prefill_pos,
            prefill_started=export.prefill_started,
            prefill_done=export.prefill_done,
            published_blocks=export.published_blocks,
            replaying=export.replaying,
        )
        self._next_id = max(self._next_id, rid + 1)
        self.migrated_in += 1
        self._waiting.append(session)
        return rid

    def migratable_requests(self) -> list[tuple[int, int, bool]]:
        """Snapshot of in-flight sessions for rebalance planning.

        Returns ``(request_id, reserved_charge, prefill_done)`` per
        unfinished session, in queue order (waiting first) — the charge is
        the same ``prompt + max_new_tokens`` commitment
        :attr:`reserved_tokens` sums, so a planner can predict exactly how
        much load an export would move.
        """
        return [
            (
                s.request_id,
                s.prompt_len + s.sampling.max_new_tokens,
                s.prefill_done,
            )
            for s in (*self._waiting, *self._active)
        ]

    # ---- stepping --------------------------------------------------------------

    @property
    def clock(self) -> float:
        """The step-count virtual clock (one tick per ``step``)."""
        return self._clock

    def advance_clock_to(self, when: float) -> None:
        """Jump the idle clock forward (trace replay across arrival gaps)."""
        if when < self._clock:
            raise ValueError(
                f"clock may only move forward: {when} < {self._clock}"
            )
        self._clock = float(when)

    @property
    def has_unfinished(self) -> bool:
        return bool(self._waiting or self._active)

    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    @property
    def max_concurrency(self) -> int:
        """Hard cap on co-running sessions (part of the admission view)."""
        return self.config.max_concurrency

    @property
    def next_request_id(self) -> int:
        """The id the next auto-assigned submission would receive.

        The worker core re-keys migrated-in sessions here so an imported
        session's id can never collide with this server's own id stream.
        """
        return self._next_id

    @property
    def shedding(self) -> bool:
        """Whether the admission controller is currently refusing load."""
        return self.admission.is_shedding(self)

    @property
    def reserved_tokens(self) -> int:
        """Outstanding admission charge: peak KV tokens of unfinished work.

        Every unfinished session (waiting or active) is charged its full
        ``prompt + max_new_tokens`` — the commitment :meth:`_can_admit`
        holds capacity against, not the current partial footprint. The
        cluster frontend's least-loaded router reads this as the
        replica's load.
        """
        return sum(
            s.prompt_len + s.sampling.max_new_tokens
            for s in (*self._waiting, *self._active)
        )

    def audit_pool(self) -> None:
        """Full pool-invariant audit against every live session's chains.

        Called between waves (tests, chaos harness), so no speculative
        reservation may be outstanding: every draft-verify step promotes
        or releases before its wave ends. Raises
        :class:`~repro.kvcache.pool.PoolAuditError` on any violation.
        """
        self.pool.audit(
            tables=[
                s.block_table for s in (*self._waiting, *self._active)
            ],
            allow_spec_outstanding=False,
        )

    @property
    def outputs(self) -> list[GenerationOutput]:
        """All outputs completed over the server's lifetime."""
        return list(self._outputs)

    @property
    def preemption_log(self) -> list[PreemptionEvent]:
        """Every preemption since the last ``clear_history``."""
        return list(self._preemption_log)

    def pop_stream_events(self) -> list[StreamEvent]:
        """Drain the per-token stream accumulated since the last call.

        Events are appended in decode order within each step, so a client
        consuming them after every :meth:`step` sees each session's tokens
        as they are produced (the streaming view of continuous batching).
        """
        events = self._stream
        self._stream = []
        return events

    def pop_failures(self) -> list[RequestFailure]:
        """Drain typed per-request failures accumulated since the last call.

        One :class:`RequestFailure` per request the server terminated with
        an error (deadline expiry); executors forward these alongside
        stream events so the HTTP layer can answer 408/504.
        """
        failures = self._failures
        self._failures = []
        return failures

    @property
    def last_step_prefill_tokens(self) -> int:
        """Prompt tokens computed by the most recent ``step``.

        Counts real prefill forward-pass tokens (chunked or monolithic,
        including recompute replays), not prefix-cache reuse — the number
        the benchmark's per-step token-budget accounting reads.
        """
        return self._step_prefill_tokens

    def step(self) -> list[GenerationOutput]:
        """Admit, run prefill work, one decode step per ready session.

        With ``prefill_chunk_tokens`` unset (the default), admission runs
        each prompt's entire prefill inline — the monolithic reference.
        With it set, admitted sessions enter a ``PREFILLING`` state and
        the step spends a token budget on prefill chunks *alongside* the
        decode wave, so long prompts stream in over several steps while
        decodes keep ticking (no head-of-line blocking). Chunking never
        changes tokens: a token's KV depends only on its predecessors, so
        chunked prefill is bit-identical to monolithic prefill.

        With ``batched_decode`` (the default) the ready sessions' forward
        passes are fused into one server-wide batch; otherwise each session
        runs its own batch=1 pass. Both paths produce bit-identical token
        streams and selection histories. Returns the requests that finished
        during this step.
        """
        self._step_prefill_tokens = 0
        self._expire_deadlines()
        self._admit()
        self._prefill_phase()
        if self.config.batched_decode:
            finished = self._step_batched()
        else:
            finished = self._step_sequential()
        self._clock += 1.0
        return finished

    def _step_sequential(self) -> list[GenerationOutput]:
        """Reference loop: one full batch=1 forward pass per session."""
        finished: list[GenerationOutput] = []
        for session in list(self._active):
            if session not in self._active:
                continue  # preempted this step to make room for a peer
            if session.state != _SessionState.READY:
                continue  # still prefilling; no token to decode yet
            self._ensure_decode_capacity(session)
            if not self._spec_decode_one(session):
                self._decode_one(session)
            if session.done:
                self._active.remove(session)
                self.pool.free_table(session.block_table)
                finished.append(self._finish(session))
        return finished

    def _step_batched(self) -> list[GenerationOutput]:
        """Fused step: reserve capacity per session, decode in fused waves.

        Sessions are walked in the sequential loop's order. As long as
        each session's decode block comes straight off the free stack, it
        joins the current *wave*; when a reservation would need eviction
        or preemption, the wave decodes first — its completions free their
        blocks exactly as the sequential interleave (ensure A, decode A,
        ensure B, ...) would have — and only then does the reservation
        retry with the sequential path's eviction/preemption semantics.
        Preemption therefore never hits a reserved-but-undecoded session:
        victims either already decoded this step (like the sequential
        loop's earlier-in-order sessions) or have not been reserved yet
        (and are skipped below, like its preempted-before-their-turn
        ones). Under no pressure the whole step is one wave — a single
        server-wide forward pass.
        """
        finished: list[GenerationOutput] = []
        wave: list[_Session] = []
        for session in list(self._active):
            if session not in self._active:
                continue  # preempted this step to make room for a peer
            if session.state != _SessionState.READY:
                continue  # still prefilling; no token to decode yet
            needed = self.pool.blocks_for_tokens(session.current_len + 1) - len(
                session.block_table
            )
            if needed > self.pool.n_free and wave:
                finished.extend(self._flush_wave(wave))
                wave = []
            self._ensure_decode_capacity(session)
            wave.append(session)
        finished.extend(self._flush_wave(wave))
        return finished

    def _flush_wave(self, wave: list[_Session]) -> list[GenerationOutput]:
        """One fused forward pass + bookkeeping for ``wave``'s sessions.

        Post-decode bookkeeping runs in wave (= sequential) order so
        memory-manager walks and stream events match the sequential path
        event for event.
        """
        if not wave:
            return []
        # Sessions whose step-0 token is already known from full-prompt
        # prefill skip the forward pass entirely (HuggingFace semantics).
        forward = [
            s
            for s in wave
            if not (s.steps_taken == 0 and s.prefill_token is not None)
        ]
        committed: dict[int, list[int]] = {}
        specs: dict[int, tuple[list[int], list[int]]] = {}
        if forward and self._draft is not None:
            # Draft + reserve after the whole wave has its decode blocks,
            # so speculation never changes which sessions the wave rule
            # admitted or the eviction/preemption decisions made above.
            specs = self._spec_propose_batch(
                [s for s in forward if self._spec_eligible(s)]
            )
        if forward and not specs:
            for session in forward:
                if session.policy is not None:
                    session.policy.pre_step(
                        session.steps_taken, int(session.pending), session.cache
                    )
            logits, selections = self.model.decode_step_batch(
                [int(s.pending) for s in forward],
                [s.cache for s in forward],
                [s.policy for s in forward],
            )
            for row, session in enumerate(forward):
                session.result.selections.append(selections[row])
                committed[id(session)] = [self._sample(session, logits[row])]
        elif forward:
            seqs: list[list[int]] = []
            for session in forward:
                drafts = specs.get(id(session), ([], []))[0]
                seq = [int(session.pending)] + drafts
                seqs.append(seq)
                policy = session.policy
                if policy is None:
                    continue
                if id(session) in specs:
                    policy.spec_begin()
                    for t, token in enumerate(seq):
                        policy.pre_step(
                            session.steps_taken + t, int(token), session.cache
                        )
                else:
                    policy.pre_step(
                        session.steps_taken, int(session.pending), session.cache
                    )
            logits_list, selections_list = self.model.decode_spec_batch(
                seqs, [s.cache for s in forward], [s.policy for s in forward]
            )
            for row, session in enumerate(forward):
                if id(session) in specs:
                    reserved = specs[id(session)][1]
                    committed[id(session)] = self._spec_finalize(
                        session,
                        seqs[row],
                        logits_list[row],
                        selections_list[row],
                        reserved,
                    )
                else:
                    session.result.selections.append(selections_list[row][0])
                    committed[id(session)] = [
                        self._sample(session, logits_list[row][0])
                    ]

        finished: list[GenerationOutput] = []
        for session in wave:
            tokens = committed.get(id(session))
            if tokens is None:
                tokens = [int(session.prefill_token)]
            for token in tokens:
                self._commit_token(session, int(token))
            if session.done:
                self._active.remove(session)
                self.pool.free_table(session.block_table)
                finished.append(self._finish(session))
        return finished

    def run(self) -> list[GenerationOutput]:
        """Step until all queued requests finish; returns their outputs."""
        outputs: list[GenerationOutput] = []
        while self.has_unfinished:
            outputs.extend(self.step())
        return sorted(outputs, key=lambda o: o.request_id)

    # ---- deadlines -------------------------------------------------------------

    def _deadline_blown(self, session: _Session) -> str | None:
        """Which deadline (if any) the session can no longer meet.

        Checked against the *earliest* clock any token produced this step
        can land at (``clock + 1``): a session is expired only once even
        an immediate token would arrive late, so a request that makes its
        deadline exactly is never cancelled. Deterministic on the virtual
        clock — replaying the same trace expires the same requests at the
        same steps.
        """
        sampling = session.sampling
        earliest = self._clock + 1.0
        ttft = sampling.ttft_deadline_s
        if (
            ttft is not None
            and session.first_token_s is None
            and earliest - session.arrival_s > ttft
        ):
            return "ttft"
        total = sampling.total_deadline_s
        if total is not None and earliest - session.arrival_s > total:
            return "total"
        return None

    def _expire_deadlines(self) -> None:
        """Cancel waiting/active sessions that already missed a deadline.

        Each expired session frees its pool blocks immediately — the
        whole point of deadline enforcement is that doomed work stops
        occupying capacity feasible requests need — and terminates with
        exactly one terminal error StreamEvent plus one
        :class:`RequestFailure` (408 for a blown TTFT deadline, 504 for a
        blown total deadline).
        """
        for queue in (self._waiting, self._active):
            for session in list(queue):
                kind = self._deadline_blown(session)
                if kind is None:
                    continue
                queue.remove(session)
                self.pool.free_table(session.block_table)
                deadline = (
                    session.sampling.ttft_deadline_s
                    if kind == "ttft"
                    else session.sampling.total_deadline_s
                )
                self._fail_session(
                    session,
                    DeadlineExceededError(
                        f"request {session.request_id} missed its {kind} "
                        f"deadline ({deadline:g} on the step clock; arrived "
                        f"at {session.arrival_s:g}, cancelled at "
                        f"{self._clock:g})",
                        kind=kind,
                    ),
                )

    def _fail_session(
        self, session: _Session, error: DeadlineExceededError
    ) -> None:
        """Terminate a session with a typed error: stream, failure, meter."""
        self._stream.append(
            StreamEvent(
                request_id=session.request_id,
                step=session.steps_taken,
                token_id=-1,
                finished=True,
                error=error.code,
            )
        )
        self._failures.append(
            RequestFailure(
                request_id=session.request_id,
                code=error.code,
                message=error.message,
                http_status=error.http_status,
                clock=self._clock,
            )
        )
        record = Request(
            request_id=session.request_id,
            in_len=session.prompt_len,
            out_len=session.sampling.max_new_tokens,
            arrival_s=session.arrival_s,
        )
        record.state = RequestState.REJECTED
        self.meter.record(record)

    # ---- admission -------------------------------------------------------------

    def _admit(self) -> None:
        while self._waiting and len(self._active) < self.config.max_concurrency:
            candidate = min(self._waiting, key=self.scheduler.admission_key)
            if self._active and not self._can_admit(candidate):
                break
            if not self._active:
                # New busy period: fresh Algorithm-2 state (thresholds kept).
                self.manager.reset()
            self._waiting.remove(candidate)
            self._activate(candidate)

    def _can_admit(self, session: _Session) -> bool:
        """Memory-pressure admission: manager thresholds + pool headroom.

        The projected aggregate charges the candidate's full generation
        budget (its KV grows to ``prompt + max_new_tokens`` if it runs to
        length), and the pool must be able to produce the candidate's
        prompt blocks from free or cache-evictable blocks without
        preempting an active session. Still-prefilling sessions are
        charged their whole prompt — including the blocks their remaining
        chunks have not claimed yet — so chunked mode admits exactly what
        the monolithic server (whose actives always hold their full
        prompt) would.
        """
        projected = (
            sum(s.projected_len for s in self._active)
            + session.prompt_len
            + session.sampling.max_new_tokens
        )
        if not self.manager.admits(projected):
            return False
        needed = self.pool.blocks_for_tokens(session.projected_len)
        reserved = sum(
            max(
                0,
                self.pool.blocks_for_tokens(s.projected_len)
                - len(s.block_table),
            )
            for s in self._active
            if not s.prefill_done
        )
        return self.pool.can_allocate(needed + reserved)

    def _activate(self, session: _Session) -> None:
        chunked = self.config.prefill_chunk_tokens is not None
        if session.state == _SessionState.FRESH:
            session.start_s = self._clock
            if chunked:
                # Prefill is deferred to this step's budgeted prefill
                # phase; the session joins the active set with an empty
                # cache and a chunk cursor at zero.
                session.state = _SessionState.PREFILLING
                self._active.append(session)
                return
            self._prefill(session)
        elif session.state == _SessionState.SWAPPED:
            # Cache restored from the host stash as-is; charge the h2d leg.
            session.swap_bytes += session.cache.nbytes()
            if not session.prefill_done:
                # Preempted mid-prefill: the stash holds prefill_pos
                # tokens of KV; re-claim their blocks and keep chunking.
                session.state = _SessionState.PREFILLING
                self._active.append(session)
                self._extend_blocks(session, session.current_len)
                self._advance_memory(session)
                return
        elif session.state == _SessionState.RECOMPUTE:
            if chunked:
                # Rebuild through the budgeted chunk path instead of an
                # inline monolithic replay — a recompute-resume is the
                # same head-of-line hazard as a fresh long prompt.
                self._begin_rebuild(session)
                session.state = _SessionState.PREFILLING
                self._active.append(session)
                return
            self._replay(session)
        session.state = _SessionState.READY
        self._active.append(session)
        self._extend_blocks(session, session.current_len)
        # The prompt's KV lands on the GPU: account it immediately.
        self._advance_memory(session)

    # ---- pool bookkeeping ------------------------------------------------------

    def _extend_blocks(
        self, session: _Session, target_tokens: int, prefill: bool = False
    ) -> None:
        """Grow a session's block table to cover ``target_tokens`` tokens."""
        needed = self.pool.blocks_for_tokens(target_tokens) - len(
            session.block_table
        )
        for _ in range(needed):
            block_id = self._allocate_block(session)
            session.block_table.block_ids.append(block_id)
            if prefill:
                self.pool.stats.prefill_blocks_allocated += 1

    def _allocate_block(self, session: _Session) -> int:
        """One pool block for ``session``, preempting peers if exhausted."""
        while True:
            try:
                return self.pool.allocate()
            except PoolExhausted:
                self._preempt_for(session)

    def _ensure_decode_capacity(self, session: _Session) -> None:
        """Reserve the block the about-to-be-generated token will occupy."""
        self._extend_blocks(session, session.current_len + 1)

    def _preempt_for(self, session: _Session) -> None:
        candidates = [s for s in self._active if s is not session]
        if not candidates:
            raise PoolExhausted(
                f"pool of {self.pool.capacity} blocks exhausted by request "
                f"{session.request_id} alone; submission validation should "
                "have rejected it"
            )
        victim = min(candidates, key=self.scheduler.victim_key)
        self._preempt(victim)

    def _preempt(self, victim: _Session) -> None:
        """Evict one active session: free its blocks, requeue it."""
        self._active.remove(victim)
        blocks_freed = len(victim.block_table)
        self.pool.free_table(victim.block_table)
        kv_bytes = victim.cache.nbytes()
        if self.config.preempt_mode == "swap":
            # The ModelKVCache object *is* the host stash; the d2h leg is
            # charged now, the h2d leg at resume.
            victim.state = _SessionState.SWAPPED
            victim.swap_bytes += kv_bytes
        else:
            victim.state = _SessionState.RECOMPUTE
        victim.preemptions += 1
        self._waiting.append(victim)
        self._preemption_log.append(
            PreemptionEvent(
                request_id=victim.request_id,
                clock=self._clock,
                mode=self.config.preempt_mode,
                blocks_freed=blocks_freed,
                kv_bytes=kv_bytes,
            )
        )

    # ---- chunked prefill -------------------------------------------------------

    def _prefill_phase(self) -> None:
        """Spend this step's token budget on prefill chunks.

        Ready sessions reserve one budget token each for the decode wave;
        the remainder goes to still-prefilling sessions in the scheduler's
        admission order (``sjf`` lets short prompts slip past a long
        prefill, ``fcfs`` keeps strict arrival order). With no
        ``max_step_tokens`` every prefilling session advances one chunk
        per step. Sessions whose prefill completes here join this step's
        decode wave — exactly when the monolithic path would have decoded
        them.
        """
        if self.config.prefill_chunk_tokens is None:
            return
        chunk = self.config.prefill_chunk_tokens
        budget = self.config.max_step_tokens
        if budget is not None:
            budget -= sum(
                1 for s in self._active if s.state == _SessionState.READY
            )
        prefilling = sorted(
            (s for s in self._active if s.state == _SessionState.PREFILLING),
            key=self.scheduler.admission_key,
        )
        for session in prefilling:
            while (
                session in self._active
                and session.state == _SessionState.PREFILLING
            ):
                take = chunk if budget is None else min(chunk, budget)
                if take <= 0:
                    return  # budget exhausted; decoders run, prefill waits
                consumed = self._prefill_chunk(session, take)
                if budget is None:
                    break  # unbudgeted: one chunk per session per step
                budget -= consumed

    def _prefill_chunk(self, session: _Session, max_tokens: int) -> int:
        """Advance one session's prefill by at most ``max_tokens`` tokens.

        The first chunk resets the policy and acquires any cached prefix
        (deferred from activation so a peer publishing blocks in the
        meantime is still hit); every chunk claims the pool blocks its KV
        lands in and publishes newly completed full prompt blocks, so a
        later request can reuse blocks of this *still-prefilling*
        session. Returns the number of prompt tokens computed.
        """
        prompt = session.request.prompt_ids
        sparse_first = self.config.sparse_from_first_token and prompt.size >= 2
        prefill_ids = prompt[:-1] if sparse_first else prompt
        policy = session.policy
        if not session.prefill_started:
            session.prefill_started = True
            if policy is not None and hasattr(policy, "reset"):
                policy.reset()
            if not session.replaying:
                reused = self._acquire_prefix(session, prompt, prefill_ids.size)
                session.prefill_pos = reused
                session.published_blocks = reused // self.pool.block_size
        take = min(max_tokens, int(prefill_ids.size) - session.prefill_pos)
        segment = prefill_ids[session.prefill_pos : session.prefill_pos + take]
        logits = self.model.prefill(segment, session.cache)
        session.prefill_pos += take
        self._step_prefill_tokens += take
        self._extend_blocks(
            session, session.prefill_pos, prefill=not session.replaying
        )
        self._publish_chunk_blocks(session, prompt, int(prefill_ids.size))
        if session.prefill_pos >= prefill_ids.size:
            self._finish_prefill(session, logits, sparse_first, prefill_ids)
        else:
            self._advance_memory(session)
        return take

    def _publish_chunk_blocks(
        self, session: _Session, prompt: np.ndarray, prefill_len: int
    ) -> None:
        """Publish prompt blocks completed by the latest chunk."""
        if not self.config.enable_prefix_cache or session.replaying:
            return
        n_full = min(session.prefill_pos, prefill_len) // self.pool.block_size
        self._write_and_publish_blocks(
            session, prompt, session.published_blocks, n_full
        )
        session.published_blocks = n_full

    def _write_and_publish_blocks(
        self, session: _Session, prompt: np.ndarray, start: int, n_full: int
    ) -> None:
        """Attach payloads for table blocks [start, n_full) and publish.

        The one place prompt KV is sliced out of the dense cache into
        pool blocks — shared by monolithic prefill (one call for the
        whole prompt) and chunked prefill (one call per chunk, resumed
        publications passing the cursor as ``start``).
        """
        if n_full <= start:
            return
        block = self.pool.block_size
        for i in range(start, n_full):
            payload = [
                (
                    layer.keys[:, :, i * block : (i + 1) * block, :],
                    layer.values[:, :, i * block : (i + 1) * block, :],
                )
                for layer in session.cache.layers
            ]
            self.pool.write_block(session.block_table, i, payload)
        self.pool.publish_prefix(
            prompt, session.block_table, n_full, start_block=start
        )

    def _finish_prefill(
        self,
        session: _Session,
        logits: np.ndarray,
        sparse_first: bool,
        prefill_ids: np.ndarray,
    ) -> None:
        """Last chunk landed: arm the session for decoding this step."""
        was_replaying = session.replaying
        policy = session.policy
        if policy is not None:
            policy.begin_generation(prefill_ids, session.cache)
        if sparse_first:
            session.pending = int(session.request.prompt_ids[-1])
        elif not was_replaying:
            # A replay keeps its original prefill_token: the sampler (and
            # the request rng stream) must not be consulted twice.
            session.prefill_token = self._sample(session, logits)
        session.prefill_done = True
        session.state = _SessionState.READY
        if was_replaying:
            self._replay_decodes(session)
            session.replaying = False
        self._extend_blocks(
            session, session.current_len, prefill=not was_replaying
        )
        self._advance_memory(session)

    def _begin_rebuild(self, session: _Session) -> None:
        """Route a recompute-preempted session back through chunked prefill.

        Mirrors ``_replay``'s contract: fresh cache and table, no prefix
        acquisition or publication, no prefill-block stats, and — when
        the session had sampled progress — a forced decode replay at
        completion that never consults the sampler. A victim with no
        sampled progress (preempted mid-prefill, or a sparse-first
        session before its first step) restarts as a fresh prefill
        instead, which *is* allowed to hit the prefix cache: nothing was
        drawn from its rng, so the restart is exact either way.
        """
        session.cache = self.model.new_cache(dtype=np.dtype(self.config.kv_dtype))
        session.block_table = BlockTable()
        session.prefill_pos = 0
        session.prefill_started = False
        session.prefill_done = False
        session.replaying = (
            session.prefill_token is not None or session.steps_taken > 0
        )
        if not session.replaying:
            session.pending = None

    # ---- prefill / replay ------------------------------------------------------

    def _prefill(self, session: _Session) -> None:
        """Prefill mirroring ``TransformerLM.generate``'s two entry modes,
        with prefix-cache reuse of full prompt blocks.

        _prefill/_decode_one deliberately open-code the generate() loop:
        continuous batching needs one-step-at-a-time control that the
        closed loop can't provide. Equivalence with the model path is
        pinned by tests/test_api_server.py (wrapper == direct generate,
        batched == solo) and tests/test_serving_traces.py (prefix hits and
        preemption never change tokens).
        """
        prompt = session.request.prompt_ids
        policy = session.policy
        if policy is not None and hasattr(policy, "reset"):
            policy.reset()
        sparse_first = self.config.sparse_from_first_token and prompt.size >= 2
        prefill_ids = prompt[:-1] if sparse_first else prompt
        session.prefill_started = True
        reused = self._acquire_prefix(session, prompt, prefill_ids.size)
        remaining = prefill_ids[reused:]
        self._step_prefill_tokens += int(remaining.size)
        if sparse_first:
            self.model.prefill(remaining, session.cache)
            if policy is not None:
                policy.begin_generation(prefill_ids, session.cache)
            session.pending = int(prompt[-1])
        else:
            logits = self.model.prefill(remaining, session.cache)
            if policy is not None:
                policy.begin_generation(prefill_ids, session.cache)
            session.prefill_token = self._sample(session, logits)
        session.prefill_pos = int(prefill_ids.size)
        session.prefill_done = True
        self._publish_prefix(session, prompt, prefill_ids.size)
        session.published_blocks = prefill_ids.size // self.pool.block_size

    def _acquire_prefix(
        self, session: _Session, prompt: np.ndarray, prefill_len: int
    ) -> int:
        """Load cached prefix blocks into the session cache; returns tokens.

        At most ``prefill_len - 1`` tokens are reused so at least one
        prompt token always goes through the real prefill (the non-sparse
        path needs last-token logits; the sparse path needs a non-empty
        chunk). The copied KV values are the ones prefill produced for the
        donor request, and a token's KV depends only on the tokens before
        it — so the resumed prefill computes logits bit-identical to an
        uncached run.
        """
        if not self.config.enable_prefix_cache or prefill_len < 2:
            return 0
        chain = self.pool.match_prefix(prompt, prefill_len - 1)
        if not chain:
            return 0
        self.pool.acquire_prefix(chain, session.block_table)
        # Batch-gather the whole resident chain: one append per layer
        # instead of one per (block, layer).
        payload = self.pool.gather_chain(chain)
        for layer_index, (keys, values) in enumerate(payload):
            session.cache[layer_index].append(keys, values)
        reused = len(chain) * self.pool.block_size
        session.prefix_reused_tokens = reused
        return reused

    def _publish_prefix(
        self, session: _Session, prompt: np.ndarray, prefill_len: int
    ) -> None:
        """Publish this prompt's full blocks for reuse by later requests."""
        self._extend_blocks(session, session.current_len, prefill=True)
        if not self.config.enable_prefix_cache:
            return
        n_full = prefill_len // self.pool.block_size
        reused = session.prefix_reused_tokens // self.pool.block_size
        self._write_and_publish_blocks(session, prompt, reused, n_full)

    def _replay(self, session: _Session) -> None:
        """Rebuild a recompute-preempted session's cache and policy state.

        Prefill runs again and every already-generated token is replayed
        as a *forced* decode step — the sampler is never consulted, so the
        request RNG stream is untouched and the continuation is
        bit-identical for policies whose state is a deterministic function
        of the replayed inputs.
        """
        session.cache = self.model.new_cache(dtype=np.dtype(self.config.kv_dtype))
        session.block_table = BlockTable()
        prompt = session.request.prompt_ids
        policy = session.policy
        if policy is not None and hasattr(policy, "reset"):
            policy.reset()
        sparse_first = self.config.sparse_from_first_token and prompt.size >= 2
        prefill_ids = prompt[:-1] if sparse_first else prompt
        self.model.prefill(prefill_ids, session.cache)
        self._step_prefill_tokens += int(prefill_ids.size)
        if policy is not None:
            policy.begin_generation(prefill_ids, session.cache)
        session.prefill_pos = int(prefill_ids.size)
        session.prefill_done = True
        self._replay_decodes(session)

    def _replay_decodes(self, session: _Session) -> None:
        """Replay every already-generated token as a *forced* decode step.

        The sampler is never consulted, so the request RNG stream is
        untouched and the continuation is bit-identical for policies
        whose state is a deterministic function of the replayed inputs.
        """
        prompt = session.request.prompt_ids
        policy = session.policy
        sparse_first = self.config.sparse_from_first_token and prompt.size >= 2
        session.result.selections.clear()
        pending: int | None = int(prompt[-1]) if sparse_first else None
        for step, token in enumerate(session.result.token_ids):
            if step == 0 and session.prefill_token is not None:
                pending = int(token)
                continue
            if policy is not None:
                policy.pre_step(step, int(pending), session.cache)
            _, selections, _ = self.model.decode_step(
                int(pending), session.cache, policy=policy
            )
            session.result.selections.append(selections)
            pending = int(token)
        if pending is not None:
            session.pending = pending

    # ---- speculative decoding --------------------------------------------------

    def _spec_eligible(self, session: _Session) -> bool:
        """Whether a ready session may run a draft-verify step.

        Speculation is restricted to greedy sessions: acceptance is a
        longest-prefix match against argmax, which is only provably
        stream-preserving at temperature 0 (and sampled sessions' RNG
        streams must not be touched out of step order). Prebuilt policies
        must implement the spec_begin/spec_commit rollback protocol; at
        least two tokens must remain so a draft plus its verifier row fit
        under ``max_new_tokens``.
        """
        if self._draft is None:
            return False
        if session.sampling.temperature > 0:
            return False
        if session.steps_taken == 0 and session.prefill_token is not None:
            return False  # step-0 shortcut commits without a forward pass
        policy = session.policy
        if policy is not None and not (
            hasattr(policy, "spec_begin") and hasattr(policy, "spec_commit")
        ):
            return False
        return session.sampling.max_new_tokens - session.steps_taken >= 2

    def _spec_propose(
        self, session: _Session
    ) -> tuple[list[int], list[int]]:
        """Draft tokens and reserve their pool blocks for one session.

        The draft length is capped so a fully accepted run (k drafts + one
        bonus token) lands exactly on ``max_new_tokens``, then trimmed to
        the blocks the free stack can supply — speculation never evicts
        prefix-cache blocks and never preempts a peer, so it cannot change
        scheduling decisions relative to a non-speculative run. Returns
        ``(drafts, reserved_block_ids)``; both empty when the session
        cannot speculate this step (out-of-map token, no free blocks).
        """
        k = self._spec_budget(session)
        if k < 1:
            return [], []
        drafts = self._draft.draft(self._spec_stream(session), k)
        return self._spec_reserve(session, drafts)

    def _spec_budget(self, session: _Session) -> int:
        """Draft length cap for one session this step."""
        return min(
            self.config.spec_decode_k,
            session.sampling.max_new_tokens - session.steps_taken - 1,
        )

    def _spec_stream(self, session: _Session) -> np.ndarray:
        """The committed token stream the draft model conditions on."""
        return np.concatenate(
            [
                np.asarray(session.request.prompt_ids, dtype=np.int64),
                np.asarray(session.result.token_ids, dtype=np.int64),
            ]
        )

    def _spec_propose_batch(
        self, sessions: list[_Session]
    ) -> dict[int, tuple[list[int], list[int]]]:
        """Draft for a whole wave in one batched student pass.

        One :meth:`~repro.distill.dlm.DraftModel.draft_batch` call covers
        every speculating session (drafted to the wave's longest budget,
        trimmed per session — greedy drafting is prefix-stable, so the
        trim equals a shorter solo draft). Block reservation then runs in
        wave order, so the free stack is consumed exactly as the
        session-at-a-time path would.
        """
        todo = [s for s in sessions if self._spec_budget(s) >= 1]
        if not todo:
            return {}
        budgets = [self._spec_budget(s) for s in todo]
        batch = getattr(self._draft, "draft_batch", None)
        if batch is not None:
            drafted = batch(
                [self._spec_stream(s) for s in todo], max(budgets)
            )
        else:  # duck-typed draft models (tests, oracles) need only .draft
            drafted = [
                self._draft.draft(self._spec_stream(s), b)
                for s, b in zip(todo, budgets)
            ]
        specs: dict[int, tuple[list[int], list[int]]] = {}
        for session, budget, drafts in zip(todo, budgets, drafted):
            drafts, reserved = self._spec_reserve(session, drafts[:budget])
            if drafts:
                specs[id(session)] = (drafts, reserved)
        return specs

    def _spec_reserve(
        self, session: _Session, drafts: list[int]
    ) -> tuple[list[int], list[int]]:
        """Trim a draft to the blocks the free stack can supply."""
        if not drafts:
            return [], []
        base_blocks = len(session.block_table)  # covers current_len + 1

        def extra(n_drafts: int) -> int:
            return max(
                0,
                self.pool.blocks_for_tokens(session.current_len + 1 + n_drafts)
                - base_blocks,
            )

        reserved = self.pool.reserve_spec(extra(len(drafts)))
        while drafts and extra(len(drafts)) > len(reserved):
            drafts.pop()
        if not drafts:
            self.pool.release_spec(reserved)
            return [], []
        need = extra(len(drafts))
        if need < len(reserved):
            self.pool.release_spec(reserved[need:])
            reserved = reserved[:need]
        return drafts, reserved

    def _spec_finalize(
        self,
        session: _Session,
        seq: list[int],
        logits: np.ndarray,
        selections: list[dict[int, np.ndarray]],
        reserved: list[int],
    ) -> list[int]:
        """Greedy longest-prefix acceptance + rollback of the rejected tail.

        ``seq`` is ``[pending, d1..dk]`` and ``logits[t]`` the target's
        output at position t. The target's greedy token at row t-1 is what
        a sequential run would have fed at row t, so drafts are accepted
        while they match it — and every accepted row's inputs (and policy
        pre-steps) then exactly equal the sequential run's, making the
        committed stream bit-identical by induction. Full acceptance earns
        the bonus token from the last row. Rejected suffix state — cache
        entries, policy mutations, unused block reservations — is undone
        so nothing distinguishes the session from a never-drafted one.
        Returns the tokens to commit (always at least one).
        """
        d = len(seq) - 1
        greedy = [self._sample(session, logits[t]) for t in range(d + 1)]
        m = 1
        while (
            m <= d
            and seq[m] == greedy[m - 1]
            and greedy[m - 1] not in session.sampling.stop_ids
            and session.steps_taken + m < session.sampling.max_new_tokens
        ):
            m += 1
        base_len = session.cache.seq_len - len(seq)
        session.cache.truncate(base_len + m)
        if session.policy is not None:
            session.policy.spec_commit(m)
        need = max(
            0,
            self.pool.blocks_for_tokens(session.current_len + m)
            - len(session.block_table),
        )
        self.pool.promote_spec(session.block_table, reserved[:need])
        self.pool.release_spec(reserved[need:])
        for t in range(m):
            session.result.selections.append(selections[t])
        self.spec_stats.spec_steps += 1
        self.spec_stats.drafted += d
        self.spec_stats.accepted += m - 1
        return greedy[:m]

    def _spec_decode_one(self, session: _Session) -> bool:
        """Sequential-path draft-verify step; True when it committed tokens."""
        if not self._spec_eligible(session):
            return False
        drafts, reserved = self._spec_propose(session)
        if not drafts:
            return False
        seq = [int(session.pending)] + drafts
        policy = session.policy
        if policy is not None:
            policy.spec_begin()
            for t, token in enumerate(seq):
                policy.pre_step(session.steps_taken + t, int(token), session.cache)
        logits_list, selections_list = self.model.decode_spec_batch(
            [seq], [session.cache], [policy]
        )
        committed = self._spec_finalize(
            session, seq, logits_list[0], selections_list[0], reserved
        )
        for token in committed:
            self._commit_token(session, int(token))
        return True

    # ---- decode ----------------------------------------------------------------

    def _decode_one(self, session: _Session) -> None:
        """One decode step for one session (one generated token)."""
        if session.steps_taken == 0 and session.prefill_token is not None:
            token = session.prefill_token
        else:
            policy = session.policy
            if policy is not None:
                policy.pre_step(
                    session.steps_taken, int(session.pending), session.cache
                )
            logits, selections, _ = self.model.decode_step(
                int(session.pending), session.cache, policy=policy
            )
            session.result.selections.append(selections)
            token = self._sample(session, logits)
        self._commit_token(session, int(token))

    def _commit_token(self, session: _Session, token: int) -> None:
        """Record one generated token: stats, stop conditions, streaming."""
        session.steps_taken += 1
        session.result.token_ids.append(token)
        if session.first_token_s is None:
            session.first_token_s = self._clock + 1.0  # emitted at step's end
        self._advance_memory(session)
        if token in session.sampling.stop_ids:
            session.result.stopped_by_eos = True
            session.finish_reason = "stop"
        elif session.steps_taken >= session.sampling.max_new_tokens:
            session.finish_reason = "length"
        else:
            session.pending = token
        self._stream.append(
            StreamEvent(
                request_id=session.request_id,
                step=session.steps_taken - 1,
                token_id=token,
                finished=session.done,
            )
        )

    def _sample(self, session: _Session, logits: np.ndarray) -> int:
        return TransformerLM._sample(
            logits,
            session.sampling.temperature,
            session.rng,
            top_p=session.sampling.top_p,
        )

    def _advance_memory(self, session: _Session) -> None:
        """Walk Algorithm 2 against the aggregate multi-request footprint.

        The aggregate KV footprint of R co-resident sessions is modelled as
        a single stream of their summed lengths; events fired by one
        session's growth are attributed to that session's stats.
        """
        aggregate = sum(s.current_len for s in self._active)
        session.offload_events.extend(self.manager.advance(aggregate))

    def _finish(self, session: _Session) -> GenerationOutput:
        stats = GenerationStats(
            result=session.result,
            budget=session.budget,
            offload_events=session.offload_events,
        )
        bytes_moved, reduction, overlap = self._transfer_stats(session)
        stats.bytes_transferred = bytes_moved
        stats.transfer_reduction = reduction
        stats.mean_selection_overlap = overlap
        stats.preemptions = session.preemptions
        stats.swap_bytes = session.swap_bytes
        stats.prefix_reused_tokens = session.prefix_reused_tokens
        output = GenerationOutput(
            request_id=session.request_id,
            token_ids=list(session.result.token_ids),
            finish_reason=session.finish_reason,
            stats=stats,
        )
        self._outputs.append(output)
        self._record_meter(session)
        return output

    def _transfer_stats(self, session: _Session) -> tuple[int, float, float]:
        """Elastic-loading accounting for one finished session.

        SpeContext selects once per step for all layers (its history is the
        global selection stream); layer-wise baselines are tracked per
        layer from the selections the decode steps actually used.
        """
        bytes_per_layer = self.model.config.kv_bytes_per_token_layer()
        policy = session.policy
        if isinstance(policy, SpeContextPolicy):
            tracker = ElasticTransferTracker(
                bytes_per_token=bytes_per_layer * self.model.config.n_layers,
                elastic=self.config.elastic,
            )
            for selection in policy.selection_history:
                tracker.observe(selection)
            return (
                tracker.total_bytes,
                tracker.transfer_reduction_vs_full_reload(),
                tracker.mean_overlap,
            )
        trackers: dict[int, ElasticTransferTracker] = {}
        for step_selections in session.result.selections:
            for layer, selection in step_selections.items():
                tracker = trackers.get(layer)
                if tracker is None:
                    tracker = trackers[layer] = ElasticTransferTracker(
                        bytes_per_token=bytes_per_layer,
                        elastic=self.config.elastic,
                    )
                tracker.observe(selection)
        if not trackers:
            return 0, 0.0, 0.0
        total = sum(t.total_bytes for t in trackers.values())
        full = sum(
            sum(s.selection_size for s in t.steps) * t.bytes_per_token
            for t in trackers.values()
        )
        reduction = 0.0 if full == 0 else 1.0 - total / full
        overlap = float(np.mean([t.mean_overlap for t in trackers.values()]))
        return total, reduction, overlap

    def _record_meter(self, session: _Session) -> None:
        record = Request(
            request_id=session.request_id,
            in_len=session.request.prompt_len,
            out_len=len(session.result.token_ids),
            arrival_s=session.arrival_s,
        )
        record.state = RequestState.FINISHED
        record.start_s = session.start_s
        record.finish_s = self._clock + 1.0  # this step completes at clock+1
        record.first_token_s = session.first_token_s
        self.meter.record(record)
