"""Worker side of the process-parallel engine.

One worker wraps one :class:`~repro.serving.server.SpeContextServer`
replica behind a tiny command protocol. The same dispatcher
(:class:`WorkerCore`) backs both executors:

- the in-process executor calls :meth:`WorkerCore.handle` directly
  (the reference path — no serialization, no processes);
- the multiprocess executor runs :func:`worker_main` as a child
  process target and speaks the identical protocol over a
  ``multiprocessing`` pipe, so any behavioural difference between the
  two executors is a pipe/pickle bug by construction, never a
  semantics fork.

Protocol: the executor sends ``(op, args)`` tuples and the worker
answers ``("ok", payload)`` or ``("err", exception)`` — exceptions
(e.g. the typed validation errors from :mod:`repro.api.errors`) are
shipped back and re-raised executor-side; the worker loop survives
them. A ``shutdown`` op acknowledges and exits the loop.

Each ``step`` command drives exactly one server wave and returns a
:class:`StepResult` carrying everything the wave produced (stream
events, new preemptions, finished outputs, queue gauges). With
``pace_s_per_token`` set, the worker sleeps that long per token it
processed before replying — modeling per-device accelerator dwell.
Paced workers sleep *inside their own processes*, so the executor's
fan-out overlaps the dwell across workers; this is what the engine
benchmark measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.serving.meter import ThroughputMeter
from repro.serving.server import (
    PreemptionEvent,
    RequestFailure,
    SpeContextServer,
    StreamEvent,
)

# Progress beats and cooperative chaos sleeps tick in slices this long,
# so a slow-but-alive worker keeps advancing its progress counter often
# enough for any sane heartbeat to observe.
_BEAT_SLICE_S = 0.05

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.config import EngineConfig
    from repro.api.request import GenerationOutput, GenerationRequest
    from repro.kvcache.pool import PoolStats
    from repro.models.llm import TransformerLM


@dataclass(frozen=True)
class StepResult:
    """Everything one worker wave produced, shipped back to the executor.

    ``stream_events``/``finished`` speak the worker's *local* request
    ids; the executor translates them to global ids. ``step_tokens`` is
    the wave's total forward-pass work (decoded tokens plus prefill
    tokens), the quantity pacing charges dwell for.
    """

    stream_events: tuple[StreamEvent, ...]
    preemption_events: tuple[PreemptionEvent, ...]
    finished: tuple["GenerationOutput", ...]
    has_unfinished: bool
    clock: float
    n_active: int
    n_waiting: int
    step_tokens: int
    failures: tuple[RequestFailure, ...] = ()


@dataclass(frozen=True)
class WorkerSnapshot:
    """Point-in-time worker accounting, shipped back on a ``stats`` op."""

    meter: ThroughputMeter
    pool: "PoolStats"
    clock: float
    n_active: int
    n_waiting: int
    reserved_tokens: int
    shedding: bool = False
    n_rejected: int = 0


class WorkerCore:
    """Command dispatcher around one server replica.

    Ops (all total, all synchronous):

    - ``submit(request)`` -> local request id (or a validation error);
    - ``probe(prompt_ids)`` -> ``(reserved_tokens, queue_depth,
      prefix_match_tokens)`` — the router-facing load/affinity surface;
    - ``step()`` -> :class:`StepResult` for one wave;
    - ``advance_clock(when)`` -> jump the idle clock (trace gaps);
    - ``abort(local_id)`` -> bool, drop an in-flight request;
    - ``stats()`` -> :class:`WorkerSnapshot`;
    - ``drain()`` -> step until the replica empties, one merged
      :class:`StepResult`;
    - ``audit()`` -> run the pool-invariant audit in-process (raises
      :class:`~repro.kvcache.pool.PoolAuditError` on violation);
    - ``migratable()`` -> ``(local_id, charge, prefill_done)`` per
      unfinished session — the executor's rebalance planning surface;
    - ``export_kv(local_id)`` -> :class:`~repro.serving.server
      .SessionExport` (or None if finished) — the session leaves this
      replica entirely, KV blocks freed, published chain deep-copied
      into the export;
    - ``import_kv(export)`` -> new local id — adopt a migrated session
      under a fresh id in this replica's local id space;
    - ``ping()`` -> ``"pong"`` (liveness probe).
    """

    def __init__(
        self,
        server: SpeContextServer,
        pace_s_per_token: float = 0.0,
        beat: Callable[[], None] | None = None,
    ):
        self.server = server
        self.pace_s_per_token = float(pace_s_per_token)
        # Progress beat: called at every command and in slices during
        # modeled dwell, so the executor's watchdog can tell a *slow*
        # worker (beats keep coming) from a *stalled* one (they stop).
        self._beat = beat or (lambda: None)
        self._preemption_cursor = 0
        self._chaos_fault: tuple[str, float] | None = None

    def handle(self, op: str, args: tuple) -> object:
        self._beat()
        method = getattr(self, f"_op_{op}", None)
        if method is None:
            raise ValueError(f"unknown worker op {op!r}")
        return method(*args)

    def _sleep_with_beats(self, total_s: float) -> None:
        """Sleep ``total_s`` in short slices, beating after each slice."""
        remaining = float(total_s)
        while remaining > 0:
            time.sleep(min(_BEAT_SLICE_S, remaining))
            remaining -= _BEAT_SLICE_S
            self._beat()

    # ---- ops -------------------------------------------------------------------

    def _op_submit(self, request: "GenerationRequest") -> int:
        return self.server.add_request(request)

    def _op_probe(self, prompt_ids: np.ndarray) -> tuple[int, int, int]:
        server = self.server
        return (
            server.reserved_tokens,
            server.n_waiting,
            server.pool.longest_prefix_match(prompt_ids),
        )

    def _op_step(self) -> StepResult:
        return self._step()

    def _op_advance_clock(self, when: float) -> None:
        self.server.advance_clock_to(when)

    def _op_abort(self, request_id: int) -> bool:
        return self.server.abort(request_id)

    def _op_stats(self) -> WorkerSnapshot:
        server = self.server
        return WorkerSnapshot(
            meter=server.meter,
            pool=server.pool.stats,
            clock=server.clock,
            n_active=server.n_active,
            n_waiting=server.n_waiting,
            reserved_tokens=server.reserved_tokens,
            shedding=server.shedding,
            n_rejected=len(server.meter.rejected),
        )

    def _op_drain(self) -> StepResult:
        results = [self._step()]
        while self.server.has_unfinished:
            results.append(self._step())
        last = results[-1]
        return StepResult(
            stream_events=tuple(
                e for r in results for e in r.stream_events
            ),
            preemption_events=tuple(
                e for r in results for e in r.preemption_events
            ),
            finished=tuple(o for r in results for o in r.finished),
            has_unfinished=last.has_unfinished,
            clock=last.clock,
            n_active=last.n_active,
            n_waiting=last.n_waiting,
            step_tokens=sum(r.step_tokens for r in results),
            failures=tuple(f for r in results for f in r.failures),
        )

    # Liveness probe addressed to tests and external tooling; the
    # executor's watchdog reads the shared progress counter instead.
    def _op_ping(self) -> str:  # repro: allow(unused-op): test liveness probe
        return "pong"

    def _op_migratable(self) -> list[tuple[int, int, bool]]:
        """Local-id snapshot of unfinished sessions for rebalance planning."""
        return self.server.migratable_requests()

    def _op_export_kv(self, request_id: int):
        """Drain one session into a portable snapshot (live migration).

        Returns the :class:`~repro.serving.server.SessionExport` (or
        None when the id is unknown or finished — a rebalance pass races
        against completion). The snapshot carries the dense KV cache,
        the live policy/RNG objects and the published prefix chain; it
        pickles across the pipe like any other reply.
        """
        return self.server.export_session(request_id)

    def _op_import_kv(self, export) -> int:
        """Adopt a migrated session under a fresh local request id.

        The exported id is source-local and could collide with an
        unrelated session here, so the session is re-keyed into this
        replica's own id space; the executor maps the returned local id
        back to the request's global id.
        """
        return self.server.import_session(
            export, new_request_id=self.server.next_request_id
        )

    def _op_audit(self) -> bool:
        """Run the pool-invariant audit inside the worker process.

        Raises (and ships back) PoolAuditError on violation, so the
        chaos harness can audit every replica's pool — including child
        processes the executor cannot reach directly — after each plan.
        """
        self.server.audit_pool()
        return True

    def _op_chaos(self, kind: str, duration_s: float) -> str:
        """Arm a one-shot cooperative fault, executed at the next step.

        ``slow_step`` sleeps ``duration_s`` *with* progress beats — the
        worker is slow but demonstrably alive, and the executor's
        watchdog must let it finish. ``stall`` sleeps *without* beats —
        alive but frozen, exactly the failure mode the progress watchdog
        (not the exitcode check) has to catch. Arming is synchronous and
        cheap; the fault itself fires inside the next wave.
        """
        if kind not in ("slow_step", "stall"):
            raise ValueError(f"unknown chaos fault kind {kind!r}")
        self._chaos_fault = (kind, float(duration_s))
        return "armed"

    # ---- stepping --------------------------------------------------------------

    def _step(self) -> StepResult:
        fault = self._chaos_fault
        self._chaos_fault = None
        if fault is not None:
            kind, duration_s = fault
            if kind == "slow_step":
                self._sleep_with_beats(duration_s)
            else:  # stall: no beats — the progress watchdog must fire
                time.sleep(duration_s)
        server = self.server
        finished = server.step()
        events = server.pop_stream_events()
        failures = server.pop_failures()
        log = server.preemption_log
        new_preemptions = log[self._preemption_cursor:]
        self._preemption_cursor = len(log)
        # Terminal error events are not generated tokens; dwell is only
        # charged for real forward-pass work.
        step_tokens = (
            sum(1 for e in events if e.error is None)
            + server.last_step_prefill_tokens
        )
        if self.pace_s_per_token > 0.0 and step_tokens:
            # Modeled accelerator dwell: the device holding this replica
            # is busy for time proportional to the tokens it pushed this
            # wave. Sleeping here (inside the worker process) is what the
            # executor overlaps across workers; beating through the sleep
            # keeps a heavily paced worker distinguishable from a stall.
            self._sleep_with_beats(self.pace_s_per_token * step_tokens)
        return StepResult(
            stream_events=tuple(events),
            preemption_events=tuple(new_preemptions),
            finished=tuple(finished),
            has_unfinished=server.has_unfinished,
            clock=server.clock,
            n_active=server.n_active,
            n_waiting=server.n_waiting,
            step_tokens=step_tokens,
            failures=tuple(failures),
        )


def serve_connection(core: WorkerCore, conn) -> None:
    """Blocking command loop over one pipe endpoint.

    Receives ``(op, args)``, replies ``("ok", payload)`` or
    ``("err", exception)``. Application errors (validation rejections,
    bad ops) are shipped back and the loop continues; only ``shutdown``
    or a closed pipe ends it. A reply that itself fails to pickle is
    degraded to ``("err", RuntimeError(repr(...)))`` rather than
    silently killing the worker.
    """
    while True:
        try:
            op, args = conn.recv()
        except (EOFError, OSError):
            break
        if op == "shutdown":
            try:
                conn.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            reply = ("ok", core.handle(op, args))
        except Exception as err:  # ship it back; the worker survives
            reply = ("err", err)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        except Exception:
            conn.send(("err", RuntimeError(repr(reply[1]))))


def worker_main(
    conn,
    model: "TransformerLM",
    config: "EngineConfig",
    pace_s_per_token: float = 0.0,
    progress=None,
) -> None:
    """Child-process entry point: one server replica behind a pipe.

    ``progress`` is a shared ``multiprocessing.Value`` counter the worker
    bumps on every command and dwell slice; the parent's watchdog treats
    any advance as liveness, so only a worker that stops *progressing*
    (not one that is merely slow) misses the heartbeat deadline.
    """
    if progress is not None:

        def beat() -> None:
            progress.value += 1

    else:
        beat = None
    core = WorkerCore(SpeContextServer(model, config), pace_s_per_token, beat=beat)
    try:
        serve_connection(core, conn)
    finally:
        conn.close()
