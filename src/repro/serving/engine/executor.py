"""Executor layer: one request stream fanned out over N worker replicas.

The executor owns worker *handles* — uniform little surfaces exposing
``call(op, ...)`` plus a split ``begin_step``/``end_step`` — and all the
cluster-level logic lives once in :class:`ExecutorBase`, operating only
on that surface:

- **routing** through the shared router registry
  (:func:`repro.serving.policies.make_router`), with the same probe-once
  memoization and hit/miss accounting as
  :class:`~repro.serving.cluster.ClusterFrontend`;
- **global/local id translation**: the server requires each replica's
  request ids to be increasing, which a failover resubmission would
  violate, so the executor assigns global ids and submits clones that
  let each worker assign its own local id — stream events, outputs and
  preemption events are translated back at the merge point;
- **lockstep stepping with overlap**: ``begin_step`` fans the step
  command out to every live worker, ``end_step`` collects the results in
  worker-index order. Multiprocess workers therefore run their waves
  (compute *and* modeled dwell) concurrently, while the in-process
  executor degenerates to the sequential reference;
- **fault handling**: a worker that exits, breaks its pipe, or misses
  the ``heartbeat_s`` reply deadline is quarantined, and its in-flight
  requests are resubmitted to survivors through the router. Replayed
  requests are deterministic (portable requests carry seeds, never
  generator state), so the replayed stream's already-delivered prefix is
  suppressed by count and clients observe an exactly-once token stream.

Determinism contract: with no worker deaths,
:class:`MultiprocExecutor` and :class:`InProcessExecutor` produce
bit-identical per-request token streams, placements and finish reasons
for the same submission sequence — and with deaths injected at the same
step (:meth:`ExecutorBase.kill_worker`), the merged client streams stay
bit-identical too.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig
from repro.api.errors import EngineUnavailableError, RequestValidationError
from repro.api.request import GenerationOutput, GenerationRequest
from repro.models.llm import TransformerLM
from repro.serving.cluster import ClusterPreemptionEvent
from repro.serving.engine.worker import (
    StepResult,
    WorkerCore,
    WorkerSnapshot,
    worker_main,
)
from repro.serving.meter import ThroughputMeter
from repro.serving.placement import MigrationPlan, PlacementEngine
from repro.serving.server import RequestFailure, SpeContextServer, StreamEvent

# Load sentinel for dead workers' router views: large enough that any
# load-aware router avoids them, finite so key arithmetic stays exact.
_DEAD_LOAD = 1 << 40

# Prompt placeholder for load-only probes (rebalance planning): the
# prefix match against an empty prompt is always 0, so the probe costs
# no hash-chain walk.
_EMPTY_PROMPT = np.zeros(0, dtype=np.int64)

# A freshly spawned worker is silent while it forks and builds its
# server replica, so the no-progress watchdog would misread boot as a
# stall under a tight heartbeat. Until the first progress beat is
# observed, the reply deadline is at least this wide.
_BOOT_GRACE_S = 30.0


class WorkerDied(RuntimeError):
    """A worker stopped responding or exited; raised by its handle."""

    def __init__(self, index: int, reason: str):
        super().__init__(f"worker {index} died: {reason}")
        self.index = index
        self.reason = reason


@dataclass(frozen=True)
class WorkerHealth:
    """One worker's liveness as the executor sees it."""

    index: int
    alive: bool
    inflight: int
    exitcode: int | None = None


class _WorkerView:
    """Router-facing surface of one worker, fed by a one-shot probe."""

    def __init__(self, index: int, reserved: int, depth: int, match: int):
        self.index = index
        self.reserved_tokens = reserved
        self.queue_depth = depth
        self._match = match

    def prefix_match_tokens(self, prompt_ids: np.ndarray) -> int:
        return self._match


# ---- worker handles ----------------------------------------------------------


class _InProcessHandle:
    """One server replica driven directly (the reference executor)."""

    def __init__(
        self,
        index: int,
        model: TransformerLM,
        config: EngineConfig,
        pace_s_per_token: float,
    ):
        self.index = index
        self._core = WorkerCore(
            SpeContextServer(model, config), pace_s_per_token
        )
        self._alive = True
        self._stalled = False

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def exitcode(self) -> int | None:
        return None

    def _check(self) -> None:
        if self._stalled:
            # Injected stall: in-process there is no watchdog to time the
            # worker out, so the stall manifests directly as the death the
            # watchdog would have declared — same observable outcome, same
            # deterministic step, as the multiprocess path.
            self._stalled = False
            self._alive = False
            raise WorkerDied(self.index, "stalled")
        if not self._alive:
            raise WorkerDied(self.index, "killed")

    def call(self, op: str, *args) -> object:
        self._check()
        return self._core.handle(op, args)

    def begin_step(self) -> None:
        self._check()

    def end_step(self) -> StepResult:
        return self.call("step")

    def inject_stall(self) -> None:
        """Arm a stall: the next command quarantines this worker."""
        self._stalled = True

    def kill(self) -> None:
        self._alive = False

    def close(self) -> None:
        self._alive = False


class _MultiprocHandle:
    """One server replica in a child process, behind a pipe."""

    def __init__(
        self,
        index: int,
        model: TransformerLM,
        config: EngineConfig,
        pace_s_per_token: float,
        heartbeat_s: float,
        ctx,
        pipe_retries: int = 2,
        pipe_retry_backoff_s: float = 0.05,
    ):
        self.index = index
        self.heartbeat_s = float(heartbeat_s)
        self.pipe_retries = int(pipe_retries)
        self.pipe_retry_backoff_s = float(pipe_retry_backoff_s)
        self._drop_pending = 0  # chaos-injected transient send failures
        parent, child = ctx.Pipe()
        self._conn = parent
        # Shared per-step progress counter: the worker bumps it on every
        # command and dwell slice, and _recv treats any advance as
        # liveness — heartbeat_s becomes a *no-progress* deadline rather
        # than a hard reply deadline, so slow-but-progressing waves
        # survive while a frozen worker is still caught.
        self._progress = ctx.Value("Q", 0, lock=False)
        # The counter stays 0 until the child finishes booting (forking,
        # building its server replica) and handles its first command, so
        # the no-progress deadline only applies once the worker has
        # beaten at least once; before that, a boot grace window governs.
        self._booted = False
        self._proc = ctx.Process(
            target=worker_main,
            args=(child, model, config, pace_s_per_token, self._progress),
            daemon=True,
            name=f"repro-engine-worker-{index}",
        )
        self._proc.start()
        child.close()
        self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def exitcode(self) -> int | None:
        return self._proc.exitcode

    def call(self, op: str, *args) -> object:
        self._send(op, args)
        return self._recv(op)

    def begin_step(self) -> None:
        self._send("step", ())

    def end_step(self) -> StepResult:
        return self._recv("step")

    def inject_pipe_drops(self, drops: int) -> None:
        """Arm chaos: the next ``drops`` sends fail with a transient OSError."""
        self._drop_pending += int(drops)

    def _send(self, op: str, args: tuple) -> None:
        if not self._alive:
            raise WorkerDied(self.index, "already quarantined")
        attempt = 0
        while True:
            try:
                if self._drop_pending > 0:
                    self._drop_pending -= 1
                    raise OSError("injected transient pipe drop")
                self._conn.send((op, args))
                return
            except BrokenPipeError as err:
                # A broken pipe means the far end is gone — retrying
                # cannot help, fail over immediately.
                self._fail(f"pipe broke sending {op!r}: {err}")
            except OSError as err:
                attempt += 1
                if attempt > self.pipe_retries:
                    self._fail(
                        f"pipe error sending {op!r} persisted through "
                        f"{attempt} attempts: {err}"
                    )
                # Transient error (EINTR, spurious EAGAIN, injected chaos
                # drop): back off linearly and retry before declaring the
                # worker dead.
                time.sleep(self.pipe_retry_backoff_s * attempt)

    def _recv(self, op: str) -> object:
        last_progress = self._progress.value
        if last_progress != 0:
            self._booted = True
        window = (
            self.heartbeat_s
            if self._booted
            else max(self.heartbeat_s, _BOOT_GRACE_S)
        )
        # The watchdog times out *real* child processes, so it must run
        # on real time; it never feeds the deterministic step clock —
        # death detection resolves to the same deterministic step either
        # way (see test_engine_executor.py failover bit-identity).
        # repro: allow(wall-clock): no-progress watchdog deadline
        deadline = time.monotonic() + window
        while True:
            progress = self._progress.value
            if progress != last_progress:
                # The worker advanced (command dispatch or a dwell-slice
                # beat): it is slow, not stalled — restart the deadline.
                last_progress = progress
                self._booted = True
                window = self.heartbeat_s
                # repro: allow(wall-clock): watchdog deadline restart
                deadline = time.monotonic() + window
            remaining = deadline - time.monotonic()  # repro: allow(wall-clock)
            if remaining <= 0:
                self._fail(
                    f"no reply to {op!r} and no progress within "
                    f"{window}s"
                )
            try:
                ready = self._conn.poll(min(remaining, 0.05))
            except (BrokenPipeError, OSError) as err:
                self._fail(f"pipe broke awaiting {op!r}: {err}")
            if ready:
                try:
                    status, payload = self._conn.recv()
                except (EOFError, OSError) as err:
                    self._fail(f"pipe closed during {op!r}: {err}")
                if status == "err":
                    raise payload
                return payload
            if self._proc.exitcode is not None:
                self._fail(f"process exited with code {self._proc.exitcode}")

    def _fail(self, reason: str) -> None:
        self._alive = False
        try:
            self._conn.close()
        except OSError:
            pass
        raise WorkerDied(self.index, reason)

    def kill(self) -> None:
        """Hard-kill the child (fault injection / quarantine cleanup)."""
        self._alive = False
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - stuck child
                self._proc.kill()
                self._proc.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:
            pass

    def close(self) -> None:
        """Graceful shutdown: ask the worker to exit, then reap it."""
        if self._alive:
            self._alive = False
            try:
                self._conn.send(("shutdown", ()))
            except (BrokenPipeError, OSError):
                pass
        self._proc.join(timeout=self.heartbeat_s)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:
            pass


# ---- executors ---------------------------------------------------------------


class ExecutorBase:
    """Shared cluster-level logic over a list of worker handles."""

    kind = "base"

    def __init__(
        self,
        model: TransformerLM,
        config: EngineConfig | None = None,
        cluster: ClusterConfig | None = None,
    ):
        self.config = config or EngineConfig()
        self.cluster = cluster or ClusterConfig()
        self._handles = self._spawn(model)
        n = len(self._handles)
        self.placement = PlacementEngine(self.cluster, n)
        self.router = self.placement.router  # historical alias
        self.routing = self.placement.routing
        self.migrations: list[MigrationPlan] = []  # applied, in order
        self._steps_since_rebalance = 0
        self._templates: dict[int, GenerationRequest] = {}
        self._assignment: dict[int, tuple[int, int]] = {}  # gid -> (worker, lid)
        self._locals: list[dict[int, int]] = [{} for _ in range(n)]
        self._inflight: set[int] = set()
        self._delivered: dict[int, int] = {}
        self._replay_skip: dict[int, int] = {}
        self._stream: list[StreamEvent] = []
        self._failures: list[RequestFailure] = []
        self._outputs: dict[int, GenerationOutput] = {}
        self._preemption_log: list[ClusterPreemptionEvent] = []
        self._pending_recovery: list[int] = []
        self.resubmissions: list[tuple[int, int]] = []  # (gid, new worker)
        self._next_id = 0
        self._clock = 0.0
        self._draining = False

    def _spawn(self, model: TransformerLM) -> list:
        raise NotImplementedError

    # ---- introspection ---------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self._handles)

    @property
    def n_alive(self) -> int:
        return sum(1 for h in self._handles if h.alive)

    @property
    def degraded(self) -> bool:
        """True once any worker has been quarantined."""
        return self.n_alive < self.n_workers

    def shedding(self) -> bool:
        """True when any live worker's admission policy is shedding."""
        result = False
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                snapshot = handle.call("stats")
            except WorkerDied:
                self._pending_recovery.append(handle.index)
                continue
            result = result or snapshot.shedding
        self._drain_recovery()
        return result

    def worker_of(self, request_id: int) -> int:
        """Worker index a submitted request currently lives on."""
        return self._assignment[request_id][0]

    def health(self) -> list[WorkerHealth]:
        counts: dict[int, int] = {}
        for gid, (worker, _) in self._assignment.items():
            if gid in self._inflight:
                counts[worker] = counts.get(worker, 0) + 1
        return [
            WorkerHealth(
                index=h.index,
                alive=h.alive,
                inflight=counts.get(h.index, 0),
                exitcode=h.exitcode,
            )
            for h in self._handles
        ]

    # ---- submission ------------------------------------------------------------

    def add_request(self, request: GenerationRequest) -> int:
        """Validate, route and submit one request; returns its global id.

        On rejection (validation error from the executor or the chosen
        worker) the request object, the id counter and the router cursor
        are restored — identical retry semantics to
        :meth:`repro.serving.cluster.ClusterFrontend.add_request`.
        """
        if self._draining:
            raise EngineUnavailableError(
                "engine is draining; new requests are not accepted"
            )
        if self.n_alive == 0:
            raise EngineUnavailableError("no live workers")
        if request.request_id is not None and request.request_id < self._next_id:
            raise ValueError(
                f"request_id {request.request_id} already used; ids must be "
                "unique and increasing"
            )
        self._check_portable(request)
        views, _ = self._probe(request.prompt_ids)
        placement = self.placement.place(
            request, views, [h.alive for h in self._handles]
        )
        chosen = placement.target
        gid = request.request_id if request.request_id is not None else (
            self._next_id
        )
        template = self._clone(request)
        try:
            lid = self._handles[chosen].call("submit", self._clone(request))
        except WorkerDied:
            # The chosen worker died between probe and submit. Quarantine
            # it (recovering its in-flight work) and re-run placement;
            # the router cursor stays advanced, matching how a cursor
            # router simply walks past a dead worker.
            self._pending_recovery.append(chosen)
            self._drain_recovery()
            return self.add_request(request)
        except Exception:
            self.placement.rollback(placement)
            raise
        self.placement.commit(placement)
        request.request_id = gid
        self._next_id = gid + 1
        self._templates[gid] = template
        self._assignment[gid] = (chosen, lid)
        self._locals[chosen][lid] = gid
        self._inflight.add(gid)
        self._delivered[gid] = 0
        self._drain_recovery()
        return gid

    def abort(self, request_id: int) -> bool:
        """Drop an in-flight request (client disconnect).

        Returns False when the id is unknown or already finished (abort
        races against completion; that is not an error).
        """
        if request_id not in self._inflight:
            return False
        worker, lid = self._assignment[request_id]
        handle = self._handles[worker]
        if handle.alive:
            try:
                handle.call("abort", lid)
            except WorkerDied:
                self._pending_recovery.append(worker)
        self._inflight.discard(request_id)
        self._assignment.pop(request_id, None)
        self._locals[worker].pop(lid, None)
        self._templates.pop(request_id, None)
        self._drain_recovery()
        return True

    def _check_portable(self, request: GenerationRequest) -> None:
        """Reject requests that cannot survive shipment or failover.

        Enforced by *both* executors so acceptance is identical: a
        prebuilt policy object owns mutable state that cannot be
        pickled to a worker or replayed after one dies, and a generator
        object's consumed state cannot be rewound for resubmission
        (seeds can — ``sampling.seed`` replays bit-identically).
        """
        if request.policy is not None and not isinstance(request.policy, str):
            raise RequestValidationError(
                "executor requests must name policies by registry name; "
                "prebuilt policy objects cannot be shipped to workers or "
                "resubmitted after a worker failure"
            )
        if request.rng is not None:
            raise RequestValidationError(
                "executor requests must carry sampling.seed rather than an "
                "rng object; seeds replay bit-identically after worker "
                "failover, generator state does not"
            )

    @staticmethod
    def _clone(request: GenerationRequest) -> GenerationRequest:
        """A pristine, unsubmitted copy (prompt array shared, read-only)."""
        return GenerationRequest(
            prompt_ids=request.prompt_ids,
            sampling=request.sampling,
            policy=request.policy,
            budget=request.budget,
            policy_opts=dict(request.policy_opts),
            priority=request.priority,
            request_id=None,
            rng=None,
        )

    def _probe(self, prompt_ids: np.ndarray):
        """One load/affinity probe per worker; dead workers get sentinels."""
        views: list[_WorkerView] = []
        matches: list[int] = []
        for handle in self._handles:
            if handle.alive:
                try:
                    reserved, depth, match = handle.call("probe", prompt_ids)
                    views.append(
                        _WorkerView(handle.index, reserved, depth, match)
                    )
                    matches.append(match)
                    continue
                except WorkerDied:
                    self._pending_recovery.append(handle.index)
            views.append(_WorkerView(handle.index, _DEAD_LOAD, _DEAD_LOAD, 0))
            matches.append(0)
        return views, matches

    # ---- stepping --------------------------------------------------------------

    @property
    def clock(self) -> float:
        """The shared step-count clock (workers tick in lockstep)."""
        return self._clock

    def advance_clock_to(self, when: float) -> None:
        """Jump every live worker's idle clock forward (trace gaps)."""
        for handle in self._handles:
            if handle.alive:
                try:
                    handle.call("advance_clock", when)
                except WorkerDied:
                    self._pending_recovery.append(handle.index)
        self._clock = float(when)
        self._drain_recovery()

    @property
    def has_unfinished(self) -> bool:
        return bool(self._inflight)

    def step(self) -> list[GenerationOutput]:
        """Drive every live worker one wave; merge into one client view.

        ``begin_step`` is fanned out to all live workers before any
        ``end_step`` is awaited, so multiprocess workers overlap their
        waves; results are merged in worker-index order (emission order
        within a worker) — the same deterministic total order as
        :meth:`repro.serving.cluster.ClusterFrontend.step`. Workers that
        die during the wave are quarantined afterwards and their
        in-flight requests resubmitted to survivors.
        """
        self._drain_recovery()
        stepping = [h for h in self._handles if h.alive]
        for handle in stepping:
            try:
                handle.begin_step()
            except WorkerDied:
                pass  # collected below: handle.alive is now False
        finished: list[GenerationOutput] = []
        for handle in stepping:
            if not handle.alive:
                self._pending_recovery.append(handle.index)
                continue
            try:
                result = handle.end_step()
            except WorkerDied:
                self._pending_recovery.append(handle.index)
                continue
            finished.extend(self._merge_step(handle.index, result))
        self._drain_recovery()
        self._clock += 1.0
        if self.placement.disaggregated:
            loads, migratable = self._migration_state()
            self._apply_plans(
                self.placement.plan_handoffs(loads, migratable)
            )
        every = self.cluster.rebalance_every
        if every > 0:
            self._steps_since_rebalance += 1
            if self._steps_since_rebalance >= every:
                self._steps_since_rebalance = 0
                self.rebalance()
        return sorted(finished, key=lambda o: o.request_id)

    def run(self) -> list[GenerationOutput]:
        """Step until all in-flight work drains; outputs by global id."""
        outputs: list[GenerationOutput] = []
        while self.has_unfinished:
            outputs.extend(self.step())
        return sorted(outputs, key=lambda o: o.request_id)

    # ---- live migration --------------------------------------------------------

    def rebalance(self) -> list[MigrationPlan]:
        """Drain sessions from overloaded workers onto idle ones.

        Plans via the shared :meth:`~repro.serving.placement
        .PlacementEngine.plan_rebalance` and applies each move with the
        ``export_kv``/``import_kv`` worker ops. A worker dying mid-pass
        is quarantined and its in-flight work recovered by the ordinary
        failover machinery; the migrated request's remaining stream is
        bit-identical to a never-migrated run either way (migration
        moves state, failover replays deterministically). Returns the
        plans actually applied. Must be called between steps.
        """
        self._drain_recovery()
        loads, migratable = self._migration_state()
        return self._apply_plans(
            self.placement.plan_rebalance(loads, migratable)
        )

    def _migration_state(
        self,
    ) -> tuple[list[int | None], dict[int, list[tuple[int, int, bool]]]]:
        """Per-worker loads and migratable sessions, in *global* ids."""
        loads: list[int | None] = []
        migratable: dict[int, list[tuple[int, int, bool]]] = {}
        for handle in self._handles:
            if not handle.alive:
                loads.append(None)
                continue
            try:
                reserved, depth, _ = handle.call("probe", _EMPTY_PROMPT)
                rows = handle.call("migratable")
            except WorkerDied:
                self._pending_recovery.append(handle.index)
                loads.append(None)
                continue
            loads.append(reserved + depth)
            lids = self._locals[handle.index]
            migratable[handle.index] = [
                (gid, charge, done)
                for lid, charge, done in rows
                if (gid := lids.get(lid)) is not None
                and gid in self._inflight
            ]
        self._drain_recovery()
        return loads, migratable

    def _apply_plans(
        self, plans: list[MigrationPlan]
    ) -> list[MigrationPlan]:
        """Execute migration plans: export from source, import at target.

        Fault tolerance mirrors submission: a source dying mid-export is
        quarantined (its in-flight requests — including this one — are
        resubmitted as deterministic replays); a target dying mid-import
        falls through to the next live worker, and when none can adopt
        the snapshot the request is resubmitted from its template.
        """
        applied: list[MigrationPlan] = []
        for plan in plans:
            gid = plan.request_id
            assignment = self._assignment.get(gid)
            if assignment is None or assignment[0] != plan.source:
                continue  # finished, aborted or already moved
            old_lid = assignment[1]
            try:
                export = self._handles[plan.source].call(
                    "export_kv", old_lid
                )
            except WorkerDied:
                # Chaos kill mid-migration: ordinary failover recovers
                # every in-flight request of the source, this one
                # included, as a deterministic replay.
                self._pending_recovery.append(plan.source)
                self._drain_recovery()
                continue
            if export is None:
                continue  # finished between planning and export
            self._locals[plan.source].pop(old_lid, None)
            placed = False
            candidates = [plan.target] + [
                i
                for i in range(self.n_workers)
                if i != plan.target and self._handles[i].alive
            ]
            for target in candidates:
                if not self._handles[target].alive:
                    continue
                try:
                    new_lid = self._handles[target].call("import_kv", export)
                except WorkerDied:
                    self._pending_recovery.append(target)
                    continue
                self._assignment[gid] = (target, new_lid)
                self._locals[target][new_lid] = gid
                done = (
                    plan
                    if target == plan.target
                    else replace(plan, target=target)
                )
                self.migrations.append(done)
                applied.append(done)
                placed = True
                break
            if not placed:
                # Every adoption attempt failed: fall back to a fresh
                # deterministic replay on whatever is still alive.
                self._resubmit(gid)
            self._drain_recovery()
        return applied

    def _merge_step(
        self, index: int, result: StepResult
    ) -> list[GenerationOutput]:
        """Translate one worker's wave into global ids and accumulate it."""
        lids = self._locals[index]
        for event in result.stream_events:
            gid = lids.get(event.request_id)
            if gid is None or gid not in self._inflight:
                continue  # aborted or unknown: drop silently
            if event.error is not None:
                # Terminal error event: not a token — never counts toward
                # delivered/replay accounting (a resubmitted request that
                # expires again must still surface exactly one of these).
                self._stream.append(replace(event, request_id=gid))
                continue
            if self._replay_skip.get(gid, 0) > 0:
                # Replayed prefix of a resubmitted request: the client
                # already holds these tokens (deterministic replay), so
                # suppress them by count for exactly-once delivery.
                self._replay_skip[gid] -= 1
                continue
            self._delivered[gid] = self._delivered.get(gid, 0) + 1
            self._stream.append(replace(event, request_id=gid))
        for event in result.preemption_events:
            gid = lids.get(event.request_id)
            if gid is None:
                continue
            self._preemption_log.append(
                ClusterPreemptionEvent(
                    replica=index, event=replace(event, request_id=gid)
                )
            )
        for failure in result.failures:
            gid = lids.pop(failure.request_id, None)
            if gid is None or gid not in self._inflight:
                continue  # aborted or already terminal: drop silently
            # A failed request leaves the in-flight set immediately, so a
            # later death of any worker can never resubmit it — exactly
            # one typed failure reaches the client.
            self._failures.append(replace(failure, request_id=gid))
            self._inflight.discard(gid)
            self._assignment.pop(gid, None)
            self._templates.pop(gid, None)
            self._replay_skip.pop(gid, None)
        finished: list[GenerationOutput] = []
        for output in result.finished:
            gid = lids.pop(output.request_id, None)
            if gid is None or gid not in self._inflight:
                continue
            output.request_id = gid
            self._outputs[gid] = output
            self._inflight.discard(gid)
            self._assignment.pop(gid, None)
            self._replay_skip.pop(gid, None)
            finished.append(output)
        return finished

    # ---- fault handling --------------------------------------------------------

    def kill_worker(self, index: int) -> list[int]:
        """Forcibly kill one worker (fault injection).

        Works identically on both executors, so failover tests can
        inject the same death at the same step and compare streams.
        Returns the global ids that were resubmitted to survivors.
        """
        self._handles[index].kill()
        orphans = self._on_worker_death(index)
        self._drain_recovery()
        return orphans

    def inject_fault(
        self,
        index: int,
        kind: str,
        *,
        duration_s: float = 0.0,
        drops: int = 1,
    ) -> None:
        """Arm one fault on one worker (the chaos harness's entry point).

        Kinds:

        - ``"kill"``: hard-kill now (same as :meth:`kill_worker`);
        - ``"stall"``: the worker freezes during its next wave without
          progress beats. Multiprocess workers sleep ``duration_s``
          un-beating (set it past ``heartbeat_s`` so the watchdog fires);
          in-process workers are quarantined at their next command — the
          same observable outcome at the same step, since there is no
          watchdog to time out in-process;
        - ``"slow_step"``: the worker's next wave takes ``duration_s``
          longer but beats throughout — it must *survive* the watchdog;
        - ``"pipe_drop"``: the next ``drops`` sends to a multiprocess
          worker fail transiently (retry-with-backoff must absorb drops
          up to ``pipe_retries``); a no-op for in-process workers, which
          have no pipe.
        """
        handle = self._handles[index]
        if kind == "kill":
            self.kill_worker(index)
        elif kind == "stall":
            if hasattr(handle, "inject_stall"):
                handle.inject_stall()
            else:
                handle.call("chaos", "stall", duration_s)
        elif kind == "slow_step":
            handle.call("chaos", "slow_step", duration_s)
        elif kind == "pipe_drop":
            if hasattr(handle, "inject_pipe_drops"):
                handle.inject_pipe_drops(drops)
        else:
            raise ValueError(f"unknown fault kind {kind!r}")

    def _drain_recovery(self) -> None:
        while self._pending_recovery:
            self._on_worker_death(self._pending_recovery.pop(0))

    def _on_worker_death(self, index: int) -> list[int]:
        """Quarantine a worker and resubmit its in-flight requests."""
        self._handles[index].kill()
        orphans = sorted(
            gid
            for gid, (worker, _) in self._assignment.items()
            if worker == index and gid in self._inflight
        )
        self._locals[index].clear()
        for gid in orphans:
            self._resubmit(gid)
        return orphans

    def _resubmit(self, gid: int) -> None:
        """Re-place one orphaned request on a survivor (fresh replay)."""
        template = self._templates[gid]
        while True:
            if self.n_alive == 0:
                raise EngineUnavailableError(
                    f"all workers dead; cannot recover request {gid}"
                )
            views, _ = self._probe(template.prompt_ids)
            chosen = self.placement.place(
                template, views, [h.alive for h in self._handles]
            ).target
            try:
                lid = self._handles[chosen].call(
                    "submit", self._clone(template)
                )
                break
            except WorkerDied:
                self._pending_recovery.append(chosen)
        self._assignment[gid] = (chosen, lid)
        self._locals[chosen][lid] = gid
        self._replay_skip[gid] = self._delivered.get(gid, 0)
        self.resubmissions.append((gid, chosen))

    # ---- merged views ----------------------------------------------------------

    def pop_stream_events(self) -> list[StreamEvent]:
        """Drain the merged per-token stream (global request ids)."""
        events = self._stream
        self._stream = []
        return events

    def pop_failures(self) -> list[RequestFailure]:
        """Drain typed per-request failures (global request ids)."""
        failures = self._failures
        self._failures = []
        return failures

    @property
    def preemption_log(self) -> list[ClusterPreemptionEvent]:
        """Every preemption on any worker, in merged client order."""
        return list(self._preemption_log)

    @property
    def outputs(self) -> list[GenerationOutput]:
        """All finished outputs so far, sorted by global id."""
        return [self._outputs[gid] for gid in sorted(self._outputs)]

    def stats(self) -> ThroughputMeter:
        """Engine-wide meter: the union of live workers' records.

        Records held by quarantined workers are unavailable (in the
        multiprocess case their processes are gone); recovered requests
        are re-timed from their resubmission.
        """
        meters = []
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                snapshot: WorkerSnapshot = handle.call("stats")
            except WorkerDied:
                self._pending_recovery.append(handle.index)
                continue
            meters.append(snapshot.meter)
        self._drain_recovery()
        return ThroughputMeter.merge(*meters)

    def audit_pools(self) -> int:
        """Run the pool-invariant audit on every live worker's replica.

        Fans the ``audit`` op out to alive workers (it runs inside the
        worker process, where the pool lives) and returns how many
        replicas were audited. A violation ships back as
        :class:`~repro.kvcache.pool.PoolAuditError` and is re-raised
        here; a worker dying during the audit is treated like any other
        death (quarantine + recovery), not an audit failure.
        """
        audited = 0
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                handle.call("audit")
            except WorkerDied:
                self._pending_recovery.append(handle.index)
                continue
            audited += 1
        self._drain_recovery()
        return audited

    # ---- lifecycle -------------------------------------------------------------

    def drain(self) -> list[GenerationOutput]:
        """Stop accepting new requests and run in-flight work to empty."""
        self._draining = True
        return self.run()

    def shutdown(self) -> None:
        """Release every worker (graceful where possible)."""
        for handle in self._handles:
            handle.close()

    def __enter__(self) -> "ExecutorBase":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class InProcessExecutor(ExecutorBase):
    """All workers in this process — the zero-IPC reference executor."""

    kind = "inproc"

    def _spawn(self, model: TransformerLM) -> list:
        return [
            _InProcessHandle(
                i, model, self.config, self.cluster.pace_s_per_token
            )
            for i in range(self.cluster.n_replicas)
        ]


class MultiprocExecutor(ExecutorBase):
    """Each worker in its own child process, stepped with overlap."""

    kind = "multiproc"

    def _spawn(self, model: TransformerLM) -> list:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        return [
            _MultiprocHandle(
                i,
                model,
                self.config,
                self.cluster.pace_s_per_token,
                self.cluster.heartbeat_s,
                ctx,
                pipe_retries=self.cluster.pipe_retries,
                pipe_retry_backoff_s=self.cluster.pipe_retry_backoff_s,
            )
            for i in range(self.cluster.n_replicas)
        ]


_EXECUTORS = {
    "inproc": InProcessExecutor,
    "multiproc": MultiprocExecutor,
}


def make_executor(
    model: TransformerLM,
    config: EngineConfig | None = None,
    cluster: ClusterConfig | None = None,
) -> ExecutorBase:
    """Build the executor named by ``cluster.executor``."""
    cluster = cluster or ClusterConfig()
    try:
        kind = _EXECUTORS[cluster.executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {cluster.executor!r}; "
            f"available: {sorted(_EXECUTORS)}"
        ) from None
    return kind(model, config, cluster)
