"""Process-parallel serving engine: worker/executor split.

Three layers (paper-style separation of the serving control plane):

- :mod:`repro.serving.engine.worker` — one
  :class:`~repro.serving.server.SpeContextServer` replica behind a
  small command protocol, runnable in-process or as a child process;
- :mod:`repro.serving.engine.executor` — owns N workers, routes
  requests through the shared router registry, steps the workers in
  lockstep with overlap, and survives worker deaths by resubmitting
  in-flight requests to survivors;
- :mod:`repro.serving.http` — an asyncio OpenAI-style HTTP + SSE
  frontend over an executor.
"""

from repro.serving.engine.executor import (
    ExecutorBase,
    InProcessExecutor,
    MultiprocExecutor,
    WorkerDied,
    WorkerHealth,
    make_executor,
)
from repro.serving.engine.worker import (
    StepResult,
    WorkerCore,
    WorkerSnapshot,
    serve_connection,
    worker_main,
)

__all__ = [
    "ExecutorBase",
    "InProcessExecutor",
    "MultiprocExecutor",
    "StepResult",
    "WorkerCore",
    "WorkerDied",
    "WorkerHealth",
    "WorkerSnapshot",
    "make_executor",
    "serve_connection",
    "worker_main",
]
