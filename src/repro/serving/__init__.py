"""Serving substrate: requests, memory-aware batching, throughput metering."""

from repro.serving.meter import ThroughputMeter
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import BatchPlan, StaticBatchScheduler

__all__ = [
    "BatchPlan",
    "Request",
    "RequestState",
    "StaticBatchScheduler",
    "ThroughputMeter",
]
