"""Serving layer: the request-level server plus batching/metering substrate.

- :class:`SpeContextServer` — continuous batching of *real* functional
  inference over a shared paged KV pool: concurrent sessions with
  per-request policies, budgets and stop conditions, prefix caching,
  pool-pressure admission and preemption.
- :class:`ClusterFrontend` — N independent server replicas behind one
  request-level API, with pluggable routing (``round_robin``,
  ``least_loaded``, ``prefix_affinity``) and merged stream/meter views.
- :mod:`repro.serving.policies` — scheduler-policy registry (``fcfs``,
  ``priority``, ``sjf``) governing admission order and victim selection,
  plus the cluster router registry.
- :mod:`repro.serving.trace` — trace-driven harness: seeded Poisson,
  bursty (on/off) and heavy-tailed (Pareto) workloads replayed through
  the server (or cluster) with per-step invariant checks.
- :mod:`repro.serving.chaos` — deterministic fault-injection harness:
  scripted kill/stall/slow-step/pipe-drop/pool-burst plans replayed
  against an executor, reporting exactly-once streams and typed errors.
- :class:`StaticBatchScheduler` — memory-aware FIFO batching over the
  performance *simulator* (Table 3's serving view).
- :class:`ThroughputMeter` / :class:`Request` — shared accounting.
- :mod:`repro.serving.engine` — the process-parallel engine: worker
  replicas behind a command protocol, driven by an executor
  (:class:`InProcessExecutor` / :class:`MultiprocExecutor`) that routes,
  steps with overlap and survives worker deaths by resubmission.
- :mod:`repro.serving.http` — asyncio OpenAI-style HTTP + SSE frontend
  over an executor (``POST /v1/completions``, ``GET /v1/models``,
  ``/healthz``, ``/stats``), stdlib-only.
"""

from repro.serving.chaos import ChaosReport, Fault, FaultPlan, run_chaos
from repro.serving.cluster import (
    ClusterFrontend,
    ClusterPreemptionEvent,
    ClusterRoutingStats,
)
from repro.serving.engine import (
    ExecutorBase,
    InProcessExecutor,
    MultiprocExecutor,
    StepResult,
    WorkerHealth,
    make_executor,
)
from repro.serving.meter import ThroughputMeter
from repro.serving.placement import MigrationPlan, Placement, PlacementEngine
from repro.serving.policies import (
    AdmissionController,
    RouterPolicy,
    SchedulerPolicy,
    available_admissions,
    available_routers,
    available_schedulers,
    make_admission,
    make_router,
    make_scheduler,
    resolve_admission_name,
    resolve_router_name,
    resolve_scheduler_name,
)
from repro.serving.registry import (
    UnknownAdmissionError,
    UnknownRouterError,
    UnknownSchedulerError,
)
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import BatchPlan, StaticBatchScheduler
from repro.serving.server import (
    PreemptionEvent,
    RequestFailure,
    SessionExport,
    SpeContextServer,
    StreamEvent,
)
from repro.serving.trace import (
    TraceEntry,
    bursty_trace,
    heavy_tailed_trace,
    poisson_trace,
    replay_trace,
    replay_trace_cluster,
)

__all__ = [
    "AdmissionController",
    "BatchPlan",
    "ChaosReport",
    "ClusterFrontend",
    "ClusterPreemptionEvent",
    "ClusterRoutingStats",
    "ExecutorBase",
    "Fault",
    "FaultPlan",
    "InProcessExecutor",
    "MigrationPlan",
    "MultiprocExecutor",
    "Placement",
    "PlacementEngine",
    "PreemptionEvent",
    "Request",
    "RequestFailure",
    "RequestState",
    "RouterPolicy",
    "SchedulerPolicy",
    "SessionExport",
    "SpeContextServer",
    "StaticBatchScheduler",
    "StepResult",
    "StreamEvent",
    "ThroughputMeter",
    "TraceEntry",
    "UnknownAdmissionError",
    "UnknownRouterError",
    "UnknownSchedulerError",
    "WorkerHealth",
    "available_admissions",
    "available_routers",
    "available_schedulers",
    "bursty_trace",
    "heavy_tailed_trace",
    "make_admission",
    "make_executor",
    "make_router",
    "make_scheduler",
    "poisson_trace",
    "replay_trace",
    "replay_trace_cluster",
    "resolve_admission_name",
    "resolve_router_name",
    "resolve_scheduler_name",
    "run_chaos",
]
