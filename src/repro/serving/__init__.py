"""Serving layer: the request-level server plus batching/metering substrate.

- :class:`SpeContextServer` — continuous batching of *real* functional
  inference over a shared paged KV pool: concurrent sessions with
  per-request policies, budgets and stop conditions, prefix caching,
  pool-pressure admission and preemption.
- :class:`ClusterFrontend` — N independent server replicas behind one
  request-level API, with pluggable routing (``round_robin``,
  ``least_loaded``, ``prefix_affinity``) and merged stream/meter views.
- :mod:`repro.serving.policies` — scheduler-policy registry (``fcfs``,
  ``priority``, ``sjf``) governing admission order and victim selection,
  plus the cluster router registry.
- :mod:`repro.serving.trace` — trace-driven harness: seeded Poisson
  workloads replayed through the server (or cluster) with per-step
  invariant checks.
- :class:`StaticBatchScheduler` — memory-aware FIFO batching over the
  performance *simulator* (Table 3's serving view).
- :class:`ThroughputMeter` / :class:`Request` — shared accounting.
"""

from repro.serving.cluster import (
    ClusterFrontend,
    ClusterPreemptionEvent,
    ClusterRoutingStats,
)
from repro.serving.meter import ThroughputMeter
from repro.serving.policies import (
    RouterPolicy,
    SchedulerPolicy,
    available_routers,
    available_schedulers,
    make_router,
    make_scheduler,
    resolve_router_name,
    resolve_scheduler_name,
)
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import BatchPlan, StaticBatchScheduler
from repro.serving.server import PreemptionEvent, SpeContextServer, StreamEvent
from repro.serving.trace import (
    TraceEntry,
    poisson_trace,
    replay_trace,
    replay_trace_cluster,
)

__all__ = [
    "BatchPlan",
    "ClusterFrontend",
    "ClusterPreemptionEvent",
    "ClusterRoutingStats",
    "PreemptionEvent",
    "Request",
    "RequestState",
    "RouterPolicy",
    "SchedulerPolicy",
    "SpeContextServer",
    "StaticBatchScheduler",
    "StreamEvent",
    "ThroughputMeter",
    "TraceEntry",
    "available_routers",
    "available_schedulers",
    "make_router",
    "make_scheduler",
    "poisson_trace",
    "replay_trace",
    "replay_trace_cluster",
    "resolve_router_name",
    "resolve_scheduler_name",
]
