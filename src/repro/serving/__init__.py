"""Serving layer: the request-level server plus batching/metering substrate.

- :class:`SpeContextServer` — continuous batching of *real* functional
  inference over a shared paged KV pool: concurrent sessions with
  per-request policies, budgets and stop conditions, prefix caching,
  pool-pressure admission and preemption.
- :class:`ClusterFrontend` — N independent server replicas behind one
  request-level API, with pluggable routing (``round_robin``,
  ``least_loaded``, ``prefix_affinity``) and merged stream/meter views.
- :mod:`repro.serving.policies` — scheduler-policy registry (``fcfs``,
  ``priority``, ``sjf``) governing admission order and victim selection,
  plus the cluster router registry.
- :mod:`repro.serving.trace` — trace-driven harness: seeded Poisson
  workloads replayed through the server (or cluster) with per-step
  invariant checks.
- :class:`StaticBatchScheduler` — memory-aware FIFO batching over the
  performance *simulator* (Table 3's serving view).
- :class:`ThroughputMeter` / :class:`Request` — shared accounting.
- :mod:`repro.serving.engine` — the process-parallel engine: worker
  replicas behind a command protocol, driven by an executor
  (:class:`InProcessExecutor` / :class:`MultiprocExecutor`) that routes,
  steps with overlap and survives worker deaths by resubmission.
- :mod:`repro.serving.http` — asyncio OpenAI-style HTTP + SSE frontend
  over an executor (``POST /v1/completions``, ``GET /v1/models``,
  ``/healthz``, ``/stats``), stdlib-only.
"""

from repro.serving.cluster import (
    ClusterFrontend,
    ClusterPreemptionEvent,
    ClusterRoutingStats,
)
from repro.serving.engine import (
    ExecutorBase,
    InProcessExecutor,
    MultiprocExecutor,
    StepResult,
    WorkerHealth,
    make_executor,
)
from repro.serving.meter import ThroughputMeter
from repro.serving.policies import (
    RouterPolicy,
    SchedulerPolicy,
    available_routers,
    available_schedulers,
    make_router,
    make_scheduler,
    resolve_router_name,
    resolve_scheduler_name,
)
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import BatchPlan, StaticBatchScheduler
from repro.serving.server import PreemptionEvent, SpeContextServer, StreamEvent
from repro.serving.trace import (
    TraceEntry,
    poisson_trace,
    replay_trace,
    replay_trace_cluster,
)

__all__ = [
    "BatchPlan",
    "ClusterFrontend",
    "ClusterPreemptionEvent",
    "ClusterRoutingStats",
    "ExecutorBase",
    "InProcessExecutor",
    "MultiprocExecutor",
    "PreemptionEvent",
    "Request",
    "RequestState",
    "RouterPolicy",
    "SchedulerPolicy",
    "SpeContextServer",
    "StaticBatchScheduler",
    "StepResult",
    "StreamEvent",
    "ThroughputMeter",
    "TraceEntry",
    "WorkerHealth",
    "available_routers",
    "available_schedulers",
    "make_executor",
    "make_router",
    "make_scheduler",
    "poisson_trace",
    "replay_trace",
    "replay_trace_cluster",
    "resolve_router_name",
    "resolve_scheduler_name",
]
