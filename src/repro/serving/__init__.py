"""Serving layer: the request-level server plus batching/metering substrate.

- :class:`SpeContextServer` — continuous batching of *real* functional
  inference: concurrent sessions with per-request policies, budgets and
  stop conditions (the request-level API's execution engine).
- :class:`StaticBatchScheduler` — memory-aware FIFO batching over the
  performance *simulator* (Table 3's serving view).
- :class:`ThroughputMeter` / :class:`Request` — shared accounting.
"""

from repro.serving.meter import ThroughputMeter
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import BatchPlan, StaticBatchScheduler
from repro.serving.server import SpeContextServer

__all__ = [
    "BatchPlan",
    "Request",
    "RequestState",
    "SpeContextServer",
    "StaticBatchScheduler",
    "ThroughputMeter",
]
