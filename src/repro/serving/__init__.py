"""Serving layer: the request-level server plus batching/metering substrate.

- :class:`SpeContextServer` — continuous batching of *real* functional
  inference over a shared paged KV pool: concurrent sessions with
  per-request policies, budgets and stop conditions, prefix caching,
  pool-pressure admission and preemption.
- :mod:`repro.serving.policies` — scheduler-policy registry (``fcfs``,
  ``priority``, ``sjf``) governing admission order and victim selection.
- :mod:`repro.serving.trace` — trace-driven harness: seeded Poisson
  workloads replayed through the server with per-step invariant checks.
- :class:`StaticBatchScheduler` — memory-aware FIFO batching over the
  performance *simulator* (Table 3's serving view).
- :class:`ThroughputMeter` / :class:`Request` — shared accounting.
"""

from repro.serving.meter import ThroughputMeter
from repro.serving.policies import (
    SchedulerPolicy,
    available_schedulers,
    make_scheduler,
    resolve_scheduler_name,
)
from repro.serving.request import Request, RequestState
from repro.serving.scheduler import BatchPlan, StaticBatchScheduler
from repro.serving.server import PreemptionEvent, SpeContextServer, StreamEvent
from repro.serving.trace import TraceEntry, poisson_trace, replay_trace

__all__ = [
    "BatchPlan",
    "PreemptionEvent",
    "Request",
    "RequestState",
    "SchedulerPolicy",
    "SpeContextServer",
    "StaticBatchScheduler",
    "StreamEvent",
    "ThroughputMeter",
    "TraceEntry",
    "available_schedulers",
    "make_scheduler",
    "poisson_trace",
    "replay_trace",
    "resolve_scheduler_name",
]
