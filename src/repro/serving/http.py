"""OpenAI-style HTTP + SSE frontend over the process-parallel engine.

Stdlib-only (``asyncio`` + ``json``): a minimal HTTP/1.1 server
(:class:`HttpServer`) in front of an :class:`AsyncEngine`, which owns
the executor and serializes every executor interaction through one
background task (the executor is not thread-safe; blocking calls run
via ``asyncio.to_thread`` but never concurrently).

Endpoints:

- ``POST /v1/completions`` — OpenAI completions shape. ``prompt`` is a
  string (closed-vocabulary whitespace tokenization) or a token-id
  list; ``stream: true`` answers ``text/event-stream`` with one
  ``data:`` JSON chunk per generated token and a final ``data: [DONE]``
  sentinel. Validation failures answer structured 4xx bodies
  (``{"error": {"message", "type", "code"}}``) using the typed errors
  from :mod:`repro.api.errors`; body fields outside
  ``COMPLETION_REQUEST_FIELDS`` are rejected with a 400
  (``unknown_field``) rather than silently dropped.
- ``GET /v1/models`` — the single served model.
- ``GET /healthz`` — ``ok`` (all workers live), ``degraded`` (some
  quarantined; still 200), or 503 once no worker survives; reports
  ``shedding`` when any worker's admission policy is rejecting load.
- ``GET /stats`` — merged meter, routing and per-worker gauges; stays
  responsive (reporting ``degraded``) while a worker is quarantined.

Overload and deadline failures map to typed statuses: admission
rejections answer 429 with a ``Retry-After`` header, draining answers
503 (also with ``Retry-After``), and requests cancelled by their own
``ttft_deadline_s``/``total_deadline_s`` answer 408/504 (non-stream)
or a final structured error chunk before ``data: [DONE]`` (stream).

Graceful drain: SIGTERM/SIGINT stops accepting connections, finishes
every in-flight request, then exits — streaming clients see their
completions run to the end.

Every response carries ``Connection: close`` (one request per
connection keeps the parser honest and the tests simple).
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import time
from collections import deque
from typing import Iterable

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig, SamplingParams
from repro.api.errors import EngineUnavailableError
from repro.api.request import GenerationRequest
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.serving.engine import ExecutorBase, make_executor

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024


# ---- async engine ------------------------------------------------------------


class AsyncEngine:
    """Single-writer async facade over an executor.

    All executor access funnels through one background task: pending
    commands (submissions, aborts, introspection calls) are applied
    between steps, then one :meth:`ExecutorBase.step` wave runs and its
    stream events are fanned out to per-request ``asyncio.Queue``s. The
    task sleeps on an event while idle and wakes on the next command.
    """

    def __init__(self, executor: ExecutorBase):
        self.executor = executor
        self._commands: deque = deque()
        self._queues: dict[int, asyncio.Queue] = {}
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._stopping = False
        self.accepting = True

    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.create_task(self._loop(), name="engine-loop")

    async def submit(
        self, request: GenerationRequest
    ) -> tuple[int, asyncio.Queue]:
        """Submit one request; returns its global id and event queue.

        The queue yields ``("token", StreamEvent)`` items followed by one
        ``("done", GenerationOutput)``. Raises the executor's validation
        errors unchanged.
        """
        if not self.accepting:
            raise EngineUnavailableError(
                "server is draining; new requests are not accepted"
            )
        return await self._enqueue("submit", request)

    async def call(self, fn, *args):
        """Run ``fn(*args)`` serialized with the engine's executor use."""
        return await self._enqueue("call", (fn, args))

    async def abort(self, request_id: int) -> bool:
        return await self._enqueue("call", (self._abort_sync, (request_id,)))

    def _abort_sync(self, request_id: int) -> bool:
        self._queues.pop(request_id, None)
        return self.executor.abort(request_id)

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, release the workers."""
        self.accepting = False
        self._stopping = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        await asyncio.to_thread(self.executor.shutdown)

    async def close(self) -> None:
        """Hard stop: cancel the loop and kill the workers."""
        self.accepting = False
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await asyncio.to_thread(self.executor.shutdown)

    async def _enqueue(self, kind: str, payload):
        fut = asyncio.get_running_loop().create_future()
        self._commands.append((kind, payload, fut))
        self._wake.set()
        return await fut

    async def _loop(self) -> None:
        executor = self.executor
        while True:
            while self._commands:
                kind, payload, fut = self._commands.popleft()
                try:
                    if kind == "submit":
                        gid = await asyncio.to_thread(
                            executor.add_request, payload
                        )
                        queue: asyncio.Queue = asyncio.Queue()
                        self._queues[gid] = queue
                        result = (gid, queue)
                    else:
                        fn, args = payload
                        result = await asyncio.to_thread(fn, *args)
                except Exception as err:
                    if not fut.cancelled():
                        fut.set_exception(err)
                else:
                    if not fut.cancelled():
                        fut.set_result(result)
            if executor.has_unfinished:
                finished, events, failures = await asyncio.to_thread(
                    self._step_sync
                )
                self._dispatch(finished, events, failures)
                continue
            if self._stopping:
                break
            self._wake.clear()
            if self._commands or executor.has_unfinished:
                continue
            await self._wake.wait()

    def _step_sync(self):
        finished = self.executor.step()
        return (
            finished,
            self.executor.pop_stream_events(),
            self.executor.pop_failures(),
        )

    def _dispatch(self, finished, events, failures=()) -> None:
        for event in events:
            if event.error is not None:
                # Terminal error marker; the typed failure record carries
                # the client-facing story.
                continue
            queue = self._queues.get(event.request_id)
            if queue is not None:
                queue.put_nowait(("token", event))
        for output in finished:
            queue = self._queues.pop(output.request_id, None)
            if queue is not None:
                queue.put_nowait(("done", output))
        for failure in failures:
            queue = self._queues.pop(failure.request_id, None)
            if queue is not None:
                queue.put_nowait(("error", failure))


# ---- request parsing / validation --------------------------------------------

# The complete ``/v1/completions`` request vocabulary. Unknown fields are
# rejected with a structured 400 (OpenAI's "unrecognized argument"
# behavior) instead of being silently dropped, so client typos surface
# immediately. The invariant linter (repro.analysis, schema pass) keeps
# this set in lockstep with the fields ``parse_completion_body`` reads
# and the response shapes with the committed schema table.
COMPLETION_REQUEST_FIELDS = frozenset({
    "budget",
    "max_tokens",
    "model",
    "policy",
    "priority",
    "prompt",
    "seed",
    "stream",
    "temperature",
    "top_p",
    "total_deadline_s",
    "ttft_deadline_s",
})


def _error_type_for(status: int) -> str:
    if status == 429:
        return "overloaded_error"
    if status in (408, 504):
        return "timeout_error"
    if status >= 500:
        return "server_error"
    if status == 400:
        return "invalid_request_error"
    # Unknown 4xx: client fault by default. The invariant linter
    # (repro.analysis, error-contract pass) keeps the arms above in
    # lockstep with the http_status values api/errors.py declares.
    return "invalid_request_error"


class _HttpError(Exception):
    """Maps straight to one structured error response."""

    def __init__(self, status: int, message: str, code: str,
                 error_type: str = "invalid_request_error",
                 headers: dict[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code
        self.error_type = error_type
        self.headers = dict(headers or {})

    @classmethod
    def from_exception(cls, err: Exception) -> "_HttpError":
        status = getattr(err, "http_status", None)
        code = getattr(err, "code", None)
        message = getattr(err, "message", None) or str(err)
        headers = {}
        retry_after = getattr(err, "retry_after_s", None)
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
        if status is None:
            if isinstance(err, (ValueError, KeyError, TypeError)):
                status, code = 400, code or "invalid_request_error"
            else:
                return cls(
                    500, f"internal error: {err}", "internal_error",
                    error_type="server_error",
                )
        return cls(status, message, code or "invalid_request_error",
                   error_type=_error_type_for(status), headers=headers)

    def body(self) -> dict:
        return {
            "error": {
                "message": self.message,
                "type": self.error_type,
                "code": self.code,
            }
        }


def _field(body: dict, name: str, types, default):
    value = body.get(name, default)
    if value is default:
        return default
    if not isinstance(value, types) or isinstance(value, bool):
        raise _HttpError(
            400, f"field {name!r} has the wrong type", "invalid_type"
        )
    return value


def parse_completion_body(
    raw: bytes, tokenizer: SyntheticTokenizer
) -> tuple[GenerationRequest, bool, dict]:
    """Decode one ``/v1/completions`` body into a request.

    Returns ``(request, stream, echo_fields)``. Raises :class:`_HttpError`
    (or the typed validation errors, which the caller maps) on bad input.
    """
    try:
        body = json.loads(raw.decode("utf-8") or "null")
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise _HttpError(400, f"body is not valid JSON: {err}", "invalid_json")
    if not isinstance(body, dict):
        raise _HttpError(400, "body must be a JSON object", "invalid_json")
    unknown = sorted(set(body) - COMPLETION_REQUEST_FIELDS)
    if unknown:
        raise _HttpError(
            400,
            f"unknown field(s): {', '.join(unknown)}",
            "unknown_field",
        )

    prompt = body.get("prompt")
    if isinstance(prompt, str):
        prompt_ids = tokenizer.encode(prompt)
    elif isinstance(prompt, list) and all(
        isinstance(t, int) and not isinstance(t, bool) for t in prompt
    ):
        prompt_ids = list(prompt)
    else:
        raise _HttpError(
            400,
            "field 'prompt' must be a string or a list of token ids",
            "invalid_prompt",
        )

    ttft_deadline = _field(body, "ttft_deadline_s", (int, float), None)
    total_deadline = _field(body, "total_deadline_s", (int, float), None)
    sampling = SamplingParams(
        max_new_tokens=_field(body, "max_tokens", int, 16),
        temperature=float(_field(body, "temperature", (int, float), 0.0)),
        top_p=float(_field(body, "top_p", (int, float), 1.0)),
        seed=_field(body, "seed", int, None),
        stop_ids=(tokenizer.eos_id,),
        ttft_deadline_s=None if ttft_deadline is None else float(ttft_deadline),
        total_deadline_s=(
            None if total_deadline is None else float(total_deadline)
        ),
    )
    policy = _field(body, "policy", str, None)
    request = GenerationRequest(
        prompt_ids=np.asarray(prompt_ids, dtype=np.int64),
        sampling=sampling,
        policy=policy,
        budget=_field(body, "budget", int, None),
        priority=_field(body, "priority", int, 0),
    )
    stream = body.get("stream", False)
    if not isinstance(stream, bool):
        raise _HttpError(400, "field 'stream' must be a boolean", "invalid_type")
    echo = {"model": _field(body, "model", str, None)}
    return request, stream, echo


# ---- HTTP server -------------------------------------------------------------


class HttpServer:
    """Minimal HTTP/1.1 server over one :class:`AsyncEngine`."""

    def __init__(
        self,
        engine: AsyncEngine,
        tokenizer: SyntheticTokenizer,
        model_name: str = "specontext-repro",
    ):
        self.engine = engine
        self.tokenizer = tokenizer
        self.model_name = model_name
        self._server: asyncio.AbstractServer | None = None

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    @property
    def addresses(self) -> list[tuple[str, int]]:
        assert self._server is not None
        return [s.getsockname()[:2] for s in self._server.sockets]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ---- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, headers, body = parsed
            await self._route(writer, method, path, body)
        except _HttpError as err:
            await self._send_json(writer, err.status, err.body(),
                                  headers=err.headers)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception as err:  # last-ditch 500; never kill the acceptor
            try:
                await self._send_json(
                    writer, 500, _HttpError.from_exception(err).body()
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) < 2:
            raise _HttpError(400, "malformed request line", "bad_request")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _HttpError(431, "headers too large", "headers_too_large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise _HttpError(400, "bad Content-Length", "bad_request")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, "body too large", "body_too_large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, writer, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if path == "/v1/completions" and method == "POST":
            await self._handle_completion(writer, body)
        elif path == "/v1/models" and method == "GET":
            await self._send_json(writer, 200, {
                "object": "list",
                "data": [{
                    "id": self.model_name,
                    "object": "model",
                    "owned_by": "repro",
                }],
            })
        elif path == "/healthz" and method == "GET":
            await self._handle_health(writer)
        elif path == "/stats" and method == "GET":
            await self._handle_stats(writer)
        else:
            raise _HttpError(
                404, f"no route for {method} {path}", "not_found"
            )

    # ---- endpoints -------------------------------------------------------------

    async def _handle_completion(self, writer, body: bytes) -> None:
        try:
            request, stream, echo = parse_completion_body(body, self.tokenizer)
        except _HttpError:
            raise
        except Exception as err:
            raise _HttpError.from_exception(err)
        try:
            gid, queue = await self.engine.submit(request)
        except Exception as err:
            raise _HttpError.from_exception(err)
        model_name = echo.get("model") or self.model_name
        if stream:
            await self._stream_completion(writer, gid, queue, model_name)
        else:
            await self._collect_completion(
                writer, gid, queue, model_name, request.prompt_len
            )

    async def _collect_completion(
        self, writer, gid: int, queue: asyncio.Queue, model_name: str,
        prompt_tokens: int,
    ) -> None:
        tokens: list[int] = []
        output = None
        while output is None:
            kind, payload = await queue.get()
            if kind == "token":
                tokens.append(payload.token_id)
            elif kind == "error":
                raise _HttpError(
                    payload.http_status, payload.message, payload.code,
                    error_type=_error_type_for(payload.http_status),
                )
            else:
                output = payload
        await self._send_json(writer, 200, {
            "id": f"cmpl-{gid}",
            "object": "text_completion",
            # OpenAI-protocol response metadata, never token state.
            "created": int(time.time()),  # repro: allow(wall-clock): protocol timestamp
            "model": model_name,
            "choices": [{
                "index": 0,
                "text": self.tokenizer.decode(output.token_ids),
                "token_ids": list(output.token_ids),
                "finish_reason": output.finish_reason,
            }],
            "usage": {
                "prompt_tokens": prompt_tokens,
                "completion_tokens": output.n_generated,
                "total_tokens": prompt_tokens + output.n_generated,
            },
        })

    async def _stream_completion(
        self, writer, gid: int, queue: asyncio.Queue, model_name: str
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        first = True
        try:
            await writer.drain()
            while True:
                kind, payload = await queue.get()
                if kind == "error":
                    # Headers already went out as 200; the error rides the
                    # stream as a final structured chunk, then the
                    # terminator — clients always see exactly one ending.
                    chunk = {
                        "id": f"cmpl-{gid}",
                        "object": "text_completion",
                        "model": model_name,
                        "error": {
                            "message": payload.message,
                            "type": _error_type_for(payload.http_status),
                            "code": payload.code,
                        },
                        "choices": [{
                            "index": 0,
                            "text": "",
                            "token_ids": [],
                            "finish_reason": payload.code,
                        }],
                    }
                    writer.write(_sse(chunk))
                    writer.write(b"data: [DONE]\n\n")
                    await writer.drain()
                    return
                if kind == "done":
                    chunk = {
                        "id": f"cmpl-{gid}",
                        "object": "text_completion",
                        "model": model_name,
                        "choices": [{
                            "index": 0,
                            "text": "",
                            "token_ids": [],
                            "finish_reason": payload.finish_reason,
                        }],
                    }
                    writer.write(_sse(chunk))
                    writer.write(b"data: [DONE]\n\n")
                    await writer.drain()
                    return
                piece = self.tokenizer.decode([payload.token_id])
                chunk = {
                    "id": f"cmpl-{gid}",
                    "object": "text_completion",
                    "model": model_name,
                    "choices": [{
                        "index": 0,
                        "text": piece if first else f" {piece}",
                        "token_ids": [payload.token_id],
                        "finish_reason": None,
                    }],
                }
                first = False
                writer.write(_sse(chunk))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            # Client went away mid-stream: stop wasting decode steps.
            await self.engine.abort(gid)

    async def _handle_health(self, writer) -> None:
        executor = self.engine.executor

        def snapshot():
            return executor.health(), executor.shedding()

        health, shedding = await self.engine.call(snapshot)
        n_alive = sum(1 for w in health if w.alive)
        if n_alive == 0:
            status, state = 503, "dead"
        elif n_alive < len(health):
            status, state = 200, "degraded"
        else:
            status, state = 200, "ok"
        await self._send_json(writer, status, {
            "status": state,
            "accepting": self.engine.accepting,
            "shedding": shedding,
            "workers": [
                {
                    "index": w.index,
                    "alive": w.alive,
                    "inflight": w.inflight,
                    "exitcode": w.exitcode,
                }
                for w in health
            ],
        })

    async def _handle_stats(self, writer) -> None:
        stats = await self.engine.call(self._stats_sync)
        await self._send_json(writer, 200, stats)

    def _stats_sync(self) -> dict:
        executor = self.engine.executor
        meter = executor.stats()
        routing = executor.routing
        return {
            "executor": executor.kind,
            "clock": executor.clock,
            "degraded": executor.degraded,
            "alive_workers": executor.n_alive,
            "inflight": len(executor._inflight),
            "finished": len(meter.finished),
            "rejected": len(meter.rejected),
            "generated_tokens": meter.generated_tokens,
            "tokens_per_step": meter.busy_tokens_per_second,
            "ttft_p50_steps": meter.ttft_percentile(50),
            "ttft_p95_steps": meter.ttft_percentile(95),
            "latency_p95_steps": meter.latency_percentile(95),
            "routing": {
                "routed": list(routing.routed),
                "affinity_hits": list(routing.affinity_hits),
                "affinity_misses": list(routing.affinity_misses),
                "cold": list(routing.cold),
                "hit_rate": routing.hit_rate,
            },
            "resubmissions": len(executor.resubmissions),
            "workers": [
                {"index": w.index, "alive": w.alive, "inflight": w.inflight}
                for w in executor.health()
            ],
        }

    async def _send_json(
        self, writer, status: int, obj: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = json.dumps(obj).encode("utf-8")
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            408: "Request Timeout", 413: "Payload Too Large",
            429: "Too Many Requests",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout",
        }.get(status, "Error")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n".encode("latin-1") + payload
        )
        await writer.drain()


def _sse(obj: dict) -> bytes:
    return b"data: " + json.dumps(obj).encode("utf-8") + b"\n\n"


# ---- entry points ------------------------------------------------------------


async def serve_async(
    server: HttpServer,
    host: str = "127.0.0.1",
    port: int = 8000,
    stop: asyncio.Event | None = None,
    ready: asyncio.Event | None = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run the HTTP server until ``stop`` is set (or SIGTERM/SIGINT).

    Shutdown is graceful: the listener closes first, then the engine
    drains every in-flight request before the workers are released.
    """
    stop = stop or asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await server.start(host, port)
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        await server.stop()
        await server.engine.drain()


def build_http_server(
    model: TransformerLM,
    tokenizer: SyntheticTokenizer,
    config: EngineConfig | None = None,
    cluster: ClusterConfig | None = None,
    model_name: str = "specontext-repro",
) -> HttpServer:
    """Executor + async engine + HTTP server, wired per the configs."""
    executor = make_executor(model, config, cluster)
    return HttpServer(AsyncEngine(executor), tokenizer, model_name=model_name)


def main(argv: Iterable[str] | None = None) -> int:
    """``python -m repro.serving.http`` — serve the tiny recall model."""
    import argparse

    from repro.models.builder import build_recall_model
    from repro.models.config import tiny_test_config

    parser = argparse.ArgumentParser(
        prog="specontext-http",
        description="OpenAI-style HTTP + SSE frontend over the "
        "process-parallel engine.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--executor", default="inproc",
                        choices=("inproc", "multiproc"))
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--router", default="least_loaded")
    parser.add_argument("--admission", default="accept_all")
    parser.add_argument("--budget", type=int, default=96)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--vocab", type=int, default=512)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(list(argv) if argv is not None else None)

    tokenizer = SyntheticTokenizer(vocab_size=args.vocab)
    model_config = tiny_test_config(
        n_layers=args.layers, vocab_size=args.vocab
    )
    model = TransformerLM(
        build_recall_model(
            model_config, tokenizer, np.random.default_rng(args.seed)
        )
    )
    config = EngineConfig(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.concurrency,
        seed=args.seed,
        admission=args.admission,
    )
    cluster = ClusterConfig(
        n_replicas=args.workers,
        router=args.router,
        executor=args.executor,
    )
    server = build_http_server(model, tokenizer, config, cluster)
    print(
        f"serving {server.model_name} on http://{args.host}:{args.port} "
        f"({args.executor} executor, {args.workers} worker(s), "
        f"{args.router} routing)"
    )
    asyncio.run(serve_async(server, args.host, args.port))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
