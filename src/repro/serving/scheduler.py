"""Memory-aware batch scheduler over the performance simulator.

The paper's cloud scenario is "high-end GPU with multiple requests": a
server must decide how many queued requests to co-run. The scheduler forms
FIFO batches of same-shape requests capped by the engine's memory fit
(via :func:`repro.perf.capacity.max_fitting_batch`), executes each batch on
the :class:`~repro.perf.simulate.PerfSimulator`, and feeds completions to a
:class:`~repro.serving.meter.ThroughputMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.capacity import DEFAULT_CANDIDATES, max_fitting_batch
from repro.perf.engines import EngineSpec
from repro.perf.simulate import PerfSimulator, Workload
from repro.serving.meter import ThroughputMeter
from repro.serving.request import Request, RequestState


@dataclass(frozen=True)
class BatchPlan:
    """One scheduled batch: which requests run together."""

    request_ids: tuple[int, ...]
    in_len: int
    out_len: int


class StaticBatchScheduler:
    """FIFO batching with a memory-derived batch cap.

    Requests are grouped in arrival order; a batch closes when it reaches
    the engine's maximum fitting size for that shape (requests of different
    shapes are padded to the batch maximum, as static-batching servers do).
    """

    def __init__(
        self,
        sim: PerfSimulator,
        engine: EngineSpec,
        candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    ):
        self.sim = sim
        self.engine = engine
        self.candidates = candidates
        # max_fitting_batch runs a 16-sample simulation per candidate batch
        # size, and plan() asks for the same (in_len, out_len) shape once
        # per candidate added to a group; the simulator is deterministic,
        # so capacity lookups are memoized for the scheduler's lifetime.
        self._capacity_cache: dict[tuple[int, int], int] = {}

    def _capacity(self, in_len: int, out_len: int) -> int:
        """Memoized ``max_fitting_batch`` for one request shape."""
        key = (in_len, out_len)
        cached = self._capacity_cache.get(key)
        if cached is None:
            cached = self._capacity_cache[key] = max_fitting_batch(
                self.sim, self.engine, in_len, out_len, self.candidates
            )
        return cached

    def plan(self, requests: list[Request]) -> list[BatchPlan]:
        """Group queued requests into executable batches."""
        plans: list[BatchPlan] = []
        queue = [r for r in requests if r.state is RequestState.QUEUED]
        i = 0
        while i < len(queue):
            head = queue[i]
            cap = self._capacity(head.in_len, head.out_len)
            if cap == 0:
                head.state = RequestState.REJECTED
                i += 1
                continue
            group = [head]
            j = i + 1
            while j < len(queue) and len(group) < cap:
                nxt = queue[j]
                pad_in = max(r.in_len for r in group + [nxt])
                pad_out = max(r.out_len for r in group + [nxt])
                padded_cap = self._capacity(pad_in, pad_out)
                if padded_cap < len(group) + 1:
                    break
                group.append(nxt)
                j += 1
            plans.append(
                BatchPlan(
                    request_ids=tuple(r.request_id for r in group),
                    in_len=max(r.in_len for r in group),
                    out_len=max(r.out_len for r in group),
                )
            )
            i = j
        return plans

    def execute(self, requests: list[Request]) -> ThroughputMeter:
        """Run all queued requests batch by batch; returns the meter."""
        by_id = {r.request_id: r for r in requests}
        meter = ThroughputMeter()
        clock = max((r.arrival_s for r in requests), default=0.0)
        for plan in self.plan(requests):
            workload = Workload(plan.in_len, plan.out_len, len(plan.request_ids))
            timeline = self.sim.simulate(self.engine, workload, n_samples=16)
            if timeline.oom:
                for rid in plan.request_ids:
                    by_id[rid].state = RequestState.REJECTED
                continue
            start = clock
            clock += timeline.total_s
            for rid in plan.request_ids:
                request = by_id[rid]
                request.state = RequestState.FINISHED
                request.start_s = start
                request.finish_s = clock
        for request in requests:
            if request.state in (RequestState.FINISHED, RequestState.REJECTED):
                meter.record(request)
        return meter
