"""CLI entry point: drive the continuous-batching server end to end.

Builds a constructed associative-recall model, submits a mixed-policy
request queue through the request-level API, and prints per-request
results plus the throughput meter summary.

Usage::

    specontext-serve                      # 8 requests, mixed policies
    specontext-serve --requests 12 --concurrency 4 --budget 96
    specontext-serve --policies specontext,quest --max-new-tokens 8
    specontext-serve --pool-blocks 40 --scheduler priority  # force pressure
    specontext-serve --replicas 4 --router prefix_affinity  # cluster mode
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api.config import ClusterConfig, EngineConfig, SamplingParams
from repro.api.request import GenerationRequest
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.retrieval.registry import available_policies, resolve_policy_name
from repro.serving.cluster import ClusterFrontend
from repro.serving.policies import (
    available_admissions,
    available_routers,
    available_schedulers,
    resolve_admission_name,
    resolve_router_name,
    resolve_scheduler_name,
)
from repro.serving.server import SpeContextServer
from repro.utils.tables import format_table
from repro.utils.units import human_bytes
from repro.workloads.base import weave_context

DEFAULT_POLICY_MIX = "specontext,quest,h2o,shadowkv,clusterkv,streaming,sliding,full"


def _recall_prompt(
    tokenizer: SyntheticTokenizer, rng: np.random.Generator, n_filler: int
) -> np.ndarray:
    """Key/value fact buried in filler, then the matching question."""
    entities = [int(t) for t in tokenizer.random_content_ids(rng, 2)]
    ids, _ = weave_context(
        tokenizer, rng, [entities], context_len=n_filler + len(entities) + 1
    )
    ids.extend([tokenizer.question_id, entities[0]])
    return np.array(ids)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="specontext-serve",
        description="Serve a mixed-policy request queue over the "
        "functional SpeContext model.",
    )
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument(
        "--policies",
        default=DEFAULT_POLICY_MIX,
        help="comma-separated policy names cycled over the queue "
        f"(available: {', '.join(available_policies())})",
    )
    parser.add_argument("--budget", type=int, default=96)
    parser.add_argument("--max-new-tokens", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--prompt-len", type=int, default=300)
    parser.add_argument("--vocab", type=int, default=512)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--block-size", type=int, default=16,
                        help="tokens per shared KV-pool block")
    parser.add_argument("--pool-blocks", type=int, default=None,
                        help="pool capacity in blocks (default: sized from "
                        "the adaptive manager; small values force "
                        "preemption)")
    parser.add_argument("--scheduler", default="fcfs",
                        help="admission/preemption policy "
                        f"(available: {', '.join(available_schedulers())})")
    parser.add_argument("--admission", default="accept_all",
                        help="overload admission controller; anything but "
                        "accept_all sheds excess load with typed 429s "
                        f"(available: {', '.join(available_admissions())})")
    parser.add_argument("--preempt-mode", default="swap",
                        choices=("swap", "recompute"))
    parser.add_argument("--no-prefix-cache", action="store_true",
                        help="disable prompt prefix-block reuse")
    parser.add_argument("--sequential-decode", action="store_true",
                        help="disable the fused batched decode path (one "
                        "batch=1 forward pass per session per step)")
    parser.add_argument("--kv-dtype", default="float64",
                        choices=("float32", "float64"),
                        help="KV cache storage precision")
    parser.add_argument("--prefill-chunk-tokens", type=int, default=None,
                        help="stream each prompt's prefill in chunks of at "
                        "most this many tokens instead of one inline "
                        "prefill at admission (kills head-of-line "
                        "blocking; bit-identical tokens)")
    parser.add_argument("--max-step-tokens", type=int, default=None,
                        help="per-step token budget shared by the decode "
                        "wave and prefill chunks (requires "
                        "--prefill-chunk-tokens)")
    parser.add_argument("--spec-decode-k", type=int, default=0,
                        help="speculative decoding draft length: draft up "
                        "to K tokens per step with the distilled model "
                        "and verify them in one fused target pass "
                        "(greedy sessions only; 0 disables)")
    parser.add_argument("--replicas", type=int, default=1,
                        help="server replicas behind the cluster frontend "
                        "(1 = plain single-server mode)")
    parser.add_argument("--router", default="prefix_affinity",
                        help="cluster routing policy, used when --replicas "
                        f"> 1 (available: {', '.join(available_routers())})")
    parser.add_argument("--stickiness-tokens", type=int, default=16,
                        help="minimum cached-prefix match for the "
                        "prefix-affinity router to stick to a replica")
    parser.add_argument("--roles", default=None,
                        help="comma-separated per-replica roles "
                        "(prefill/decode/mixed), one per replica; enables "
                        "disaggregated serving with prefill->decode "
                        "handoffs (default: all mixed)")
    parser.add_argument("--rebalance-every", type=int, default=0,
                        help="run a live-migration rebalance pass every N "
                        "cluster steps (0 disables)")
    parser.add_argument("--rebalance-ratio", type=float, default=1.5,
                        help="load imbalance ratio (max/min) that triggers "
                        "a migration during a rebalance pass")
    parser.add_argument("--max-migrations-per-pass", type=int, default=4,
                        help="cap on sessions moved per rebalance pass")
    parser.add_argument("--serve-http", action="store_true",
                        help="serve an OpenAI-style HTTP + SSE frontend "
                        "instead of running the built-in request queue")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --serve-http")
    parser.add_argument("--port", type=int, default=8000,
                        help="bind port for --serve-http")
    parser.add_argument("--executor", default="inproc",
                        choices=("inproc", "multiproc"),
                        help="engine executor for --serve-http: all "
                        "workers in-process, or one child process per "
                        "worker stepped with overlap")
    args = parser.parse_args(argv)

    try:
        policies = [resolve_policy_name(p) for p in args.policies.split(",") if p]
        scheduler = resolve_scheduler_name(args.scheduler)
        router = resolve_router_name(args.router)
        admission = resolve_admission_name(args.admission)
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 2
    if not policies:
        print("--policies needs at least one policy name", file=sys.stderr)
        return 2

    rng = np.random.default_rng(args.seed)
    tokenizer = SyntheticTokenizer(vocab_size=args.vocab)
    config = tiny_test_config(n_layers=args.layers, vocab_size=args.vocab)
    model = TransformerLM(build_recall_model(config, tokenizer, rng))
    engine_config = EngineConfig(
        budget=args.budget,
        bos_id=tokenizer.bos_id,
        max_concurrency=args.concurrency,
        seed=args.seed,
        block_size=args.block_size,
        pool_blocks=args.pool_blocks,
        enable_prefix_cache=not args.no_prefix_cache,
        preempt_mode=args.preempt_mode,
        scheduler=scheduler,
        batched_decode=not args.sequential_decode,
        kv_dtype=args.kv_dtype,
        prefill_chunk_tokens=args.prefill_chunk_tokens,
        max_step_tokens=args.max_step_tokens,
        spec_decode_k=args.spec_decode_k,
        admission=admission,
    )
    roles = None
    if args.roles:
        roles = tuple(r.strip() for r in args.roles.split(",") if r.strip())
    try:
        cluster = ClusterConfig(
            n_replicas=args.replicas,
            router=router,
            stickiness_tokens=args.stickiness_tokens,
            executor=args.executor,
            roles=roles,
            rebalance_every=args.rebalance_every,
            rebalance_ratio=args.rebalance_ratio,
            max_migrations_per_pass=args.max_migrations_per_pass,
        )
    except ValueError as err:
        print(err, file=sys.stderr)
        return 2
    if args.serve_http:
        import asyncio

        from repro.serving.http import build_http_server, serve_async
        http_server = build_http_server(model, tokenizer, engine_config, cluster)
        print(
            f"serving {http_server.model_name} on "
            f"http://{args.host}:{args.port} ({args.executor} executor, "
            f"{args.replicas} worker(s), {router} routing)"
        )
        asyncio.run(serve_async(http_server, args.host, args.port))
        return 0

    try:
        if args.replicas > 1:
            frontend = ClusterFrontend(model, engine_config, cluster)
            server = frontend.replicas[0]
        else:
            frontend = None
            server = SpeContextServer(model, engine_config)
    except ValueError as err:
        print(err, file=sys.stderr)
        return 2
    print(
        f"model: {config.n_layers}-layer {config.attention.value}, "
        f"vocab {config.vocab_size}  |  budget {args.budget}, "
        f"concurrency {args.concurrency}  |  pool "
        f"{server.pool.capacity} x {server.pool.block_size}-token blocks, "
        f"{scheduler} scheduling  |  "
        f"{'sequential' if args.sequential_decode else 'batched'} decode, "
        f"{args.kv_dtype} KV"
        + (
            f"  |  chunked prefill ({args.prefill_chunk_tokens} tokens"
            + (
                f", {args.max_step_tokens}-token step budget"
                if args.max_step_tokens is not None
                else ""
            )
            + ")"
            if args.prefill_chunk_tokens is not None
            else ""
        )
        + (
            f"  |  speculative decode (k={args.spec_decode_k})"
            if args.spec_decode_k > 0
            else ""
        )
        + (
            f"  |  {args.replicas} replicas, {router} routing"
            if frontend is not None
            else ""
        )
    )

    target = frontend if frontend is not None else server
    for i in range(args.requests):
        prompt = _recall_prompt(
            tokenizer, np.random.default_rng(args.seed + 1000 + i), args.prompt_len
        )
        try:
            target.add_request(
                GenerationRequest(
                    prompt,
                    sampling=SamplingParams(max_new_tokens=args.max_new_tokens),
                    policy=policies[i % len(policies)],
                )
            )
        except ValueError as err:
            print(err, file=sys.stderr)  # e.g. prompt larger than the pool
            return 2

    outputs = target.run()
    rows = []
    for output in outputs:
        rows.append([
            output.request_id,
            policies[output.request_id % len(policies)],
            output.n_generated,
            output.finish_reason,
            human_bytes(output.stats.bytes_transferred),
            f"{output.stats.mean_selection_overlap:.0%}",
            len(output.stats.offload_events),
            output.stats.preemptions,
            output.stats.prefix_reused_tokens,
        ])
    print()
    print(format_table(
        ["req", "policy", "tokens", "finish", "PCIe bytes", "overlap",
         "offloads", "preempts", "prefix hit"],
        rows,
        title=f"{len(outputs)} requests, continuous batching",
    ))
    if frontend is not None:
        meter = frontend.stats()
        pools = [r.pool.stats for r in frontend.replicas]
        allocated = sum(s.allocated for s in pools)
        prefill = sum(s.prefill_blocks_allocated for s in pools)
        reused = sum(s.prefix_blocks_reused for s in pools)
        n_preempted = len(frontend.preemption_log)
    else:
        meter = server.meter
        stats = server.pool.stats
        allocated, prefill, reused = (
            stats.allocated,
            stats.prefill_blocks_allocated,
            stats.prefix_blocks_reused,
        )
        n_preempted = len(server.preemption_log)
    print(
        f"\nmeter: {len(meter.finished)} finished, "
        f"{meter.generated_tokens} tokens over {meter.makespan_s:.0f} steps "
        f"({meter.tokens_per_second:.2f} tokens/step, "
        f"{meter.busy_tokens_per_second:.2f} busy)"
    )
    print(
        f"latency: ttft p50 {meter.ttft_percentile(50):.0f} / "
        f"p95 {meter.ttft_percentile(95):.0f} steps, queueing delay "
        f"p95 {meter.queueing_delay_percentile(95):.0f} steps"
    )
    print(
        f"pool: {allocated} blocks allocated ({prefill} prefill, "
        f"{reused} reused via prefix cache), {n_preempted} preemptions"
    )
    if args.spec_decode_k > 0:
        if frontend is not None:
            stats_list = [r.spec_stats for r in frontend.replicas]
            steps = sum(s.spec_steps for s in stats_list)
            drafted = sum(s.drafted for s in stats_list)
            accepted = sum(s.accepted for s in stats_list)
            rate = accepted / drafted if drafted else 0.0
        else:
            spec = server.spec_stats
            steps, drafted, accepted = spec.spec_steps, spec.drafted, spec.accepted
            rate = spec.acceptance_rate
        print(
            f"spec: {steps} verify passes, {drafted} drafted, "
            f"{accepted} accepted ({rate:.0%} acceptance)"
        )
    if frontend is not None:
        routing = frontend.routing
        rows = [
            [
                i,
                routing.routed[i],
                routing.affinity_hits[i],
                routing.affinity_misses[i],
                routing.cold[i],
                frontend.replicas[i].pool.stats.prefix_blocks_reused,
            ]
            for i in range(frontend.n_replicas)
        ]
        print()
        print(format_table(
            ["replica", "routed", "hits", "misses", "cold", "blocks reused"],
            rows,
            title=f"{router} routing, {routing.hit_rate:.0%} affinity hit "
            "rate (non-cold)",
        ))
        if frontend.migrations:
            handoffs = sum(
                1 for m in frontend.migrations
                if m.reason == "prefill_handoff"
            )
            print(
                f"migrations: {len(frontend.migrations)} sessions moved "
                f"live ({handoffs} prefill handoffs, "
                f"{len(frontend.migrations) - handoffs} rebalance)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
