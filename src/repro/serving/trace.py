"""Trace-driven serving harness: seeded arrival processes, replay, checks.

A reproduction is only trustworthy under representative randomized
workloads, so the serving layer ships its own harness instead of leaving
workload construction to ad-hoc test code:

- :func:`poisson_trace` draws seeded Poisson (exponential inter-arrival)
  request traces on the server's step-count virtual clock;
- :func:`bursty_trace` draws an on/off arrival process (dense bursts
  separated by idle gaps) — the canonical overload shape for admission
  control experiments;
- :func:`heavy_tailed_trace` draws Pareto inter-arrivals, whose rare
  huge gaps and dense clumps stress deadline feasibility;
- :func:`replay_trace` feeds a trace through a
  :class:`~repro.serving.server.SpeContextServer`, submitting each request
  when the clock reaches its arrival and stepping until drained, invoking
  an observer after every step (tests assert pool/scheduling invariants
  there);
- :func:`replay_trace_cluster` does the same through a
  :class:`~repro.serving.cluster.ClusterFrontend`, with an optional
  per-replica observer invoked for every replica after every cluster
  step (per-replica pool invariants, preemption schedules);
- :func:`solo_token_streams` computes the reference output of every
  request run alone on an identical server — the oracle for the
  batched == solo, preemption and cluster bit-identity guarantees.

Everything is deterministic at fixed seed: traces, admission order,
preemption schedules and token streams replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.api.config import EngineConfig
from repro.api.errors import OverloadedError
from repro.api.request import GenerationOutput, GenerationRequest
from repro.serving.server import SpeContextServer


@dataclass(frozen=True)
class TraceEntry:
    """One request plus its arrival time on the virtual clock."""

    arrival_step: int
    request: GenerationRequest


def poisson_trace(
    rng: np.random.Generator,
    requests: Sequence[GenerationRequest],
    mean_interarrival_steps: float,
) -> list[TraceEntry]:
    """Assign Poisson-process arrival steps to ``requests`` in order.

    Inter-arrival gaps are exponential with the given mean and floored to
    whole steps (the server clock is discrete), starting at step 0.
    """
    if mean_interarrival_steps < 0:
        raise ValueError(
            f"mean_interarrival_steps must be >= 0, got {mean_interarrival_steps}"
        )
    entries: list[TraceEntry] = []
    clock = 0.0
    for request in requests:
        entries.append(TraceEntry(arrival_step=int(clock), request=request))
        if mean_interarrival_steps > 0:
            clock += rng.exponential(mean_interarrival_steps)
    return entries


def bursty_trace(
    rng: np.random.Generator,
    requests: Sequence[GenerationRequest],
    burst_size: int,
    on_mean_interarrival_steps: float,
    off_steps: float,
) -> list[TraceEntry]:
    """On/off arrival process: dense bursts separated by idle gaps.

    Requests arrive in bursts of ``burst_size`` with exponential
    inter-arrival gaps of mean ``on_mean_interarrival_steps`` inside a
    burst; between bursts the clock jumps by an exponential gap of mean
    ``off_steps``. This is the canonical overload shape: queues build
    fast during a burst, then the system gets slack to drain — exactly
    what admission control and deadline scheduling must survive.
    Deterministic at fixed seed.
    """
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    if on_mean_interarrival_steps < 0 or off_steps < 0:
        raise ValueError(
            "on_mean_interarrival_steps and off_steps must be >= 0, got "
            f"{on_mean_interarrival_steps} and {off_steps}"
        )
    entries: list[TraceEntry] = []
    clock = 0.0
    for i, request in enumerate(requests):
        if i > 0 and i % burst_size == 0 and off_steps > 0:
            clock += rng.exponential(off_steps)
        entries.append(TraceEntry(arrival_step=int(clock), request=request))
        if on_mean_interarrival_steps > 0:
            clock += rng.exponential(on_mean_interarrival_steps)
    return entries


def heavy_tailed_trace(
    rng: np.random.Generator,
    requests: Sequence[GenerationRequest],
    shape: float = 1.5,
    scale: float = 1.0,
) -> list[TraceEntry]:
    """Pareto (heavy-tailed) inter-arrival gaps.

    Gaps are classical Pareto with tail index ``shape`` and minimum
    ``scale`` — most arrivals clump at the minimum gap while rare draws
    open huge idle stretches. Small ``shape`` (close to 1) means heavier
    tails. Deterministic at fixed seed.
    """
    if shape <= 0 or scale < 0:
        raise ValueError(
            f"shape must be > 0 and scale >= 0, got {shape} and {scale}"
        )
    entries: list[TraceEntry] = []
    clock = 0.0
    for request in requests:
        entries.append(TraceEntry(arrival_step=int(clock), request=request))
        if scale > 0:
            clock += scale * (1.0 + rng.pareto(shape))
    return entries


def replay_trace(
    server: SpeContextServer,
    trace: Sequence[TraceEntry],
    observer: Callable[[SpeContextServer], None] | None = None,
    on_reject: Callable[[GenerationRequest, Exception], None] | None = None,
) -> list[GenerationOutput]:
    """Replay a trace to completion; returns outputs sorted by request id.

    Requests are submitted when the server clock reaches their arrival
    step; across idle gaps the clock jumps to the next arrival. The
    ``observer`` runs after every step with the server as argument — the
    place to assert invariants (pool occupancy, starvation bounds) while
    the schedule is in flight. With ``on_reject`` set, admission-control
    rejections (:class:`~repro.api.errors.OverloadedError`) are routed to
    it instead of aborting the replay — the shed request is dropped from
    the schedule and the replay continues; without it they propagate.
    """
    entries = sorted(trace, key=lambda e: e.arrival_step)
    submitted = 0
    outputs: list[GenerationOutput] = []
    while submitted < len(entries) or server.has_unfinished:
        while (
            submitted < len(entries)
            and entries[submitted].arrival_step <= server.clock
        ):
            entry = entries[submitted]
            submitted += 1
            try:
                server.add_request(entry.request)
            except OverloadedError as err:
                if on_reject is None:
                    raise
                on_reject(entry.request, err)
        if not server.has_unfinished:
            if submitted >= len(entries):
                break
            server.advance_clock_to(entries[submitted].arrival_step)
            continue
        outputs.extend(server.step())
        if observer is not None:
            observer(server)
    return sorted(outputs, key=lambda o: o.request_id)


def replay_trace_cluster(
    frontend,
    trace: Sequence[TraceEntry],
    observer: Callable | None = None,
    replica_observer: Callable[[int, SpeContextServer], None] | None = None,
    on_reject: Callable[[GenerationRequest, Exception], None] | None = None,
) -> list[GenerationOutput]:
    """Replay a trace through a cluster frontend; outputs by global id.

    The frontend speaks the same submit/step/clock protocol as a single
    server, so the replay loop is :func:`replay_trace` itself; this
    wrapper adds the cluster-specific observation surface:
    ``observer(frontend)`` runs after every cluster step, then
    ``replica_observer(index, server)`` runs for every replica — the
    place to assert per-replica pool invariants while a routed schedule
    is in flight.
    """

    def observe(front) -> None:
        if observer is not None:
            observer(front)
        if replica_observer is not None:
            for index, server in enumerate(front.replicas):
                replica_observer(index, server)

    watched = observe if (observer or replica_observer) else None
    return replay_trace(frontend, trace, watched, on_reject=on_reject)


def solo_token_streams(
    model,
    config: EngineConfig,
    requests: Sequence[GenerationRequest],
    clone: Callable[[GenerationRequest], GenerationRequest],
) -> list[list[int]]:
    """Token stream of each request run alone on a fresh identical server.

    ``clone`` must produce an unsubmitted copy (no request_id, fresh
    sampling state); each solo server sees exactly one request, which is
    the reference the batched/preempted runs are compared against.
    """
    streams: list[list[int]] = []
    for request in requests:
        solo = SpeContextServer(model, config)
        solo.add_request(clone(request))
        streams.append(solo.run()[0].token_ids)
    return streams
