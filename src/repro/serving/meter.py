"""Throughput and latency accounting for serving runs.

Latency aggregates are computed **only** over requests that are finished
with valid timestamps. Rejected requests (which legitimately carry unset
``start_s``/``finish_s``) are counted separately and can never skew
latency or throughput numbers; a record whose state is mutated after being
recorded (e.g. a finished request requeued for a retry pass) is likewise
excluded at read time instead of crashing or contributing a stale sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import Request, RequestState


@dataclass
class ThroughputMeter:
    """Aggregates completed requests into serving metrics."""

    finished: list[Request] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)

    @classmethod
    def merge(cls, *meters: "ThroughputMeter") -> "ThroughputMeter":
        """One meter over the union of several meters' records.

        The cluster frontend keeps one :class:`ThroughputMeter` per
        replica (each server stamps its own completions); a merged view is
        needed for cluster-wide percentiles, which are *not* derivable
        from per-replica aggregates (a p95 of p95s is not the p95 of the
        union). Records are shared, not copied — the merged meter is a
        read-side view, and mutating it (``record``/``clear``) does not
        touch the sources.
        """
        merged = cls()
        for meter in meters:
            merged.finished.extend(meter.finished)
            merged.rejected.extend(meter.rejected)
        return merged

    def record(self, request: Request) -> None:
        if request.state is RequestState.FINISHED:
            if request.finish_s < request.start_s or (
                request.finish_s < request.arrival_s
            ):
                raise ValueError(
                    f"request {request.request_id} recorded as finished with "
                    f"unset/inverted timestamps (arrival={request.arrival_s}, "
                    f"start={request.start_s}, finish={request.finish_s})"
                )
            if request.first_token_s is not None and (
                request.first_token_s < request.arrival_s
                or request.first_token_s > request.finish_s
            ):
                raise ValueError(
                    f"request {request.request_id} recorded with first token "
                    f"outside its lifetime (arrival={request.arrival_s}, "
                    f"first_token={request.first_token_s}, "
                    f"finish={request.finish_s})"
                )
            self.finished.append(request)
        elif request.state is RequestState.REJECTED:
            self.rejected.append(request)
        else:
            raise ValueError(f"request {request.request_id} still {request.state}")

    def _completed(self) -> list[Request]:
        """Finished records that are *still* finished (state re-checked)."""
        return [r for r in self.finished if r.state is RequestState.FINISHED]

    @property
    def n_rejected(self) -> int:
        return len(self.rejected)

    @property
    def completion_rate(self) -> float:
        """Fraction of recorded requests that finished (1.0 when none)."""
        total = len(self.finished) + len(self.rejected)
        if total == 0:
            return 1.0
        return len(self._completed()) / total

    @property
    def makespan_s(self) -> float:
        """Wall time from first arrival to last completion."""
        completed = self._completed()
        if not completed:
            return 0.0
        start = min(r.arrival_s for r in completed)
        end = max(r.finish_s for r in completed)
        return end - start

    @property
    def generated_tokens(self) -> int:
        return sum(r.out_len for r in self._completed())

    @property
    def tokens_per_second(self) -> float:
        """Aggregate decode-token throughput over the makespan."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return self.generated_tokens / span

    @property
    def busy_s(self) -> float:
        """Total time with at least one request in service.

        The union of the completed requests' ``[start_s, finish_s]``
        intervals. Trace replay jumps the clock across arrival gaps
        (``advance_clock_to``), which inflates the makespan without the
        server doing any work; the busy span excludes those injected
        idle gaps.
        """
        completed = self._completed()
        intervals = sorted((r.start_s, r.finish_s) for r in completed)
        busy = 0.0
        span_start: float | None = None
        span_end = 0.0
        for start, end in intervals:
            if span_start is None or start > span_end:
                if span_start is not None:
                    busy += span_end - span_start
                span_start, span_end = start, end
            else:
                span_end = max(span_end, end)
        if span_start is not None:
            busy += span_end - span_start
        return busy

    @property
    def busy_tokens_per_second(self) -> float:
        """Decode-token throughput over busy periods only.

        The makespan-based :attr:`tokens_per_second` punishes sparse
        traces for their idle gaps; this is the rate while the server was
        actually serving, the number to compare across trace densities.
        """
        busy = self.busy_s
        if busy <= 0:
            return 0.0
        return self.generated_tokens / busy

    def latency_percentile(self, q: float) -> float:
        """q-th percentile of end-to-end request latency (q in [0, 100])."""
        completed = self._completed()
        if not completed:
            return 0.0
        return float(np.percentile([r.latency_s for r in completed], q))

    @property
    def mean_latency_s(self) -> float:
        completed = self._completed()
        if not completed:
            return 0.0
        return float(np.mean([r.latency_s for r in completed]))

    def _ttft_samples(self) -> list[float]:
        return [
            r.ttft_s for r in self._completed() if r.first_token_s is not None
        ]

    def ttft_percentile(self, q: float) -> float:
        """q-th percentile of time-to-first-token (q in [0, 100]).

        Only requests whose first-token time was recorded contribute;
        the server stamps every finished request, legacy/synthetic
        records without one are simply excluded.
        """
        samples = self._ttft_samples()
        if not samples:
            return 0.0
        return float(np.percentile(samples, q))

    @property
    def mean_ttft_s(self) -> float:
        samples = self._ttft_samples()
        if not samples:
            return 0.0
        return float(np.mean(samples))

    def queueing_delay_percentile(self, q: float) -> float:
        """q-th percentile of arrival->activation delay (q in [0, 100])."""
        completed = self._completed()
        if not completed:
            return 0.0
        return float(np.percentile([r.queueing_delay_s for r in completed], q))

    @property
    def mean_queueing_delay_s(self) -> float:
        completed = self._completed()
        if not completed:
            return 0.0
        return float(np.mean([r.queueing_delay_s for r in completed]))
