"""Throughput and latency accounting for serving runs.

Latency aggregates are computed **only** over requests that are finished
with valid timestamps. Rejected requests (which legitimately carry unset
``start_s``/``finish_s``) are counted separately and can never skew
latency or throughput numbers; a record whose state is mutated after being
recorded (e.g. a finished request requeued for a retry pass) is likewise
excluded at read time instead of crashing or contributing a stale sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import Request, RequestState


@dataclass
class ThroughputMeter:
    """Aggregates completed requests into serving metrics."""

    finished: list[Request] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)

    def record(self, request: Request) -> None:
        if request.state is RequestState.FINISHED:
            if request.finish_s < request.start_s or (
                request.finish_s < request.arrival_s
            ):
                raise ValueError(
                    f"request {request.request_id} recorded as finished with "
                    f"unset/inverted timestamps (arrival={request.arrival_s}, "
                    f"start={request.start_s}, finish={request.finish_s})"
                )
            self.finished.append(request)
        elif request.state is RequestState.REJECTED:
            self.rejected.append(request)
        else:
            raise ValueError(f"request {request.request_id} still {request.state}")

    def _completed(self) -> list[Request]:
        """Finished records that are *still* finished (state re-checked)."""
        return [r for r in self.finished if r.state is RequestState.FINISHED]

    @property
    def n_rejected(self) -> int:
        return len(self.rejected)

    @property
    def completion_rate(self) -> float:
        """Fraction of recorded requests that finished (1.0 when none)."""
        total = len(self.finished) + len(self.rejected)
        if total == 0:
            return 1.0
        return len(self._completed()) / total

    @property
    def makespan_s(self) -> float:
        """Wall time from first arrival to last completion."""
        completed = self._completed()
        if not completed:
            return 0.0
        start = min(r.arrival_s for r in completed)
        end = max(r.finish_s for r in completed)
        return end - start

    @property
    def generated_tokens(self) -> int:
        return sum(r.out_len for r in self._completed())

    @property
    def tokens_per_second(self) -> float:
        """Aggregate decode-token throughput over the makespan."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return self.generated_tokens / span

    def latency_percentile(self, q: float) -> float:
        """q-th percentile of end-to-end request latency (q in [0, 100])."""
        completed = self._completed()
        if not completed:
            return 0.0
        return float(np.percentile([r.latency_s for r in completed], q))

    @property
    def mean_latency_s(self) -> float:
        completed = self._completed()
        if not completed:
            return 0.0
        return float(np.mean([r.latency_s for r in completed]))
