"""Throughput and latency accounting for serving runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.request import Request, RequestState


@dataclass
class ThroughputMeter:
    """Aggregates completed requests into serving metrics."""

    finished: list[Request] = field(default_factory=list)
    rejected: list[Request] = field(default_factory=list)

    def record(self, request: Request) -> None:
        if request.state is RequestState.FINISHED:
            self.finished.append(request)
        elif request.state is RequestState.REJECTED:
            self.rejected.append(request)
        else:
            raise ValueError(f"request {request.request_id} still {request.state}")

    @property
    def makespan_s(self) -> float:
        """Wall time from first arrival to last completion."""
        if not self.finished:
            return 0.0
        start = min(r.arrival_s for r in self.finished)
        end = max(r.finish_s for r in self.finished)
        return end - start

    @property
    def generated_tokens(self) -> int:
        return sum(r.out_len for r in self.finished)

    @property
    def tokens_per_second(self) -> float:
        """Aggregate decode-token throughput over the makespan."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return self.generated_tokens / span

    def latency_percentile(self, q: float) -> float:
        """q-th percentile of end-to-end request latency (q in [0, 100])."""
        if not self.finished:
            return 0.0
        return float(np.percentile([r.latency_s for r in self.finished], q))

    @property
    def mean_latency_s(self) -> float:
        if not self.finished:
            return 0.0
        return float(np.mean([r.latency_s for r in self.finished]))
