"""Unified placement & migration planning for the cluster layer.

Both multi-replica frontends — :class:`~repro.serving.cluster
.ClusterFrontend` (direct in-process replicas) and
:class:`~repro.serving.engine.executor.ExecutorBase` (replicas behind
worker handles) — used to carry their own copies of the same submission
logic: probe every replica, save the router cursor, route, range-check
the answer, restore the cursor on rejection, and book the placement into
hit/miss/cold affinity stats. This module is that logic, once, as an
explicit three-phase surface::

    placement = engine.place(request, views)        # route (cursor saved)
    ... submit to views[placement.target] ...
    engine.commit(placement)                        # book stats
    # or, when the submission was rejected:
    engine.rollback(placement)                      # restore the cursor

plus the *migration planner* the live-KV-migration paths share:

- :meth:`PlacementEngine.plan_rebalance` drains whole sessions from the
  most loaded replica toward the least loaded one until the skew drops
  under ``cluster.rebalance_ratio``;
- :meth:`PlacementEngine.plan_handoffs` moves sessions that finished
  prefill on a ``prefill``-role replica to the least-loaded
  decode-capable replica (disaggregated prefill/decode).

Plans are pure data (:class:`MigrationPlan`); the frontends apply them
with :meth:`~repro.serving.server.SpeContextServer.export_session` /
``import_session`` or the ``export_kv``/``import_kv`` worker ops. All
planning is deterministic: ties break toward the lowest replica index
and the lowest request id, so a replayed trace rebalances identically.

Roles (``cluster.roles``) bias *placement only*: new requests land on
prefill-capable replicas, handoffs target decode-capable ones. Every
replica remains a full server, so a cluster with no live decode target
degrades to local decode rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.api.config import ClusterConfig
from repro.api.errors import EngineUnavailableError
from repro.serving.registry import ROUTERS

ROLE_PREFILL = "prefill"
ROLE_DECODE = "decode"
ROLE_MIXED = "mixed"


@dataclass
class ClusterRoutingStats:
    """Per-target placement accounting (one list slot per target).

    A routed request is an **affinity hit** when the chosen target's
    prefix cache covered at least ``stickiness_tokens`` of its prompt at
    placement time, an **affinity miss** when some *other* target held
    such a match but the chosen one did not (locality left on the
    table — the round-robin failure mode), and **cold** when no target
    held a qualifying match (nothing to exploit; every group's first
    request is cold). Hits + misses + cold = routed.
    """

    routed: list[int] = field(default_factory=list)
    affinity_hits: list[int] = field(default_factory=list)
    affinity_misses: list[int] = field(default_factory=list)
    cold: list[int] = field(default_factory=list)

    @property
    def total_routed(self) -> int:
        return sum(self.routed)

    @property
    def hit_rate(self) -> float:
        """Affinity hits over non-cold placements (1.0 when all cold)."""
        contested = sum(self.affinity_hits) + sum(self.affinity_misses)
        if contested == 0:
            return 1.0
        return sum(self.affinity_hits) / contested


@dataclass(frozen=True)
class Placement:
    """One routing decision, held open until committed or rolled back.

    ``matches`` is the per-replica prefix-probe result (every replica,
    placement-eligible or not) so commit-time affinity accounting sees
    the same matches the router saw. ``cursor`` is the router's stateful
    cursor *before* routing — ``rollback`` restores it so a rejected
    submission leaves placement identical to a run that never saw it.
    """

    target: int
    matches: tuple[int, ...]
    cursor: int | None


@dataclass(frozen=True)
class MigrationPlan:
    """One planned session move: drain ``request_id`` from source to target.

    ``charge`` is the session's reserved-token commitment
    (``prompt + max_new_tokens``), the load the move transfers; ``reason``
    is ``"rebalance"`` (load skew) or ``"prefill_handoff"``
    (disaggregated prefill -> decode role transition).
    """

    request_id: int
    source: int
    target: int
    charge: int
    reason: str


class _ProbedView:
    """A target view with this request's prefix probe memoized.

    The engine probes every target once per submission (it needs the
    matches for hit/miss accounting whatever the router); handing the
    router these memoized views means ``prefix_affinity`` does not walk
    the blake2b chains a second time. ``index`` is overridable because
    role filtering routes over a positionally re-indexed subset: routers
    return either ``view.index`` (load/affinity routers) or a cursor
    position (round-robin), and the two only coincide when the view
    list is positionally indexed.
    """

    def __init__(self, view, match: int, index: int | None = None):
        self.index = view.index if index is None else index
        self._view = view
        self._match = match

    @property
    def queue_depth(self) -> int:
        return self._view.queue_depth

    @property
    def reserved_tokens(self) -> int:
        return self._view.reserved_tokens

    def prefix_match_tokens(self, prompt_ids: np.ndarray) -> int:
        return self._match


class PlacementEngine:
    """The one placement/migration decision-maker both frontends speak."""

    def __init__(self, cluster: ClusterConfig, n_targets: int):
        self.cluster = cluster
        self.n_targets = int(n_targets)
        self.roles: tuple[str, ...] = tuple(
            cluster.roles
            if cluster.roles is not None
            else (ROLE_MIXED,) * self.n_targets
        )
        if len(self.roles) != self.n_targets:
            raise ValueError(
                f"{len(self.roles)} roles for {self.n_targets} targets"
            )
        router_opts = {}
        if ROUTERS.resolve(cluster.router) == "prefix_affinity":
            router_opts["stickiness_tokens"] = cluster.stickiness_tokens
        self.router = ROUTERS.make(cluster.router, **router_opts)
        self.routing = ClusterRoutingStats(
            routed=[0] * self.n_targets,
            affinity_hits=[0] * self.n_targets,
            affinity_misses=[0] * self.n_targets,
            cold=[0] * self.n_targets,
        )

    # ---- roles -----------------------------------------------------------------

    @property
    def disaggregated(self) -> bool:
        """True when any replica is role-specialized (non-mixed)."""
        return any(role != ROLE_MIXED for role in self.roles)

    def can_prefill(self, index: int) -> bool:
        return self.roles[index] in (ROLE_PREFILL, ROLE_MIXED)

    def can_decode(self, index: int) -> bool:
        return self.roles[index] in (ROLE_DECODE, ROLE_MIXED)

    # ---- routing ---------------------------------------------------------------

    def place(
        self,
        request,
        views: Sequence,
        alive: Sequence[bool] | None = None,
    ) -> Placement:
        """Route one request onto a live, prefill-capable target.

        ``views`` is the full per-target view list (one entry per
        replica, dead ones included — callers hand dead workers sentinel
        loads so cursor arithmetic never depends on liveness). ``alive``
        marks which targets can actually accept a submission; load-aware
        routers avoid dead targets through the sentinels, and round-robin
        simply advances past one, so re-routing terminates.

        Returns a :class:`Placement` that MUST be either committed or
        rolled back. Raises :class:`~repro.api.errors
        .EngineUnavailableError` when no eligible live target exists.
        """
        matches = tuple(
            view.prefix_match_tokens(request.prompt_ids) for view in views
        )
        cursor = getattr(self.router, "_next", None)
        eligible = [i for i in range(self.n_targets) if self.can_prefill(i)]
        if len(eligible) == self.n_targets:
            # The historical all-mixed path: route over every view with
            # its real index, so cursor arithmetic is unchanged.
            routable: Sequence = [
                _ProbedView(view, match)
                for view, match in zip(views, matches)
            ]
            translate = None
        else:
            routable = [
                _ProbedView(views[i], matches[i], index=pos)
                for pos, i in enumerate(eligible)
            ]
            translate = eligible
        for _ in range(len(eligible)):
            chosen = self.router.route(request, routable)
            if not 0 <= chosen < len(routable):
                raise ValueError(
                    f"router {self.router.name!r} returned target {chosen}; "
                    f"{len(routable)} targets are placement-eligible"
                )
            target = chosen if translate is None else translate[chosen]
            if alive is None or alive[target]:
                return Placement(target=target, matches=matches, cursor=cursor)
        if cursor is not None:
            self.router._next = cursor
        raise EngineUnavailableError("router found no live worker")

    def commit(self, placement: Placement) -> None:
        """Book a successful submission into the affinity stats."""
        target = placement.target
        self.routing.routed[target] += 1
        threshold = self.cluster.stickiness_tokens
        if placement.matches[target] >= threshold:
            self.routing.affinity_hits[target] += 1
        elif max(placement.matches) >= threshold:
            self.routing.affinity_misses[target] += 1
        else:
            self.routing.cold[target] += 1

    def rollback(self, placement: Placement) -> None:
        """Undo a rejected placement: restore the router cursor."""
        if placement.cursor is not None:
            self.router._next = placement.cursor

    # ---- migration planning ----------------------------------------------------

    def plan_rebalance(
        self,
        loads: Sequence[int | None],
        migratable: Mapping[int, Sequence[tuple[int, int, bool]]],
        key_of: Callable[[int], tuple] | None = None,
    ) -> list[MigrationPlan]:
        """Plan session moves that shrink cluster load skew.

        ``loads[i]`` is target *i*'s load (reserved tokens + queue depth,
        the least-loaded router's quantity) or None when it is dead.
        ``migratable[i]`` lists ``(request_id, charge, prefill_done)``
        for sessions that could leave target *i*. ``key_of`` optionally
        maps a request id to a deterministic tiebreak key (the executor
        passes global-id order); defaults to the id itself.

        Greedy and deterministic: while the most loaded target exceeds
        ``rebalance_ratio`` times the least loaded *role-compatible*
        target, move the largest session whose charge fits inside the
        gap (so a move never flips the imbalance), up to
        ``max_migrations_per_pass`` moves. Each move updates the modeled
        loads, so one pass converges instead of oscillating.
        """
        key_of = key_of or (lambda rid: (rid,))
        live = [i for i, load in enumerate(loads) if load is not None]
        if len(live) < 2:
            return []
        loads = list(loads)
        remaining: dict[int, list[tuple[int, int, bool]]] = {
            i: list(migratable.get(i, ())) for i in live
        }
        plans: list[MigrationPlan] = []
        ratio = self.cluster.rebalance_ratio
        while len(plans) < self.cluster.max_migrations_per_pass:
            order = sorted(live, key=lambda i: (-loads[i], i))
            planned = None
            for source in order:
                if not remaining[source]:
                    continue
                # Largest movable session first (ties toward the lowest
                # request id): moves the most load per migration.
                for rid, charge, done in sorted(
                    remaining[source],
                    key=lambda item: (-item[1], key_of(item[0])),
                ):
                    compatible = self.can_decode if done else self.can_prefill
                    targets = [
                        i for i in live if i != source and compatible(i)
                    ]
                    if not targets:
                        continue
                    target = min(targets, key=lambda i: (loads[i], i))
                    if loads[source] <= ratio * max(loads[target], 1):
                        continue  # skew below the trigger for this pair
                    if charge >= loads[source] - loads[target]:
                        continue  # the move would overshoot the gap
                    planned = (source, target, rid, charge, done)
                    break
                if planned is not None:
                    break
            if planned is None:
                return plans
            source, target, rid, charge, done = planned
            remaining[source].remove((rid, charge, done))
            loads[source] -= charge
            loads[target] += charge
            plans.append(
                MigrationPlan(
                    request_id=rid,
                    source=source,
                    target=target,
                    charge=charge,
                    reason="rebalance",
                )
            )
        return plans

    def plan_handoffs(
        self,
        loads: Sequence[int | None],
        migratable: Mapping[int, Sequence[tuple[int, int, bool]]],
    ) -> list[MigrationPlan]:
        """Plan prefill -> decode handoffs (disaggregated mode only).

        Every session that has *completed* prefill on a ``prefill``-role
        target moves to the least-loaded live decode-capable target, in
        (source index, request id) order. With no live decode-capable
        target the session stays put and decodes locally — roles bias
        placement, they never strand work.
        """
        if not self.disaggregated:
            return []
        live = [i for i, load in enumerate(loads) if load is not None]
        decode_targets = [i for i in live if self.can_decode(i)]
        if not decode_targets:
            return []
        loads = list(loads)
        plans: list[MigrationPlan] = []
        for source in live:
            if self.roles[source] != ROLE_PREFILL:
                continue
            for rid, charge, done in sorted(migratable.get(source, ())):
                if not done:
                    continue
                target = min(decode_targets, key=lambda i: (loads[i], i))
                loads[source] -= charge
                loads[target] += charge
                plans.append(
                    MigrationPlan(
                        request_id=rid,
                        source=source,
                        target=target,
                        charge=charge,
                        reason="prefill_handoff",
                    )
                )
        return plans
