"""Scheduler-policy registry: pluggable admission and preemption ordering.

Mirrors :mod:`repro.retrieval.registry` for the serving layer: every
scheduling discipline is registered under a canonical name (plus display
aliases) and resolved through one factory::

    scheduler = make_scheduler("priority")
    waiting.sort(key=scheduler.admission_key)
    victim = min(active, key=scheduler.victim_key)

A policy supplies two sort keys over the server's session view:

- ``admission_key``: waiting sessions are admitted in ascending key order;
- ``victim_key``: under pool pressure the active session with the smallest
  key is preempted first.

Keys must be total orders (ties broken by request id) so scheduling is
deterministic at fixed seed — the trace tests replay schedules and compare
token streams bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Protocol


class SchedulableSession(Protocol):
    """What a scheduler may inspect about a session (duck-typed).

    ``admission_key`` also orders the chunked-prefill phase's token-budget
    spending across still-prefilling sessions (``sjf`` lets a short
    prompt's chunks slip past a long prefill; ``fcfs`` keeps strict
    arrival order). ``prefill_done``/``prefill_pos`` expose the chunk
    cursor so custom policies can rank victims by work completed — a
    mid-prefill session loses the least progress when preempted.
    """

    @property
    def request_id(self) -> int: ...

    @property
    def priority(self) -> int: ...

    @property
    def prompt_len(self) -> int: ...

    @property
    def arrival_s(self) -> float: ...

    @property
    def prefill_done(self) -> bool: ...

    @property
    def prefill_pos(self) -> int: ...


class SchedulerPolicy:
    """Base: FIFO admission, LIFO (latest-arrival) preemption."""

    name = "fcfs"

    def admission_key(self, session: SchedulableSession):
        return (session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        # Preempt the most recently arrived session first: it has done the
        # least work and its requeue wastes the least progress.
        return (-session.arrival_s, -session.request_id)


SchedulerBuilder = Callable[[], SchedulerPolicy]

_REGISTRY: dict[str, SchedulerBuilder] = {}
_ALIASES: dict[str, str] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "").replace("_", "")


def register_scheduler(
    name: str, *aliases: str
) -> Callable[[SchedulerBuilder], SchedulerBuilder]:
    """Decorator adding a scheduler under ``name`` (plus aliases)."""

    def deco(builder: SchedulerBuilder) -> SchedulerBuilder:
        key = _normalize(name)
        if key in _REGISTRY:
            raise ValueError(f"duplicate scheduler name {name!r}")
        _REGISTRY[key] = builder
        for alias in aliases:
            _ALIASES[_normalize(alias)] = key
        return builder

    return deco


def available_schedulers() -> tuple[str, ...]:
    """Canonical scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_scheduler_name(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive)."""
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{list(available_schedulers())}"
        )
    return key


def make_scheduler(name: str) -> SchedulerPolicy:
    """Build the scheduling policy registered under ``name``."""
    return _REGISTRY[resolve_scheduler_name(name)]()


@register_scheduler("fcfs", "fifo")
def _build_fcfs() -> SchedulerPolicy:
    return SchedulerPolicy()


@register_scheduler("priority", "prio")
class PriorityScheduler(SchedulerPolicy):
    """Higher request priority admits first and is preempted last."""

    name = "priority"

    def admission_key(self, session: SchedulableSession):
        return (-session.priority, session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        return (session.priority, -session.arrival_s, -session.request_id)


@register_scheduler("sjf", "shortestpromptfirst", "spf")
class ShortestPromptFirstScheduler(SchedulerPolicy):
    """Admit short prompts first; evict the largest KV holder first."""

    name = "sjf"

    def admission_key(self, session: SchedulableSession):
        return (session.prompt_len, session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        return (-session.prompt_len, -session.arrival_s, -session.request_id)
