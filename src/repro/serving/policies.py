"""Scheduler- and router-policy registries for the serving layer.

Mirrors :mod:`repro.retrieval.registry`: every scheduling discipline and
every cluster routing discipline is registered under a canonical name
(plus display aliases) and resolved through one factory::

    scheduler = make_scheduler("priority")
    waiting.sort(key=scheduler.admission_key)
    victim = min(active, key=scheduler.victim_key)

    router = make_router("prefix_affinity", stickiness_tokens=16)
    replica = router.route(request, replica_views)

A scheduler policy supplies two sort keys over the server's session view:

- ``admission_key``: waiting sessions are admitted in ascending key order;
- ``victim_key``: under pool pressure the active session with the smallest
  key is preempted first.

A router policy places one request on one replica of a
:class:`~repro.serving.cluster.ClusterFrontend`; it sees only the cheap
:class:`ReplicaView` surface (queue depth, reserved tokens, a read-only
prefix-cache probe), never the replicas' internals.

Keys and routing decisions must be deterministic at fixed seed (ties
broken by replica index / request id) — the trace tests replay schedules
and compare token streams bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np


class SchedulableSession(Protocol):
    """What a scheduler may inspect about a session (duck-typed).

    ``admission_key`` also orders the chunked-prefill phase's token-budget
    spending across still-prefilling sessions (``sjf`` lets a short
    prompt's chunks slip past a long prefill; ``fcfs`` keeps strict
    arrival order). ``prefill_done``/``prefill_pos`` expose the chunk
    cursor so custom policies can rank victims by work completed — a
    mid-prefill session loses the least progress when preempted.
    """

    @property
    def request_id(self) -> int: ...

    @property
    def priority(self) -> int: ...

    @property
    def prompt_len(self) -> int: ...

    @property
    def arrival_s(self) -> float: ...

    @property
    def prefill_done(self) -> bool: ...

    @property
    def prefill_pos(self) -> int: ...


class SchedulerPolicy:
    """Base: FIFO admission, LIFO (latest-arrival) preemption."""

    name = "fcfs"

    def admission_key(self, session: SchedulableSession):
        return (session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        # Preempt the most recently arrived session first: it has done the
        # least work and its requeue wastes the least progress.
        return (-session.arrival_s, -session.request_id)


SchedulerBuilder = Callable[[], SchedulerPolicy]

_REGISTRY: dict[str, SchedulerBuilder] = {}
_ALIASES: dict[str, str] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "").replace("_", "")


def register_scheduler(
    name: str, *aliases: str
) -> Callable[[SchedulerBuilder], SchedulerBuilder]:
    """Decorator adding a scheduler under ``name`` (plus aliases)."""

    def deco(builder: SchedulerBuilder) -> SchedulerBuilder:
        key = _normalize(name)
        if key in _REGISTRY:
            raise ValueError(f"duplicate scheduler name {name!r}")
        _REGISTRY[key] = builder
        for alias in aliases:
            _ALIASES[_normalize(alias)] = key
        return builder

    return deco


def available_schedulers() -> tuple[str, ...]:
    """Canonical scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_scheduler_name(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive)."""
    key = _normalize(name)
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{list(available_schedulers())}"
        )
    return key


def make_scheduler(name: str) -> SchedulerPolicy:
    """Build the scheduling policy registered under ``name``."""
    return _REGISTRY[resolve_scheduler_name(name)]()


@register_scheduler("fcfs", "fifo")
def _build_fcfs() -> SchedulerPolicy:
    return SchedulerPolicy()


@register_scheduler("priority", "prio")
class PriorityScheduler(SchedulerPolicy):
    """Higher request priority admits first and is preempted last."""

    name = "priority"

    def admission_key(self, session: SchedulableSession):
        return (-session.priority, session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        return (session.priority, -session.arrival_s, -session.request_id)


@register_scheduler("sjf", "shortestpromptfirst", "spf")
class ShortestPromptFirstScheduler(SchedulerPolicy):
    """Admit short prompts first; evict the largest KV holder first."""

    name = "sjf"

    def admission_key(self, session: SchedulableSession):
        return (session.prompt_len, session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        return (-session.prompt_len, -session.arrival_s, -session.request_id)


# ---- cluster routers ---------------------------------------------------------


class ReplicaView(Protocol):
    """What a router may inspect about one replica (duck-typed).

    ``reserved_tokens`` is the replica's outstanding admission charge —
    the sum of ``prompt + max_new_tokens`` over every unfinished session,
    i.e. the KV the replica is committed to if everything runs to length.
    ``prefix_match_tokens`` is the read-only probe of the replica's
    prefix cache (:meth:`repro.kvcache.pool.PagedKVPool
    .longest_prefix_match`); it never mutates cache state, so routers may
    probe every replica for every request.
    """

    @property
    def index(self) -> int: ...

    @property
    def queue_depth(self) -> int: ...

    @property
    def reserved_tokens(self) -> int: ...

    def prefix_match_tokens(self, prompt_ids: np.ndarray) -> int: ...


class RoutableRequest(Protocol):
    """What a router may inspect about the request being placed."""

    @property
    def prompt_ids(self) -> np.ndarray: ...

    @property
    def prompt_len(self) -> int: ...


def _load_key(replica: ReplicaView) -> tuple[int, int]:
    """Least-loaded total order: reserved tokens + queue depth, then index."""
    return (replica.reserved_tokens + replica.queue_depth, replica.index)


class RouterPolicy:
    """Base router: round-robin placement (stateful cursor, one per frontend)."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def route(
        self, request: RoutableRequest, replicas: Sequence[ReplicaView]
    ) -> int:
        """Replica index to place ``request`` on (must be deterministic)."""
        chosen = self._next % len(replicas)
        self._next += 1
        return chosen


RouterBuilder = Callable[..., RouterPolicy]

# Canonical (registered, display-friendly) name -> builder; the lookup
# table maps normalized spellings and aliases back to the canonical name,
# so ``prefix_affinity`` stays ``prefix_affinity`` in banners and reports
# instead of a squashed ``prefixaffinity``.
_ROUTER_REGISTRY: dict[str, RouterBuilder] = {}
_ROUTER_LOOKUP: dict[str, str] = {}


def register_router(
    name: str, *aliases: str
) -> Callable[[RouterBuilder], RouterBuilder]:
    """Decorator adding a router under ``name`` (plus aliases)."""

    def deco(builder: RouterBuilder) -> RouterBuilder:
        if name in _ROUTER_REGISTRY:
            raise ValueError(f"duplicate router name {name!r}")
        _ROUTER_REGISTRY[name] = builder
        for alias in (name, *aliases):
            _ROUTER_LOOKUP[_normalize(alias)] = name
        return builder

    return deco


def available_routers() -> tuple[str, ...]:
    """Canonical router names, sorted."""
    return tuple(sorted(_ROUTER_REGISTRY))


def resolve_router_name(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive)."""
    key = _ROUTER_LOOKUP.get(_normalize(name))
    if key is None:
        raise KeyError(
            f"unknown router {name!r}; available: {list(available_routers())}"
        )
    return key


def make_router(name: str, **opts) -> RouterPolicy:
    """Build the routing policy registered under ``name``.

    ``opts`` are forwarded to the router's constructor; routers reject
    options they do not understand (a misspelled knob must not silently
    fall back to defaults).
    """
    return _ROUTER_REGISTRY[resolve_router_name(name)](**opts)


@register_router("round_robin", "rr", "roundrobin")
def _build_round_robin() -> RouterPolicy:
    return RouterPolicy()


@register_router("least_loaded", "ll", "leastloaded")
class LeastLoadedRouter(RouterPolicy):
    """Place on the replica with the least outstanding work.

    Load is the admission charge (reserved tokens of unfinished sessions)
    plus the waiting-queue depth; ties break toward the lowest replica
    index so placement is deterministic.
    """

    name = "least_loaded"

    def route(
        self, request: RoutableRequest, replicas: Sequence[ReplicaView]
    ) -> int:
        return min(replicas, key=_load_key).index


@register_router("prefix_affinity", "pa", "prefixaffinity")
class PrefixAffinityRouter(RouterPolicy):
    """Route to the replica whose prefix cache best covers the prompt.

    Every replica's pool is probed (read-only blake2b-chain walk) for the
    longest cached prefix of the prompt. When the best match reaches
    ``stickiness_tokens``, the request sticks to that replica — turning
    each replica's prefix cache into a cluster-wide asset — with ties
    broken by load, then index. Below the threshold the match is too
    small to be worth colocating for (a short shared BOS block, say) and
    placement falls back to least-loaded, which also spreads the *first*
    request of every new prefix group across the cluster.
    """

    name = "prefix_affinity"

    def __init__(self, stickiness_tokens: int = 16):
        super().__init__()
        if stickiness_tokens < 1:
            raise ValueError(
                f"stickiness_tokens must be >= 1, got {stickiness_tokens}"
            )
        self.stickiness_tokens = stickiness_tokens

    def route(
        self, request: RoutableRequest, replicas: Sequence[ReplicaView]
    ) -> int:
        matches = {
            replica.index: replica.prefix_match_tokens(request.prompt_ids)
            for replica in replicas
        }
        best = max(matches.values())
        if best < self.stickiness_tokens:
            return min(replicas, key=_load_key).index
        contenders = [r for r in replicas if matches[r.index] == best]
        return min(contenders, key=_load_key).index
