"""Scheduler-, router- and admission-policy registries for the serving layer.

Mirrors :mod:`repro.retrieval.registry`: every scheduling discipline,
every cluster routing discipline and every admission-control discipline
is registered under a canonical name (plus display aliases) and resolved
through one factory::

    scheduler = make_scheduler("priority")
    waiting.sort(key=scheduler.admission_key)
    victim = min(active, key=scheduler.victim_key)

    router = make_router("prefix_affinity", stickiness_tokens=16)
    replica = router.route(request, replica_views)

    admission = make_admission("queue_depth", max_waiting=8)
    reason = admission.should_admit(request, server_view)  # None = admit

A scheduler policy supplies two sort keys over the server's session view:

- ``admission_key``: waiting sessions are admitted in ascending key order;
- ``victim_key``: under pool pressure the active session with the smallest
  key is preempted first.

A router policy places one request on one replica of a
:class:`~repro.serving.cluster.ClusterFrontend`; it sees only the cheap
:class:`ReplicaView` surface (queue depth, reserved tokens, a read-only
prefix-cache probe), never the replicas' internals.

Keys and routing decisions must be deterministic at fixed seed (ties
broken by replica index / request id) — the trace tests replay schedules
and compare token streams bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.serving.registry import ADMISSIONS, ROUTERS, SCHEDULERS, normalize


class SchedulableSession(Protocol):
    """What a scheduler may inspect about a session (duck-typed).

    ``admission_key`` also orders the chunked-prefill phase's token-budget
    spending across still-prefilling sessions (``sjf`` lets a short
    prompt's chunks slip past a long prefill; ``fcfs`` keeps strict
    arrival order). ``prefill_done``/``prefill_pos`` expose the chunk
    cursor so custom policies can rank victims by work completed — a
    mid-prefill session loses the least progress when preempted.
    """

    @property
    def request_id(self) -> int: ...

    @property
    def priority(self) -> int: ...

    @property
    def prompt_len(self) -> int: ...

    @property
    def arrival_s(self) -> float: ...

    @property
    def prefill_done(self) -> bool: ...

    @property
    def prefill_pos(self) -> int: ...


class SchedulerPolicy:
    """Base: FIFO admission, LIFO (latest-arrival) preemption."""

    name = "fcfs"

    def admission_key(self, session: SchedulableSession):
        return (session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        # Preempt the most recently arrived session first: it has done the
        # least work and its requeue wastes the least progress.
        return (-session.arrival_s, -session.request_id)


SchedulerBuilder = Callable[[], SchedulerPolicy]

# All three registries now live on the shared display-preserving
# Registry machinery in repro.serving.registry; the module-level
# functions below are the historical surface, kept as thin shims.
_normalize = normalize


def register_scheduler(
    name: str, *aliases: str
) -> Callable[[SchedulerBuilder], SchedulerBuilder]:
    """Decorator adding a scheduler under ``name`` (plus aliases)."""
    return SCHEDULERS.register(name, *aliases)


def available_schedulers() -> tuple[str, ...]:
    """Canonical scheduler names, sorted (shim over the shared registry)."""
    return SCHEDULERS.available()


def resolve_scheduler_name(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive).

    Raises the typed :class:`repro.serving.registry.UnknownSchedulerError`
    (a ``KeyError``) when nothing is registered under ``name``.
    """
    return SCHEDULERS.resolve(name)


def make_scheduler(name: str) -> SchedulerPolicy:
    """Build the scheduling policy registered under ``name``."""
    return SCHEDULERS.make(name)


@register_scheduler("fcfs", "fifo")
def _build_fcfs() -> SchedulerPolicy:
    return SchedulerPolicy()


@register_scheduler("priority", "prio")
class PriorityScheduler(SchedulerPolicy):
    """Higher request priority admits first and is preempted last."""

    name = "priority"

    def admission_key(self, session: SchedulableSession):
        return (-session.priority, session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        return (session.priority, -session.arrival_s, -session.request_id)


@register_scheduler("sjf", "shortestpromptfirst", "spf")
class ShortestPromptFirstScheduler(SchedulerPolicy):
    """Admit short prompts first; evict the largest KV holder first."""

    name = "sjf"

    def admission_key(self, session: SchedulableSession):
        return (session.prompt_len, session.arrival_s, session.request_id)

    def victim_key(self, session: SchedulableSession):
        return (-session.prompt_len, -session.arrival_s, -session.request_id)


# ---- cluster routers ---------------------------------------------------------


class ReplicaView(Protocol):
    """What a router may inspect about one replica (duck-typed).

    ``reserved_tokens`` is the replica's outstanding admission charge —
    the sum of ``prompt + max_new_tokens`` over every unfinished session,
    i.e. the KV the replica is committed to if everything runs to length.
    ``prefix_match_tokens`` is the read-only probe of the replica's
    prefix cache (:meth:`repro.kvcache.pool.PagedKVPool
    .longest_prefix_match`); it never mutates cache state, so routers may
    probe every replica for every request.
    """

    @property
    def index(self) -> int: ...

    @property
    def queue_depth(self) -> int: ...

    @property
    def reserved_tokens(self) -> int: ...

    def prefix_match_tokens(self, prompt_ids: np.ndarray) -> int: ...


class RoutableRequest(Protocol):
    """What a router may inspect about the request being placed."""

    @property
    def prompt_ids(self) -> np.ndarray: ...

    @property
    def prompt_len(self) -> int: ...


def _load_key(replica: ReplicaView) -> tuple[int, int]:
    """Least-loaded total order: reserved tokens + queue depth, then index."""
    return (replica.reserved_tokens + replica.queue_depth, replica.index)


class RouterPolicy:
    """Base router: round-robin placement (stateful cursor, one per frontend)."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def route(
        self, request: RoutableRequest, replicas: Sequence[ReplicaView]
    ) -> int:
        """Replica index to place ``request`` on (must be deterministic)."""
        chosen = self._next % len(replicas)
        self._next += 1
        return chosen


RouterBuilder = Callable[..., RouterPolicy]


def register_router(
    name: str, *aliases: str
) -> Callable[[RouterBuilder], RouterBuilder]:
    """Decorator adding a router under ``name`` (plus aliases)."""
    return ROUTERS.register(name, *aliases)


def available_routers() -> tuple[str, ...]:
    """Canonical router names, sorted (shim over the shared registry)."""
    return ROUTERS.available()


def resolve_router_name(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive).

    Raises the typed :class:`repro.serving.registry.UnknownRouterError`
    (a ``KeyError``) when nothing is registered under ``name``.
    """
    return ROUTERS.resolve(name)


def make_router(name: str, **opts) -> RouterPolicy:
    """Build the routing policy registered under ``name``.

    ``opts`` are forwarded to the router's constructor; routers reject
    options they do not understand (a misspelled knob must not silently
    fall back to defaults).
    """
    return ROUTERS.make(name, **opts)


@register_router("round_robin", "rr", "roundrobin")
def _build_round_robin() -> RouterPolicy:
    return RouterPolicy()


@register_router("least_loaded", "ll", "leastloaded")
class LeastLoadedRouter(RouterPolicy):
    """Place on the replica with the least outstanding work.

    Load is the admission charge (reserved tokens of unfinished sessions)
    plus the waiting-queue depth; ties break toward the lowest replica
    index so placement is deterministic.
    """

    name = "least_loaded"

    def route(
        self, request: RoutableRequest, replicas: Sequence[ReplicaView]
    ) -> int:
        return min(replicas, key=_load_key).index


@register_router("prefix_affinity", "pa", "prefixaffinity")
class PrefixAffinityRouter(RouterPolicy):
    """Route to the replica whose prefix cache best covers the prompt.

    Every replica's pool is probed (read-only blake2b-chain walk) for the
    longest cached prefix of the prompt. When the best match reaches
    ``stickiness_tokens``, the request sticks to that replica — turning
    each replica's prefix cache into a cluster-wide asset — with ties
    broken by load, then index. Below the threshold the match is too
    small to be worth colocating for (a short shared BOS block, say) and
    placement falls back to least-loaded, which also spreads the *first*
    request of every new prefix group across the cluster.
    """

    name = "prefix_affinity"

    def __init__(self, stickiness_tokens: int = 16):
        super().__init__()
        if stickiness_tokens < 1:
            raise ValueError(
                f"stickiness_tokens must be >= 1, got {stickiness_tokens}"
            )
        self.stickiness_tokens = stickiness_tokens

    def route(
        self, request: RoutableRequest, replicas: Sequence[ReplicaView]
    ) -> int:
        matches = {
            replica.index: replica.prefix_match_tokens(request.prompt_ids)
            for replica in replicas
        }
        best = max(matches.values())
        if best < self.stickiness_tokens:
            return min(replicas, key=_load_key).index
        contenders = [r for r in replicas if matches[r.index] == best]
        return min(contenders, key=_load_key).index


# ---- admission control -------------------------------------------------------


class AdmissionView(Protocol):
    """What an admission controller may inspect about the server (duck-typed).

    A cheap snapshot surface: queue depth, co-running session count, the
    outstanding token charge and the concurrency cap. All counts are taken
    *before* the candidate request is added, and the server clock is
    virtual (one unit per step), so admission decisions are deterministic
    and replayable.
    """

    @property
    def n_waiting(self) -> int: ...

    @property
    def n_active(self) -> int: ...

    @property
    def reserved_tokens(self) -> int: ...

    @property
    def max_concurrency(self) -> int: ...


class AdmissibleRequest(Protocol):
    """What an admission controller may inspect about the candidate request."""

    @property
    def prompt_len(self) -> int: ...

    @property
    def sampling(self): ...  # SamplingParams: max_new_tokens, deadlines


class AdmissionController:
    """Base: accept everything (the historical behavior).

    ``should_admit`` returns ``None`` to admit or a human-readable shed
    reason; the server wraps a reason in a typed
    :class:`~repro.api.errors.OverloadedError` (HTTP 429) without
    touching engine state. ``retry_after_s`` sizes the ``Retry-After``
    hint; ``is_shedding`` is the cheap health probe ``/healthz`` reports.
    """

    name = "accept_all"

    def should_admit(
        self, request: AdmissibleRequest, view: AdmissionView
    ) -> str | None:
        return None

    def retry_after_s(self, view: AdmissionView) -> float:
        return 1.0

    def is_shedding(self, view: AdmissionView) -> bool:
        return False


AdmissionBuilder = Callable[..., AdmissionController]


def register_admission(
    name: str, *aliases: str
) -> Callable[[AdmissionBuilder], AdmissionBuilder]:
    """Decorator adding an admission controller under ``name`` (plus aliases)."""
    return ADMISSIONS.register(name, *aliases)


def available_admissions() -> tuple[str, ...]:
    """Canonical admission-policy names, sorted (shim over the registry)."""
    return ADMISSIONS.available()


def resolve_admission_name(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive).

    Raises the typed :class:`repro.serving.registry.UnknownAdmissionError`
    (a ``KeyError``) when nothing is registered under ``name``.
    """
    return ADMISSIONS.resolve(name)


def make_admission(name: str, **opts) -> AdmissionController:
    """Build the admission controller registered under ``name``.

    ``opts`` are forwarded to the controller's constructor; controllers
    reject options they do not understand (a misspelled knob must not
    silently fall back to defaults).
    """
    return ADMISSIONS.make(name, **opts)


@register_admission("accept_all", "none", "acceptall")
def _build_accept_all() -> AdmissionController:
    return AdmissionController()


@register_admission("queue_depth", "qd", "queuedepth")
class QueueDepthAdmission(AdmissionController):
    """Shed once the waiting queue reaches ``max_waiting`` requests.

    The simplest backpressure signal: a deep queue means every admit
    waits behind everyone already queued, so refusing early converts
    guaranteed deadline blowouts into fast, typed 429s the client can
    retry against another replica or later.
    """

    name = "queue_depth"

    def __init__(self, max_waiting: int = 16):
        if max_waiting < 1:
            raise ValueError(f"max_waiting must be >= 1, got {max_waiting}")
        self.max_waiting = max_waiting

    def should_admit(
        self, request: AdmissibleRequest, view: AdmissionView
    ) -> str | None:
        if view.n_waiting >= self.max_waiting:
            return (
                f"waiting queue full ({view.n_waiting} >= "
                f"max_waiting={self.max_waiting})"
            )
        return None

    def retry_after_s(self, view: AdmissionView) -> float:
        # Rough drain time: one queued request per active slot per step.
        return max(1.0, view.n_waiting / max(1, view.max_concurrency))

    def is_shedding(self, view: AdmissionView) -> bool:
        return view.n_waiting >= self.max_waiting


@register_admission("token_backlog", "tb", "tokenbacklog")
class TokenBacklogAdmission(AdmissionController):
    """Shed once the outstanding token charge would exceed a cap.

    ``reserved_tokens`` (sum of ``prompt + max_new_tokens`` over every
    unfinished session) is the KV the server is committed to if
    everything runs to length — the same charge the least-loaded router
    balances on. Capping it bounds worst-case queueing delay by *work*,
    not request count, so one giant prompt can't hide behind a short
    queue.
    """

    name = "token_backlog"

    def __init__(self, max_backlog_tokens: int = 4096):
        if max_backlog_tokens < 1:
            raise ValueError(
                f"max_backlog_tokens must be >= 1, got {max_backlog_tokens}"
            )
        self.max_backlog_tokens = max_backlog_tokens

    def _cost(self, request: AdmissibleRequest) -> int:
        return request.prompt_len + request.sampling.max_new_tokens

    def should_admit(
        self, request: AdmissibleRequest, view: AdmissionView
    ) -> str | None:
        total = view.reserved_tokens + self._cost(request)
        if total > self.max_backlog_tokens:
            return (
                f"token backlog full ({view.reserved_tokens} reserved + "
                f"{self._cost(request)} requested > "
                f"max_backlog_tokens={self.max_backlog_tokens})"
            )
        return None

    def retry_after_s(self, view: AdmissionView) -> float:
        overflow = view.reserved_tokens - self.max_backlog_tokens
        return max(1.0, overflow / max(1, self.max_backlog_tokens))

    def is_shedding(self, view: AdmissionView) -> bool:
        return view.reserved_tokens >= self.max_backlog_tokens


@register_admission("deadline_feasible", "df", "deadlinefeasible", "edf_admit")
class DeadlineFeasibleAdmission(AdmissionController):
    """Shed requests whose deadline cannot plausibly be met.

    Uses an *optimistic* service estimate on the server's virtual clock:
    the first token needs at least one step plus
    ``queue_delay_per_waiting`` steps per request already waiting, and
    finishing needs ``max_new_tokens`` further steps (co-running greedy
    sessions decode one token per step). A request that misses its
    deadline even under this best case is doomed; admitting it would only
    burn pool blocks and queue slots that push *feasible* requests past
    their own deadlines. Requests without deadlines are always admitted —
    they can't be doomed.
    """

    name = "deadline_feasible"

    def __init__(self, queue_delay_per_waiting: float = 1.0):
        if queue_delay_per_waiting < 0:
            raise ValueError(
                f"queue_delay_per_waiting must be >= 0, "
                f"got {queue_delay_per_waiting}"
            )
        self.queue_delay_per_waiting = queue_delay_per_waiting

    def should_admit(
        self, request: AdmissibleRequest, view: AdmissionView
    ) -> str | None:
        sampling = request.sampling
        ttft = getattr(sampling, "ttft_deadline_s", None)
        total = getattr(sampling, "total_deadline_s", None)
        if ttft is None and total is None:
            return None
        est_ttft = 1.0 + self.queue_delay_per_waiting * view.n_waiting
        if ttft is not None and est_ttft > ttft:
            return (
                f"TTFT deadline infeasible (estimated first token at "
                f"step {est_ttft:g} > deadline {ttft:g})"
            )
        if total is not None and est_ttft + sampling.max_new_tokens > total:
            return (
                f"total deadline infeasible (estimated finish at step "
                f"{est_ttft + sampling.max_new_tokens:g} > deadline {total:g})"
            )
        return None

    def retry_after_s(self, view: AdmissionView) -> float:
        return max(1.0, self.queue_delay_per_waiting * view.n_waiting)

    def is_shedding(self, view: AdmissionView) -> bool:
        # Feasibility depends on each request's own deadline; report
        # shedding once any queueing delay exists at all.
        return view.n_waiting > 0
