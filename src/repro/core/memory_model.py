"""Theoretical memory model and Algorithm 1 (paper Sec. 6.2, Eq. 6-8).

Symbols (Table 1): M_O / M_D model sizes, L layers, D head dim, H KV heads,
S sequence length, B retrieval budget, R requests, alpha head groups.

- Eq. 6: all KV on GPU:   M_all  = 1.3 (M_O + M_D) + 4 R (L+1+alpha) S H D
- Eq. 7: split placement: M_part = 1.3 (M_O + M_D)
                                   + 4 R [ (L_GPU+1+alpha) S + L_CPU B ] H D
- Eq. 8: maximize L_GPU subject to M_part <= Mem_GPU.

The ``1.3`` factor is the paper's 30% runtime-buffer overhead; the ``4`` is
K+V at FP16 (2 tensors x 2 bytes); ``+1`` is the DLM's single decoder layer
and ``+alpha`` the repeat_kv buffer of GQA/MQA.

Note: Algorithm 1's printed numerator term ``(i x B) x R x H x D`` omits
the factor 4 that Eq. 7 applies to the budget buffers; we follow Eq. 7
(the self-consistent form) and record the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig

RUNTIME_OVERHEAD = 1.3  # model weights + ~30% runtime buffer (Sec. 6.2)
KV_COEFF = 4  # K and V at FP16: 2 tensors x 2 bytes per value


@dataclass(frozen=True)
class MemoryBreakdown:
    """One placement's memory accounting, all in bytes."""

    weights: float
    kv_gpu: float
    budget_buffers: float

    @property
    def total(self) -> float:
        return self.weights + self.kv_gpu + self.budget_buffers


class MemoryModel:
    """Eq. 6-8 for a given (model, DLM, hardware, workload)."""

    def __init__(
        self,
        model: ModelConfig,
        dlm_bytes: int,
        spec: HardwareSpec,
        requests: int = 1,
        budget: int = 2048,
    ):
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        self.model = model
        self.dlm_bytes = dlm_bytes
        self.spec = spec
        self.requests = requests
        self.budget = budget

    @property
    def _weights_term(self) -> float:
        return RUNTIME_OVERHEAD * (self.model.parameter_bytes() + self.dlm_bytes)

    @property
    def _hd(self) -> int:
        return self.model.n_kv_heads * self.model.head_dim

    @property
    def _alpha(self) -> int:
        return self.model.group_size

    def m_all(self, seq_len: int) -> MemoryBreakdown:
        """Eq. 6: everything on the GPU at sequence length ``seq_len``."""
        layers_eff = self.model.n_layers + 1 + self._alpha
        kv = KV_COEFF * self.requests * layers_eff * seq_len * self._hd
        return MemoryBreakdown(
            weights=self._weights_term, kv_gpu=kv, budget_buffers=0.0
        )

    def m_part(self, seq_len: int, layers_on_gpu: int) -> MemoryBreakdown:
        """Eq. 7: ``layers_on_gpu`` KV-resident layers, the rest offloaded."""
        if not 0 <= layers_on_gpu <= self.model.n_layers:
            raise ValueError(
                f"layers_on_gpu {layers_on_gpu} outside [0, {self.model.n_layers}]"
            )
        layers_cpu = self.model.n_layers - layers_on_gpu
        kv = (
            KV_COEFF * self.requests * (layers_on_gpu + 1 + self._alpha)
            * seq_len * self._hd
        )
        buffers = KV_COEFF * self.requests * layers_cpu * self.budget * self._hd
        return MemoryBreakdown(
            weights=self._weights_term, kv_gpu=kv, budget_buffers=buffers
        )

    def max_layers_on_gpu(self, seq_len: int) -> int:
        """Eq. 8: the largest L_GPU whose M_part fits in GPU memory.

        Returns -1 when not even L_GPU = 0 fits (true OOM).
        """
        for layers_on_gpu in range(self.model.n_layers, -1, -1):
            if self.m_part(seq_len, layers_on_gpu).total <= self.spec.gpu_memory_bytes:
                return layers_on_gpu
        return -1

    def sequence_thresholds(self) -> list[int]:
        """Algorithm 1: thresholds S_T[0..L].

        ``S_T[i]`` is the largest sequence length at which the KV cache of
        ``L - i`` layers still fits on the GPU (i layers offloaded). The
        list is what the adaptive manager consults at runtime; entries can
        reach 0 when even the weights barely fit.
        """
        mem = self.spec.gpu_memory_bytes
        hd = self._hd
        r = self.requests
        alpha = self._alpha
        layers = self.model.n_layers
        thresholds = []
        for i in range(0, layers + 1):
            numerator = mem - self._weights_term - KV_COEFF * i * self.budget * r * hd
            denominator = KV_COEFF * (layers + 1 + alpha - i) * r * hd
            thresholds.append(max(int(numerator // denominator), 0))
        return thresholds

    def fits_all_on_gpu(self, seq_len: int) -> bool:
        """Whether Eq. 6 fits (no offloading needed)."""
        return self.m_all(seq_len).total <= self.spec.gpu_memory_bytes
