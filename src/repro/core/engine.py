"""SpeContextEngine: the end-to-end system on the functional substrate.

Combines the three contributions around a :class:`TransformerLM`:

1. the lightweight retrieval head selects the KV budget before every
   decode step (C1),
2. selections feed elastic-loading transfer accounting (C2),
3. an adaptive memory manager walks the Algorithm-1 thresholds as the
   sequence grows and logs per-layer offload events (C3).

The engine runs real numpy inference (accuracy is genuine); system-side
quantities (bytes over PCIe, overlap, offload schedule) are produced by the
same components the timing simulator uses, so the functional path and the
performance experiments cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adaptive import AdaptiveMemoryManager, OffloadEvent
from repro.core.elastic import ElasticTransferTracker
from repro.core.memory_model import MemoryModel
from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
    SpeContextPolicy,
)
from repro.hardware.spec import EDGE_RTX4060, HardwareSpec
from repro.models.llm import DecodeResult, TransformerLM


@dataclass
class GenerationStats:
    """Output of one engine run: tokens plus system accounting."""

    result: DecodeResult
    budget: int
    bytes_transferred: int = 0
    transfer_reduction: float = 0.0
    mean_selection_overlap: float = 0.0
    offload_events: list[OffloadEvent] = field(default_factory=list)

    @property
    def text_token_ids(self) -> list[int]:
        return self.result.token_ids


class SpeContextEngine:
    """Long-context generation with speculative context sparsity."""

    def __init__(
        self,
        model: TransformerLM,
        bos_id: int,
        budget: int = 2048,
        spec: HardwareSpec = EDGE_RTX4060,
        selection_level: str = "head",
        head_config: RetrievalHeadConfig | None = None,
        elastic: bool = True,
        requests: int = 1,
        rng: np.random.Generator | None = None,
    ):
        self.model = model
        self.budget = budget
        self.spec = spec
        self.selection_level = selection_level
        self.elastic = elastic
        rng = rng or np.random.default_rng(0)
        self.head = LightweightRetrievalHead.from_teacher(
            model.weights, bos_id, rng, config=head_config
        )
        dlm_bytes = 2 * self.head.parameter_count(include_shared_embedding=True)
        self.memory_model = MemoryModel(
            model.config, dlm_bytes, spec, requests=requests, budget=budget
        )

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        stop_ids: tuple[int, ...] = (),
        temperature: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> GenerationStats:
        """Generate with retrieval-head sparsity; returns tokens + stats."""
        policy = SpeContextPolicy(self.head, self.budget, level=self.selection_level)
        result = self.model.generate(
            np.asarray(prompt_ids),
            max_new_tokens,
            policy=policy,
            stop_ids=stop_ids,
            temperature=temperature,
            rng=rng,
            sparse_from_first_token=True,
        )

        tracker = ElasticTransferTracker(
            bytes_per_token=self.model.config.kv_bytes_per_token_layer()
            * self.model.config.n_layers,
            elastic=self.elastic,
        )
        for selection in policy.selection_history:
            tracker.observe(selection)

        manager = AdaptiveMemoryManager(self.memory_model)
        offloads: list[OffloadEvent] = []
        prompt_len = int(np.asarray(prompt_ids).size)
        offloads.extend(manager.advance(prompt_len))
        for step in range(result.n_generated):
            offloads.extend(manager.advance(prompt_len + step + 1))

        return GenerationStats(
            result=result,
            budget=self.budget,
            bytes_transferred=tracker.total_bytes,
            transfer_reduction=tracker.transfer_reduction_vs_full_reload(),
            mean_selection_overlap=tracker.mean_overlap,
            offload_events=offloads,
        )

    def pruning_ratio(self, full_dlm_parameters: int) -> float:
        """Parameter reduction of the retrieval head vs the full DLM."""
        kept = self.head.parameter_count()
        if full_dlm_parameters <= 0:
            raise ValueError("full_dlm_parameters must be positive")
        return 1.0 - kept / full_dlm_parameters
