"""SpeContextEngine: the end-to-end system on the functional substrate.

Combines the three contributions around a :class:`TransformerLM`:

1. the lightweight retrieval head selects the KV budget before every
   decode step (C1),
2. selections feed elastic-loading transfer accounting (C2),
3. an adaptive memory manager walks the Algorithm-1 thresholds as the
   sequence grows and logs per-layer offload events (C3).

The engine runs real numpy inference (accuracy is genuine); system-side
quantities (bytes over PCIe, overlap, offload schedule) are produced by the
same components the timing simulator uses, so the functional path and the
performance experiments cannot drift apart.

``generate()`` is a compatibility wrapper: it submits a single
:class:`~repro.api.request.GenerationRequest` to a private
:class:`~repro.serving.server.SpeContextServer` session, reusing one
:class:`SpeContextPolicy` (and its retrieval head) plus one adaptive
memory manager across calls — construction and Algorithm-1 threshold
computation happen once, per-request state is reset explicitly.
Multi-request callers should use the server directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.config import EngineConfig, SamplingParams
from repro.api.request import GenerationRequest
from repro.core.adaptive import OffloadEvent
from repro.core.memory_model import MemoryModel
from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
    SpeContextPolicy,
)
from repro.hardware.spec import EDGE_RTX4060, HardwareSpec
from repro.models.llm import DecodeResult, TransformerLM


@dataclass
class GenerationStats:
    """Output of one engine run: tokens plus system accounting."""

    result: DecodeResult
    budget: int
    bytes_transferred: int = 0
    transfer_reduction: float = 0.0
    mean_selection_overlap: float = 0.0
    offload_events: list[OffloadEvent] = field(default_factory=list)
    preemptions: int = 0
    swap_bytes: int = 0
    prefix_reused_tokens: int = 0

    @property
    def text_token_ids(self) -> list[int]:
        return self.result.token_ids


class SpeContextEngine:
    """Long-context generation with speculative context sparsity.

    Accepts either the legacy kwargs or an :class:`EngineConfig` (which
    wins for any field it carries).
    """

    def __init__(
        self,
        model: TransformerLM,
        bos_id: int,
        budget: int = 2048,
        spec: HardwareSpec = EDGE_RTX4060,
        selection_level: str = "head",
        head_config: RetrievalHeadConfig | None = None,
        elastic: bool = True,
        requests: int = 1,
        rng: np.random.Generator | None = None,
        config: EngineConfig | None = None,
    ):
        if config is None:
            config = EngineConfig(
                budget=budget,
                spec=spec,
                selection_level=selection_level,
                bos_id=bos_id,
                head_config=head_config,
                elastic=elastic,
                requests=requests,
                max_concurrency=1,
            )
        else:
            clashing = [
                name
                for name, (value, default) in {
                    "budget": (budget, 2048),
                    "spec": (spec, EDGE_RTX4060),
                    "selection_level": (selection_level, "head"),
                    "head_config": (head_config, None),
                    "elastic": (elastic, True),
                    "requests": (requests, 1),
                }.items()
                if value != default
            ]
            if config.bos_id is not None and config.bos_id != bos_id:
                clashing.append("bos_id")
            if clashing:
                raise ValueError(
                    f"pass {clashing} inside config=EngineConfig(...), not as "
                    "legacy kwargs; mixing the two would silently ignore the "
                    "kwargs"
                )
            if config.bos_id is None:
                # Write back so the stored config (and the private server,
                # exposed via .server) knows the engine's BOS token.
                config = replace(config, bos_id=bos_id)
        self.config = config
        self.model = model
        self.budget = config.budget
        self.spec = config.spec
        self.selection_level = config.selection_level
        self.elastic = config.elastic
        rng = rng or np.random.default_rng(0)
        self.head = LightweightRetrievalHead.from_teacher(
            model.weights, bos_id, rng, config=config.head_config
        )
        dlm_bytes = 2 * self.head.parameter_count(include_shared_embedding=True)
        self.memory_model = MemoryModel(
            model.config, dlm_bytes, config.spec,
            requests=config.requests, budget=config.budget,
        )
        # The policy (and its head) persist across generate() calls; the
        # server resets their per-request state at each admission.
        self.policy = SpeContextPolicy(
            self.head, config.budget, level=config.selection_level
        )
        # Imported lazily: repro.serving.server depends on repro.core.*,
        # so a module-level import here would be circular.
        from repro.serving.server import SpeContextServer

        self._server = SpeContextServer(
            model, config=config, memory_model=self.memory_model
        )

    @property
    def server(self):
        """The underlying single-session server (for inspection/metering)."""
        return self._server

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        stop_ids: tuple[int, ...] = (),
        temperature: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> GenerationStats:
        """Generate with retrieval-head sparsity; returns tokens + stats.

        Thin wrapper: one request through the server, policy reused. The
        private server's history/meter reflect only the latest call, so
        repeated generation doesn't accumulate bookkeeping.
        """
        self._server.clear_history()
        request = GenerationRequest(
            prompt_ids=np.asarray(prompt_ids),
            sampling=SamplingParams(
                max_new_tokens=max_new_tokens,
                temperature=temperature,
                stop_ids=tuple(stop_ids),
            ),
            policy=self.policy,
            budget=self.budget,
            rng=rng,
        )
        request_id = self._server.add_request(request)
        outputs = self._server.run()
        return next(o for o in outputs if o.request_id == request_id).stats

    def pruning_ratio(self, full_dlm_parameters: int) -> float:
        """Parameter reduction of the retrieval head vs the full DLM."""
        kept = self.head.parameter_count()
        if full_dlm_parameters <= 0:
            raise ValueError("full_dlm_parameters must be positive")
        return 1.0 - kept / full_dlm_parameters
