"""Elastic loading (paper Sec. 5.4).

The GPU holds a fixed-budget staging buffer of selected KV pairs. Between
adjacent decode steps the selections overlap heavily (>80%, Fig. 6b), so
only the set difference ``S_now − S_last`` is transferred; evicted slots
(``S_last − S_now``) are overwritten in place. Under a fixed budget the two
differences have equal size, so loads == evictions every step.

Two collaborating pieces:

- :class:`ElasticTransferTracker` — pure set algebra over selection
  sequences; computes per-step transfer volumes and overlap statistics
  without touching payloads. Used by the analysis/timing experiments.
- :class:`ElasticKVLoader` — the functional integration: routes real KV
  payloads from a :class:`TieredKVStore` through per-layer
  :class:`GpuSlotBuffer`s, asserting residency invariants along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kvcache.pool import GpuSlotBuffer, TieredKVStore


@dataclass
class StepTransfer:
    """Per-step transfer accounting."""

    loaded_tokens: int
    evicted_tokens: int
    bytes_moved: int
    overlap_fraction: float  # |S_now & S_last| / |S_now|
    selection_size: int = 0


@dataclass
class ElasticTransferTracker:
    """Set-difference accounting over a stream of per-head selections.

    ``bytes_per_token`` is the K+V footprint of one token in one layer;
    multiply by layers outside if tracking a whole model.
    """

    bytes_per_token: int
    elastic: bool = True  # False models naive full reload each step
    steps: list[StepTransfer] = field(default_factory=list)
    _last: set[int] | None = None

    def observe(self, selection: np.ndarray) -> StepTransfer:
        """Record one step's selection (any shape; flattened to a set)."""
        now = {int(t) for t in np.asarray(selection).ravel()}
        if self._last is None or not self.elastic:
            loaded = len(now)
            evicted = 0 if self._last is None else len(self._last)
            overlap = 0.0 if self._last is None else (
                len(now & self._last) / max(len(now), 1)
            )
        else:
            loaded = len(now - self._last)
            evicted = len(self._last - now)
            overlap = len(now & self._last) / max(len(now), 1)
        step = StepTransfer(
            loaded_tokens=loaded,
            evicted_tokens=evicted,
            bytes_moved=loaded * self.bytes_per_token,
            overlap_fraction=overlap,
            selection_size=len(now),
        )
        self.steps.append(step)
        self._last = now
        return step

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_moved for s in self.steps)

    @property
    def mean_overlap(self) -> float:
        """Mean adjacent-step overlap, excluding the cold first step."""
        tail = self.steps[1:]
        if not tail:
            return 0.0
        return float(np.mean([s.overlap_fraction for s in tail]))

    def transfer_reduction_vs_full_reload(self) -> float:
        """Fraction of bytes saved relative to reloading |S_now| every step."""
        full = sum(s.selection_size for s in self.steps) * self.bytes_per_token
        if full == 0:
            return 0.0
        return 1.0 - self.total_bytes / full


class ElasticKVLoader:
    """Per-layer slot buffers fed from a tiered store by set difference.

    The loader owns one :class:`GpuSlotBuffer` per (layer, kv-head) — head-
    level selections place different tokens in different heads' slots — and
    charges every miss to the tiered store's transfer ledger.
    """

    def __init__(self, stores: list[TieredKVStore], budget: int):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.stores = stores
        self.budget = budget
        self._buffers: list[list[GpuSlotBuffer]] = [
            [
                GpuSlotBuffer(budget + 1, 1, store.head_dim)
                for _ in range(store.n_kv_heads)
            ]
            for store in stores
        ]

    def load_step(self, layer: int, selection: np.ndarray) -> int:
        """Update layer buffers to hold ``selection``; returns bytes moved.

        ``selection`` is (n_kv_heads, k) or 1-D (broadcast to all heads).
        """
        store = self.stores[layer]
        selection = np.asarray(selection)
        if selection.ndim == 1:
            selection = np.broadcast_to(selection, (store.n_kv_heads, selection.size))
        total_bytes = 0
        per_head_bytes = store.bytes_per_token // store.n_kv_heads

        for h in range(store.n_kv_heads):
            buffer = self._buffers[layer][h]

            def fetch(token: int, head=h):
                k, v = store._keys[head, token], store._values[head, token]
                return k[None, :], v[None, :]

            loaded, _ = buffer.update(selection[h], fetch)
            total_bytes += loaded * per_head_bytes
        store.ledger.record("h2d", total_bytes)
        return total_bytes

    def gather(self, layer: int, head: int, token_indices: np.ndarray):
        """Read staged KV for one head (asserts residency)."""
        return self._buffers[layer][head].gather(token_indices)

    def resident_tokens(self, layer: int, head: int) -> frozenset[int]:
        return self._buffers[layer][head].resident_tokens
