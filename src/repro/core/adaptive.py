"""Adaptive memory management at runtime — Algorithm 2 (paper Sec. 6.2.1).

As the sequence grows during reasoning, the manager consults the
precomputed thresholds (Algorithm 1) and progressively offloads the KV
cache of trailing layers (last layer first: layer L-1, then L-2, ...) to
CPU DRAM, keeping as many layers GPU-resident as the memory model allows.

The manager is pure control logic: callers give it the current sequence
length and it returns which layers to offload; an optional
:class:`MemoryLedger` and per-layer :class:`TieredKVStore`s are updated
when attached, so the functional engine and the timing simulator share one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.memory_model import MemoryModel
from repro.hardware.memory import MemoryLedger, MemoryTier
from repro.kvcache.pool import TieredKVStore


@dataclass(frozen=True)
class OffloadEvent:
    """One layer's KV cache moving to the CPU at a specific length."""

    layer: int
    seq_len: int
    bytes_freed: int


@dataclass
class AdaptiveMemoryManager:
    """Tracks L_CPU/L_GPU against the threshold list during decoding."""

    memory_model: MemoryModel
    ledger: MemoryLedger | None = None
    stores: list[TieredKVStore] | None = None
    layers_on_cpu: int = 0
    events: list[OffloadEvent] = field(default_factory=list)
    _thresholds: list[int] = field(default_factory=list)

    def __post_init__(self):
        self._thresholds = self.memory_model.sequence_thresholds()

    def reset(self) -> None:
        """Return to the all-on-GPU state without recomputing thresholds.

        The Algorithm-1 threshold list depends only on (model, hardware,
        budget), so a server reuses one manager across requests and resets
        the runtime state between busy periods.
        """
        self.layers_on_cpu = 0
        self.events.clear()

    @property
    def n_layers(self) -> int:
        return self.memory_model.model.n_layers

    @property
    def layers_on_gpu(self) -> int:
        return self.n_layers - self.layers_on_cpu

    def thresholds(self) -> list[int]:
        """The Algorithm 1 threshold list S_T[0..L]."""
        return list(self._thresholds)

    def capacity_tokens(self) -> int:
        """Largest aggregate sequence length the GPU can serve at all.

        ``S_T[L]`` — the Algorithm-1 threshold with every layer offloaded —
        is the hard ceiling on the summed KV footprint of co-resident
        requests. Beyond it no placement fits, so it is the natural
        admission-control bound for a shared server.
        """
        return self._thresholds[self.n_layers]

    def admits(self, aggregate_len: int) -> bool:
        """Admission-control hook: can ``aggregate_len`` tokens be served?

        The server projects the summed KV footprint of the active sessions
        plus a candidate request (prompt and full generation budget) and
        defers admission while the projection exceeds the thresholds,
        instead of gating on a bare concurrency count.
        """
        return aggregate_len <= self.capacity_tokens()

    def required_offloads(self, seq_len: int) -> int:
        """Smallest L_CPU whose threshold accommodates ``seq_len``."""
        for i in range(self.n_layers + 1):
            if seq_len < self._thresholds[i]:
                return i
        return self.n_layers

    def advance(self, seq_len: int) -> list[OffloadEvent]:
        """Algorithm 2's inner while-loop for the current sequence length.

        Offloads additional trailing layers until ``seq_len < S_T[L_CPU]``
        (or all layers are offloaded). Returns the offload events triggered.
        """
        new_events: list[OffloadEvent] = []
        while (
            self.layers_on_cpu < self.n_layers
            and seq_len >= self._thresholds[self.layers_on_cpu]
        ):
            layer = self.n_layers - self.layers_on_cpu - 1  # offload last first
            freed = self._offload_layer(layer, seq_len)
            event = OffloadEvent(layer=layer, seq_len=seq_len, bytes_freed=freed)
            new_events.append(event)
            self.events.append(event)
            self.layers_on_cpu += 1
        return new_events

    def layer_tier(self, layer: int) -> MemoryTier:
        """Where a layer's KV cache currently lives."""
        if layer >= self.n_layers - self.layers_on_cpu:
            return MemoryTier.CPU
        return MemoryTier.GPU

    def _offload_layer(self, layer: int, seq_len: int) -> int:
        freed = 0
        if self.stores is not None:
            freed = self.stores[layer].evict_all()
        else:
            freed = (
                self.memory_model.model.kv_bytes_per_token_layer()
                * seq_len
                * self.memory_model.requests
            )
        if self.ledger is not None:
            name = f"kv-layer{layer}"
            if name in self.ledger:
                self.ledger.migrate(name, MemoryTier.CPU)
        return freed
