"""Asynchronous prefetch dataflow (paper Sec. 5, Fig. 7).

Builds per-decode-step stream schedules for the five dataflow shapes of
Figure 7 and resolves their wall-clock time on the two-stream simulator:

(a) ``FULL_PREFETCH``      prefetch the entire KV cache, then compute.
(b) ``SYNC_FETCH``         per-layer retrieve -> fetch -> attend (Quest /
                           ClusterKV with offloading): transfer sits on the
                           critical path of every layer, plus a retrieval op
                           and a synchronization per layer (Challenge 1).
(c) ``ASYNC_PREFETCH``     per-layer sparse prefetch overlapped one layer
                           ahead (InfiniGen-style).
(d) ``VALUE_PREFETCH``     ShadowKV: K reconstructed on GPU, V fetched
                           after per-layer retrieval.
(e) ``ELASTIC_PREFETCH``   SpeContext: selection known before the forward
                           pass, so each layer's (elastic, tiny) transfer is
                           issued while earlier layers compute.

The builder takes per-layer compute seconds and per-layer transfer bytes —
whatever the caller's engine model decided — so the same machinery serves
Fig. 2(a), Fig. 6(a), Fig. 10/11 and Table 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec
from repro.hardware.streams import StreamOp, StreamSimulator
from repro.hardware.timing import LatencyModel


class DataflowKind(enum.Enum):
    """The five decode-step dataflow shapes of Figure 7."""

    FULL_PREFETCH = "full_prefetch"
    SYNC_FETCH = "sync_fetch"
    ASYNC_PREFETCH = "async_prefetch"
    VALUE_PREFETCH = "value_prefetch"
    ELASTIC_PREFETCH = "elastic_prefetch"


@dataclass(frozen=True)
class StepTimings:
    """Resolved timings of one decode step."""

    total_s: float
    compute_s: float
    transfer_s: float
    retrieval_s: float
    sync_s: float

    @property
    def overhead_fraction(self) -> float:
        """Share of the step not spent computing (Fig. 2a's 'up to 60%')."""
        if self.total_s == 0:
            return 0.0
        return max(0.0, 1.0 - self.compute_s / self.total_s)


class AsyncPrefetcher:
    """Builds and times decode-step dataflows on the stream simulator."""

    COMPUTE = "compute"
    TRANSFER = "transfer"

    def __init__(self, spec: HardwareSpec):
        self.spec = spec
        self.latency = LatencyModel(spec)

    def step_timings(
        self,
        kind: DataflowKind,
        layer_compute_s: list[float],
        layer_transfer_bytes: list[float],
        retrieval_s_per_layer: float = 0.0,
        pre_retrieval_s: float = 0.0,
    ) -> StepTimings:
        """Time one decode step under the given dataflow.

        ``layer_compute_s``: attention+FFN seconds per layer.
        ``layer_transfer_bytes``: KV bytes each layer must receive this step.
        ``retrieval_s_per_layer``: per-layer retrieval op time (baselines).
        ``pre_retrieval_s``: one-shot retrieval before the pass (SpeContext's
        retrieval head forward).
        """
        n_layers = len(layer_compute_s)
        if len(layer_transfer_bytes) != n_layers:
            raise ValueError("layer lists must have equal length")
        sim = StreamSimulator()
        transfer_s = [self.latency.transfer_seconds(b) for b in layer_transfer_bytes]
        sync = self.spec.sync_overhead_s
        total_retrieval = 0.0
        total_sync = 0.0

        if kind is DataflowKind.SYNC_FETCH:
            # retrieve -> fetch -> attend, serialized per layer, one sync each.
            for i in range(n_layers):
                total_retrieval += retrieval_s_per_layer
                total_sync += sync
                sim.enqueue(StreamOp(
                    self.COMPUTE, retrieval_s_per_layer, f"retrieve{i}",
                    signals=(f"ret{i}",),
                ))
                sim.enqueue(StreamOp(
                    self.TRANSFER, transfer_s[i] + sync, f"fetch{i}",
                    waits_for=(f"ret{i}",), signals=(f"kv{i}",),
                ))
                sim.enqueue(StreamOp(
                    self.COMPUTE, layer_compute_s[i], f"layer{i}",
                    waits_for=(f"kv{i}",),
                ))

        elif kind is DataflowKind.FULL_PREFETCH:
            sim.enqueue(StreamOp(
                self.TRANSFER, sum(transfer_s), "prefetch-all", signals=("kv",),
            ))
            sim.enqueue(StreamOp(
                self.COMPUTE, layer_compute_s[0], "layer0", waits_for=("kv",),
            ))
            for i in range(1, n_layers):
                sim.enqueue(StreamOp(self.COMPUTE, layer_compute_s[i], f"layer{i}"))

        elif kind in (DataflowKind.ASYNC_PREFETCH, DataflowKind.VALUE_PREFETCH):
            # Per-layer retrieval result becomes available one layer early
            # (speculative, InfiniGen) or after a cheap on-GPU score
            # (ShadowKV); transfer for layer i overlaps compute of i-1.
            for i in range(n_layers):
                total_retrieval += retrieval_s_per_layer
                waits = (f"prev{i - 1}",) if i > 0 else ()
                sim.enqueue(StreamOp(
                    self.TRANSFER, transfer_s[i], f"fetch{i}", waits_for=waits,
                    signals=(f"kv{i}",),
                ))
            for i in range(n_layers):
                sim.enqueue(StreamOp(
                    self.COMPUTE,
                    layer_compute_s[i] + retrieval_s_per_layer,
                    f"layer{i}",
                    waits_for=(f"kv{i}",),
                    signals=(f"prev{i}",),
                ))

        elif kind is DataflowKind.ELASTIC_PREFETCH:
            # Selection known before the pass: all transfers enqueue
            # immediately and drain while compute proceeds layer by layer.
            sim.enqueue(StreamOp(self.COMPUTE, pre_retrieval_s, "retrieval-head",
                                 signals=("sel",)))
            total_retrieval += pre_retrieval_s
            for i in range(n_layers):
                sim.enqueue(StreamOp(
                    self.TRANSFER, transfer_s[i], f"fetch{i}",
                    waits_for=("sel",), signals=(f"kv{i}",),
                ))
            for i in range(n_layers):
                sim.enqueue(StreamOp(
                    self.COMPUTE, layer_compute_s[i], f"layer{i}",
                    waits_for=(f"kv{i}",),
                ))
        else:
            raise ValueError(f"unknown dataflow {kind}")

        total = sim.makespan()
        return StepTimings(
            total_s=total,
            compute_s=sum(layer_compute_s),
            transfer_s=sum(transfer_s),
            retrieval_s=total_retrieval,
            sync_s=total_sync,
        )
