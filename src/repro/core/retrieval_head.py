"""The lightweight retrieval head (paper Sec. 4).

The head is a pruned distilled language model: it keeps only the embedding
and the QK projections of a one-layer EAGLE-3-style DLM (>90% parameter
reduction — the FFN, V/O projections and LM head are dropped because
retrieval only needs attention *weights*). It processes the same input as
the LLM, maintains a full K cache of its own, computes head-level attention
weights, and emits per-head Top-K token indices that the LLM consumes via
gather (Fig. 5).

Head construction mirrors the distillation relationship with the teacher:

- The embedding (content vectors) is shared with the teacher, as EAGLE
  shares the target model's embedding.
- Each retrieval q-head approximates one teacher q-head's circuit, with
  per-head Gaussian perturbations of the projections (``noise``) standing
  in for the imperfection of distillation. ``noise=0`` is a perfectly
  distilled head; larger values degrade alignment — the knob behind the
  DLM-vs-LLM similarity analyses (Fig. 5a).
- A token-shift mixer gives keys access to the previous token's content
  (the one-layer student's substitute for the teacher's layer-0 previous-
  token head; architecturally an RWKV/H3-style shift).
- The positional (recency) head runs RoPE extended by YaRN, since the DLM
  was trained at a 2K context (Sec. 4.3).

Selection granularities (Sec. 4.2):

- ``head``: Top-K per selection head; for GQA/MQA the q-level weights are
  reduced to group level with an element-wise max (Fig. 5c/d).
- ``batch``: one Top-K shared by all heads, from max-pooled weights —
  the coarse alternative the paper measures as inferior.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kvcache.cache import LayerKVCache, ModelKVCache
from repro.models.builder import head_roles
from repro.models.config import AttentionKind, ModelConfig
from repro.models.weights import DTYPE, ModelWeights
from repro.tensor.ops import softmax, top_k_indices
from repro.tensor.rope import RotaryEmbedding, YarnConfig


@dataclass(frozen=True)
class RetrievalHeadConfig:
    """Construction parameters for the lightweight retrieval head."""

    noise: float = 0.15  # distillation imperfection on Q/K projections
    shift_mix: float = 0.2  # leakage of the current token into shifted keys
    induction_sharpness: float = 14.0
    sink_sharpness: float = 10.0
    local_sharpness: float = 30.0
    dlm_trained_context: int = 2048  # the DLM's native window (YaRN-extended)
    # Positions always kept in every head's selection: the first
    # ``always_sink`` tokens (attention sinks) and the last
    # ``always_recent`` tokens. Recency retention is what lets the LLM's
    # previous-token heads function under sparsity — the functional analog
    # of the paper keeping the newest KV pairs resident on the GPU.
    always_sink: int = 1
    always_recent: int = 2


class LightweightRetrievalHead:
    """Pruned-DLM retrieval head bound to a specific teacher model."""

    def __init__(
        self,
        teacher_config: ModelConfig,
        content: np.ndarray,
        bos_id: int,
        roles: list[str],
        config: RetrievalHeadConfig,
        rng: np.random.Generator,
    ):
        self.teacher_config = teacher_config
        self.config = config
        self.content = content.astype(DTYPE)
        self.bos_id = bos_id
        self.roles = roles  # one role per retrieval q-head
        self.n_heads = len(roles)
        dc = content.shape[1]
        self.dc = dc

        # Per-head Q/K projections in content space, perturbed by `noise`.
        def perturbed() -> np.ndarray:
            eye = np.eye(dc, dtype=DTYPE)
            pert = rng.standard_normal((dc, dc)).astype(DTYPE) / np.sqrt(dc)
            return eye + config.noise * pert

        self.wq = np.stack([perturbed() for _ in range(self.n_heads)])
        self.wk = np.stack([perturbed() for _ in range(self.n_heads)])

        scale = max(teacher_config.max_position, config.dlm_trained_context)
        yarn = YarnConfig(
            original_max_position=config.dlm_trained_context,
            scaling_factor=max(scale / config.dlm_trained_context, 1.0),
        )
        self.rope = RotaryEmbedding(
            dim=dc, max_position=scale, base=teacher_config.rope_base, yarn=yarn
        )
        self._noise_rng = np.random.default_rng(rng.integers(0, 2**63))

        # The head's own K cache: per-head key vectors, one row per token.
        self._keys = np.zeros((self.n_heads, 0, dc), dtype=DTYPE)
        self._token_ids: list[int] = []

    # ---- construction ---------------------------------------------------------

    @classmethod
    def from_teacher(
        cls,
        teacher: ModelWeights,
        bos_id: int,
        rng: np.random.Generator,
        config: RetrievalHeadConfig | None = None,
    ) -> "LightweightRetrievalHead":
        """Build the head from a constructed teacher's weights.

        The teacher's content vectors are read out of its embedding (the
        shared-embedding assumption of EAGLE); head roles mirror the
        teacher's steady-state layer layout (layers >= 1).
        """
        config = config or RetrievalHeadConfig()
        tcfg = teacher.config
        dc = tcfg.head_dim
        content = teacher.embedding[:, :dc]
        kv_roles = head_roles(tcfg, layer=1)
        if tcfg.attention is AttentionKind.MLA:
            q_roles = list(kv_roles)  # MLA: per-q-head selection
        else:
            q_roles = []
            for role in kv_roles:
                q_roles.extend([role] * tcfg.group_size)
        return cls(tcfg, content, bos_id, q_roles, config, rng)

    # ---- K cache maintenance ----------------------------------------------------

    def reset(self) -> None:
        """Drop the K cache (new request)."""
        self._keys = np.zeros((self.n_heads, 0, self.dc), dtype=DTYPE)
        self._token_ids = []

    def observe(self, token_ids: np.ndarray | list[int] | int) -> None:
        """Append tokens to the head's K cache (prompt chunk or new token)."""
        if isinstance(token_ids, (int, np.integer)):
            token_ids = [int(token_ids)]
        token_ids = [int(t) for t in np.asarray(token_ids).ravel()]
        if not token_ids:
            return
        start = len(self._token_ids)
        prev_ids = ([self._token_ids[-1]] if self._token_ids else [token_ids[0]])
        prev_ids = prev_ids + token_ids[:-1]
        cur = self.content[token_ids]  # (n, dc)
        prev = self.content[prev_ids]
        shifted = prev + self.config.shift_mix * cur

        new_keys = np.empty((self.n_heads, len(token_ids), self.dc), dtype=DTYPE)
        positions = np.arange(start, start + len(token_ids))
        for h, role in enumerate(self.roles):
            if role == "induction":
                new_keys[h] = shifted @ self.wk[h].T
            elif role == "sink":
                new_keys[h] = cur
            elif role == "local":
                u = np.ones(
                (1, len(token_ids), self.dc), dtype=DTYPE
            ) / np.sqrt(self.dc)
                new_keys[h] = self.rope.apply(u, positions)[0]
            else:  # noise
                new_keys[h] = self._noise_rng.standard_normal(
                    (len(token_ids), self.dc)
                ).astype(DTYPE)
        self._keys = np.concatenate([self._keys, new_keys], axis=1)
        self._token_ids.extend(token_ids)

    def __len__(self) -> int:
        return len(self._token_ids)

    def marker(self) -> tuple[int, int, dict]:
        """Snapshot of mutable head state, for speculative rollback.

        Captures the K-cache/token lengths and the noise-head RNG state —
        everything :meth:`observe` mutates — so :meth:`restore` can return
        the head bit-exactly to this point after rejected draft tokens.
        """
        return (
            self._keys.shape[1],
            len(self._token_ids),
            self._noise_rng.bit_generator.state,
        )

    def restore(self, marker: tuple[int, int, dict]) -> None:
        """Undo observes made after :meth:`marker` was taken."""
        keys_len, ids_len, rng_state = marker
        if keys_len > self._keys.shape[1] or ids_len > len(self._token_ids):
            raise ValueError("marker is newer than the current head state")
        self._keys = self._keys[:, :keys_len, :]
        del self._token_ids[ids_len:]
        self._noise_rng.bit_generator.state = rng_state

    # ---- scoring & selection -----------------------------------------------------

    def attention_weights(self, current_token: int) -> np.ndarray:
        """Head-level attention weights over the K cache, (n_heads, seq)."""
        if not self._token_ids:
            raise RuntimeError("retrieval head has observed no tokens")
        seq = len(self._token_ids)
        cur = self.content[int(current_token)]
        logits = np.empty((self.n_heads, seq), dtype=np.float64)
        sqrt_dc = np.sqrt(self.dc)
        pos = seq  # the position the current token will occupy
        for h, role in enumerate(self.roles):
            if role == "induction":
                q = self.wq[h] @ cur
                logits[h] = (self._keys[h] @ q) * self.config.induction_sharpness
            elif role == "sink":
                q = self.content[self.bos_id]
                logits[h] = (self._keys[h] @ q) * self.config.sink_sharpness
            elif role == "local":
                u = np.ones((1, 1, self.dc), dtype=DTYPE) / np.sqrt(self.dc)
                clamped = min(pos, self.rope.max_position - 1)
                q = self.rope.apply(u, np.array([clamped]))[0, 0]
                logits[h] = (self._keys[h] @ q) * self.config.local_sharpness
            else:
                logits[h] = self._keys[h] @ (cur / sqrt_dc)
        return softmax(logits, axis=-1)

    def group_reduced_weights(self, current_token: int) -> np.ndarray:
        """Attention weights reduced to selection heads.

        For GQA/MQA: element-wise max within each query-head group
        (Fig. 5c/d). For MHA/MLA the q-level weights are returned as-is.
        """
        weights = self.attention_weights(current_token)
        cfg = self.teacher_config
        if cfg.attention in (AttentionKind.MHA, AttentionKind.MLA):
            return weights
        group = cfg.group_size
        return weights.reshape(cfg.n_kv_heads, group, -1).max(axis=1)

    def select(
        self, current_token: int, budget: int, level: str = "head"
    ) -> np.ndarray:
        """Top-``budget`` token indices per selection head.

        Returns (n_sel_heads, budget) for ``level='head'`` or a broadcast of
        the single shared set for ``level='batch'``.
        """
        weights = self.group_reduced_weights(current_token)
        seq = weights.shape[1]
        budget = min(budget, seq)
        # Pin sink and recent positions into every head's top-k (they are
        # selected outright, never duplicated, by boosting their weights
        # above the achievable softmax range).
        pinned = weights.copy()
        if self.config.always_sink > 0:
            pinned[:, : self.config.always_sink] = 2.0
        if self.config.always_recent > 0:
            pinned[:, max(seq - self.config.always_recent, 0):] = 2.0
        if level == "head":
            return np.sort(top_k_indices(pinned, budget, axis=-1), axis=-1)
        if level == "batch":
            pooled = pinned.max(axis=0)
            shared = np.sort(top_k_indices(pooled, budget))
            return np.broadcast_to(shared, (weights.shape[0], budget)).copy()
        raise ValueError(f"unknown selection level {level!r}")

    # ---- overhead accounting -------------------------------------------------------

    def parameter_count(self, include_shared_embedding: bool = False) -> int:
        """Marginal parameters of the retrieval head.

        The embedding is shared with the teacher (EAGLE-style), so by
        default only the per-head Q/K projections count — the basis of the
        >90% reduction claim versus the full DLM (Sec. 7.4).
        """
        params = self.wq.size + self.wk.size
        if include_shared_embedding:
            params += self.content.size
        return int(params)

    def k_cache_bytes(self, bytes_per_value: int = 2) -> int:
        """Footprint of the head's K cache at the current length."""
        return self._keys.shape[0] * self._keys.shape[1] * self.dc * bytes_per_value


class SpeContextPolicy:
    """SelectionPolicy adapter: global pre-inference selection, every layer.

    This is the paradigm shift of the paper: ``select`` does no work — the
    per-step selection was already computed in ``pre_step``, *before* the
    LLM forward pass, so KV prefetch can overlap with compute (Sec. 5).
    """

    def __init__(
        self,
        head: LightweightRetrievalHead,
        budget: int,
        level: str = "head",
    ):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.head = head
        self.budget = budget
        self.level = level
        self.selection_history: list[np.ndarray] = []
        self._current: np.ndarray | None = None
        self._spec_mode = False
        self._spec_base: int | None = None
        self._spec_currents: list[np.ndarray | None] = []
        self._spec_markers: list[tuple[tuple[int, int, dict], int]] = []

    def reset(self) -> None:
        """Clear per-request state so the policy can serve a new request.

        A fresh list (not ``clear()``) leaves previously returned histories
        intact for callers that kept a reference for transfer analysis.
        """
        self.head.reset()
        self.selection_history = []
        self._current = None
        self._spec_mode = False
        self._spec_base = None
        self._spec_currents = []
        self._spec_markers = []

    def begin_generation(self, prompt_ids: np.ndarray, cache: ModelKVCache) -> None:
        self.head.reset()
        self.head.observe(prompt_ids)
        self._current = None

    def pre_step(self, step: int, token_id: int, cache: ModelKVCache) -> None:
        """Run retrieval for this step before the LLM forward pass."""
        if self._spec_mode:
            # Marker t captures state *before* pre_step t, so restoring
            # marker m after committing m positions leaves exactly the
            # committed pre_steps applied.
            self._spec_markers.append(
                (self.head.marker(), len(self.selection_history))
            )
        if len(self.head) <= self.budget:
            self._current = None
        else:
            self._current = self.head.select(token_id, self.budget, level=self.level)
            self.selection_history.append(self._current)
        self.head.observe(token_id)
        if self._spec_mode:
            self._spec_currents.append(self._current)

    def spec_begin(self) -> None:
        """Arm speculative mode: buffer per-position selections for rollback.

        The per-step selection lives in ``_current`` and is overwritten by
        every ``pre_step``; a fused multi-position verify runs all pre_steps
        before any ``select``, so selections are kept per draft offset and
        ``select`` maps its row position back to the matching offset.
        """
        self._spec_mode = True
        self._spec_base = None
        self._spec_currents = []
        self._spec_markers = []

    def spec_commit(self, m: int) -> None:
        """Keep the first ``m`` speculative pre_steps; undo the rest."""
        if not self._spec_mode:
            raise RuntimeError("spec_commit without spec_begin")
        if m < 1 or m > len(self._spec_currents):
            raise ValueError(
                f"commit count {m} outside [1, {len(self._spec_currents)}]"
            )
        if m < len(self._spec_currents):
            marker, hist_len = self._spec_markers[m]
            self.head.restore(marker)
            self.selection_history = self.selection_history[:hist_len]
        self._current = self._spec_currents[m - 1]
        self._spec_mode = False
        self._spec_base = None
        self._spec_currents = []
        self._spec_markers = []

    def select(
        self, layer: int, hidden: np.ndarray, position: int, cache: LayerKVCache
    ) -> np.ndarray | None:
        if self._spec_mode:
            if self._spec_base is None:
                self._spec_base = position
            return self._spec_currents[position - self._spec_base]
        return self._current
