"""SpeContext: the paper's contribution (Secs. 4-6).

- :mod:`repro.core.retrieval_head` — C1, the lightweight retrieval head: a
  pruned DLM (embedding + QK projections) that selects globally important
  tokens *before* the LLM forward pass, at head level, for MHA/GQA/MQA/MLA.
- :mod:`repro.core.elastic` — C2a, elastic loading: transfer only the
  selection set difference between adjacent steps.
- :mod:`repro.core.prefetch` — C2b, the asynchronous two-stream prefetch
  dataflow that overlaps KV transfer with LLM compute.
- :mod:`repro.core.memory_model` — C3a, the theoretical memory model
  (Eq. 6-8) and Algorithm 1 threshold computation.
- :mod:`repro.core.adaptive` — C3b, Algorithm 2's runtime layer offloading.
- :mod:`repro.core.engine` — the end-to-end SpeContext engine combining all
  three contributions over the functional model + hardware simulator.
"""

from repro.core.adaptive import AdaptiveMemoryManager, OffloadEvent
from repro.core.elastic import ElasticKVLoader, ElasticTransferTracker
from repro.core.engine import GenerationStats, SpeContextEngine
from repro.core.memory_model import MemoryBreakdown, MemoryModel
from repro.core.prefetch import AsyncPrefetcher, DataflowKind, StepTimings
from repro.core.retrieval_head import (
    LightweightRetrievalHead,
    RetrievalHeadConfig,
    SpeContextPolicy,
)

__all__ = [
    "LightweightRetrievalHead",
    "RetrievalHeadConfig",
    "SpeContextPolicy",
    "ElasticTransferTracker",
    "ElasticKVLoader",
    "AsyncPrefetcher",
    "StepTimings",
    "DataflowKind",
    "MemoryModel",
    "MemoryBreakdown",
    "AdaptiveMemoryManager",
    "OffloadEvent",
    "SpeContextEngine",
    "GenerationStats",
]
