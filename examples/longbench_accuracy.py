"""Compare KV-selection engines on a synthetic LongBench task.

Sweeps Quest, ClusterKV, ShadowKV and SpeContext over KV budgets on the
two-hop 2WikiMQA-like task and prints an accuracy table next to the
full-attention reference — a miniature of the paper's Figure 8.

Run:  python examples/longbench_accuracy.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.experiments.common import make_functional_setup
from repro.utils.tables import format_table
from repro.workloads.harness import sweep_qa
from repro.workloads.longbench import generate_examples

warnings.filterwarnings("ignore", message="One of the clusters is empty")

ENGINES = ["Full", "Quest", "ClusterKV", "ShadowKV", "Ours", "Ours(batch)"]
BUDGETS = [64, 128, 256]


def main() -> None:
    setup = make_functional_setup(seed=7)
    rng = np.random.default_rng(77)
    examples = generate_examples(
        "2wikimqa", setup.tokenizer, rng, 4,
        context_len=768, n_distractors=20, tail_len=3,
    )
    print(f"task: 2wikimqa-like, {len(examples)} examples, "
          f"context {examples[0].prompt_len} tokens")

    cells = sweep_qa(setup.model, setup.bench, examples, ENGINES, BUDGETS)
    rows = [
        [engine] + [round(cells[(engine, b)], 3) for b in BUDGETS]
        for engine in ENGINES
    ]
    print(format_table(["Engine"] + [f"B={b}" for b in BUDGETS], rows,
                       precision=3, title="token F1 vs KV budget"))
    print(
        "\nexpected shape: Full is budget-flat; engines rise with budget; "
        "head-level Ours beats batch-level at small budgets"
    )


if __name__ == "__main__":
    main()
