"""Edge deployment walk-through: 1B reasoning model on a 4GB laptop GPU.

Shows the compilation-level machinery of Sec. 6: the theoretical memory
model computes Algorithm 1's sequence-length thresholds, the adaptive
manager walks them as a simulated reasoning trace grows, and the
performance simulator compares SpeContext's end-to-end throughput against
offloaded full attention and ShadowKV — a miniature of Figure 10(b).

Run:  python examples/edge_reasoning.py
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveMemoryManager
from repro.core.memory_model import MemoryModel
from repro.hardware.spec import EDGE_RTX4060_4GB
from repro.models.config import EDGE_LIKE_1B
from repro.perf.engines import HF_EAGER_OFFLOAD, HF_FLASH_OFFLOAD, SHADOWKV, SPECONTEXT
from repro.perf.simulate import RETRIEVAL_HEAD_BYTES, PerfSimulator, Workload
from repro.utils.tables import format_table


def main() -> None:
    spec = EDGE_RTX4060_4GB
    model = EDGE_LIKE_1B
    print(f"model: {model.name}  |  GPU: {spec.name} "
          f"({spec.gpu_memory_bytes / 1e9:.0f}GB usable)")

    # --- Algorithm 1: sequence-length thresholds at compile time ---------
    memory_model = MemoryModel(
        model, RETRIEVAL_HEAD_BYTES, spec, requests=1, budget=2048
    )
    thresholds = memory_model.sequence_thresholds()
    interesting = [t for t in thresholds if t > 0][:6]
    print(f"\nAlgorithm 1 thresholds (first offloads): "
          f"{[f'{t // 1024}K' for t in interesting]}")

    # --- Algorithm 2: walk a growing reasoning trace ----------------------
    manager = AdaptiveMemoryManager(memory_model)
    prompt_len, out_len = 2048, 32768
    for seq in range(prompt_len, prompt_len + out_len + 1, 1024):
        for event in manager.advance(seq):
            print(f"  seq {event.seq_len:>6}: offload layer {event.layer:>2} "
                  f"({event.bytes_freed / 1e6:.0f}MB freed), "
                  f"{manager.layers_on_gpu}/{manager.n_layers} layers on GPU")

    # --- Figure 10(b) miniature -------------------------------------------
    sim = PerfSimulator(model, spec, budget=2048)
    mixes = [(2048, 16384), (2048, 32768), (16384, 2048)]
    engines = (HF_EAGER_OFFLOAD, HF_FLASH_OFFLOAD, SHADOWKV, SPECONTEXT)
    rows = []
    for engine in engines:
        row = [engine.name]
        for in_len, out in mixes:
            timeline = sim.simulate(engine, Workload(in_len, out, 1), n_samples=16)
            row.append("OOM" if timeline.oom else round(timeline.tokens_per_second, 1))
        rows.append(row)
    print()
    print(format_table(
        ["Engine"] + [Workload(i, o).label for i, o in mixes], rows,
        title="end-to-end tokens/s, single request, 4GB edge GPU",
    ))


if __name__ == "__main__":
    main()
