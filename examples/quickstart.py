"""Quickstart: generate with SpeContext sparsity on a functional model.

Builds a small associative-recall transformer, plants facts in a long
filler context, and generates with the SpeContext engine — the lightweight
retrieval head selects a KV budget before every decode step, and the
engine reports the system-side accounting (bytes over PCIe, selection
overlap, adaptive offload events).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import SpeContextEngine
from repro.core.retrieval_head import RetrievalHeadConfig
from repro.hardware.spec import EDGE_RTX4060_4GB
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.utils.units import human_bytes


def main() -> None:
    rng = np.random.default_rng(0)
    tokenizer = SyntheticTokenizer(vocab_size=512)
    config = tiny_test_config(n_layers=4, vocab_size=512)
    model = TransformerLM(build_recall_model(config, tokenizer, rng))

    # Plant "key -> v1 v2 v3" fact chains inside 400 tokens of prose, then
    # ask for one of them; the model recalls the chain across decode steps.
    n_facts, chain_len = 6, 3
    entities = tokenizer.random_content_ids(rng, n_facts * (1 + chain_len))
    facts = entities.reshape(n_facts, 1 + chain_len)
    prose = list(tokenizer.random_filler_ids(rng, 400))
    prompt = [tokenizer.bos_id]
    for i in range(n_facts):
        prompt += prose[i * 60 : (i + 1) * 60] + [int(t) for t in facts[i]]
    asked = 2
    prompt += [tokenizer.question_id, int(facts[asked][0])]

    engine = SpeContextEngine(
        model,
        tokenizer.bos_id,
        budget=96,
        spec=EDGE_RTX4060_4GB,
        head_config=RetrievalHeadConfig(noise=0.1),
        rng=np.random.default_rng(1),
    )
    stats = engine.generate(np.array(prompt), max_new_tokens=chain_len)

    answer = tokenizer.decode(stats.text_token_ids)
    expected = tokenizer.decode(facts[asked][1:])
    print(f"question: what follows {tokenizer.word(int(facts[asked][0]))!r}?")
    print(f"answer:   {answer!r} (expected {expected!r})")
    print()
    print(f"KV budget:            {stats.budget} of {len(prompt)} tokens")
    print(f"bytes transferred:    {human_bytes(stats.bytes_transferred)}")
    print(f"selection overlap:    {stats.mean_selection_overlap:.0%}")
    print(f"transfer saved (C2):  {stats.transfer_reduction:.0%}")
    print(f"offload events (C3):  {len(stats.offload_events)}")
    assert answer == expected, "sparse generation should still solve recall"


if __name__ == "__main__":
    main()
