"""Quickstart: the request-level serving API on a functional model.

Config -> registry -> server, in three steps:

1. build a small associative-recall transformer and an ``EngineConfig``;
2. submit ``GenerationRequest``s — policies are resolved by name through
   the policy registry (``make_policy``), so SpeContext and any baseline
   are one string apart;
3. run the continuous-batching ``SpeContextServer`` and read per-request
   ``GenerationStats`` (bytes over PCIe, selection overlap, offloads).

The legacy one-shot ``SpeContextEngine.generate()`` still works and is now
a thin wrapper over a single-request server session.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import EngineConfig, GenerationRequest, SamplingParams
from repro.core.retrieval_head import RetrievalHeadConfig
from repro.hardware.spec import EDGE_RTX4060_4GB
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.serving import SpeContextServer
from repro.utils.units import human_bytes


def build_prompt(tokenizer, rng):
    """Plant "key -> v1 v2 v3" fact chains in prose, ask for one of them."""
    n_facts, chain_len = 6, 3
    entities = tokenizer.random_content_ids(rng, n_facts * (1 + chain_len))
    facts = entities.reshape(n_facts, 1 + chain_len)
    prose = list(tokenizer.random_filler_ids(rng, 400))
    prompt = [tokenizer.bos_id]
    for i in range(n_facts):
        prompt += prose[i * 60 : (i + 1) * 60] + [int(t) for t in facts[i]]
    asked = 2
    prompt += [tokenizer.question_id, int(facts[asked][0])]
    return np.array(prompt), facts, asked, chain_len


def main() -> None:
    rng = np.random.default_rng(0)
    tokenizer = SyntheticTokenizer(vocab_size=512)
    config = tiny_test_config(n_layers=4, vocab_size=512)
    model = TransformerLM(build_recall_model(config, tokenizer, rng))
    prompt, facts, asked, chain_len = build_prompt(tokenizer, rng)

    # 1. One config object instead of loose engine kwargs.
    engine_config = EngineConfig(
        budget=96,
        spec=EDGE_RTX4060_4GB,
        bos_id=tokenizer.bos_id,
        head_config=RetrievalHeadConfig(noise=0.1),
        max_concurrency=2,
        seed=1,
    )
    server = SpeContextServer(model, engine_config)

    # 2. Request-level API: same prompt under SpeContext and a baseline,
    #    resolved by registry name and co-scheduled by the server.
    sampling = SamplingParams(max_new_tokens=chain_len)
    server.add_request(GenerationRequest(prompt, sampling, policy="specontext"))
    server.add_request(GenerationRequest(prompt, sampling, policy="quest"))

    # 3. Continuous batching: both sessions decode interleaved.
    outputs = server.run()

    expected = tokenizer.decode(facts[asked][1:])
    print(f"question: what follows {tokenizer.word(int(facts[asked][0]))!r}?")
    for output, name in zip(outputs, ("specontext", "quest")):
        stats = output.stats
        answer = tokenizer.decode(output.token_ids)
        verdict = "correct" if answer == expected else "wrong"
        print(f"\n[{name}] answer: {answer!r} ({verdict}; expected {expected!r})")
        print(f"  KV budget:            {stats.budget} of {len(prompt)} tokens")
        print(f"  bytes transferred:    {human_bytes(stats.bytes_transferred)}")
        print(f"  selection overlap:    {stats.mean_selection_overlap:.0%}")
        print(f"  transfer saved (C2):  {stats.transfer_reduction:.0%}")
        print(f"  offload events (C3):  {len(stats.offload_events)}")
        if name == "specontext":
            assert answer == expected, "SpeContext should still solve recall"

    meter = server.meter
    print(
        f"\nmeter: {len(meter.finished)} requests, "
        f"{meter.generated_tokens} tokens in {meter.makespan_s:.0f} server steps"
    )


if __name__ == "__main__":
    main()
