"""Cloud serving walk-through: the request-level API plus the Table-3 view.

Part 1 — real inference, request-level API: a mixed-policy queue of
``GenerationRequest``s flows through the continuous-batching
``SpeContextServer`` on a functional model; every request carries its own
policy (resolved by registry name), budget and stop conditions, and the
throughput meter aggregates completions.

Part 2 — memory pressure: the same server with its shared paged KV pool
deliberately over-committed. Prompts sharing a system prefix reuse
resident blocks (prefix caching), and when decode growth exhausts the
pool the scheduler preempts the lowest-priority session and requeues it —
token streams stay bit-identical to unpressured runs.

Part 3 — the paper's scale: the same serving questions on the performance
simulator (A800, 8B-class model) — memory-admitted batch sizes and static
FIFO batching under three engines, the serving view behind Table 3.

Run:  python examples/cloud_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.api import EngineConfig, GenerationRequest, SamplingParams
from repro.hardware.spec import CLOUD_A800
from repro.models.builder import build_recall_model
from repro.models.config import DEEPSEEK_DISTILL_LIKE_8B, tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.perf.capacity import max_fitting_batch
from repro.perf.engines import FLASHINFER, HF_FLASH_ATTENTION, SPECONTEXT
from repro.perf.simulate import PerfSimulator
from repro.serving import SpeContextServer, StaticBatchScheduler
from repro.serving.request import Request
from repro.utils.tables import format_table
from repro.workloads.base import weave_context

ENGINES = (HF_FLASH_ATTENTION, FLASHINFER, SPECONTEXT)
POLICY_MIX = ("specontext", "specontext", "quest", "streaming")


def serve_functional(n_requests: int = 8, seed: int = 0) -> None:
    """Part 1: real tokens through the continuous-batching server."""
    rng = np.random.default_rng(seed)
    tokenizer = SyntheticTokenizer(vocab_size=512)
    model = TransformerLM(
        build_recall_model(tiny_test_config(n_layers=2, vocab_size=512),
                           tokenizer, rng)
    )
    server = SpeContextServer(
        model,
        EngineConfig(budget=96, bos_id=tokenizer.bos_id, max_concurrency=4),
    )
    for i in range(n_requests):
        req_rng = np.random.default_rng(seed + 10 + i)
        pair = [int(t) for t in tokenizer.random_content_ids(req_rng, 2)]
        ids, _ = weave_context(tokenizer, req_rng, [pair], context_len=263)
        prompt = np.array(ids + [tokenizer.question_id, pair[0]])
        server.add_request(GenerationRequest(
            prompt,
            sampling=SamplingParams(max_new_tokens=4),
            policy=POLICY_MIX[i % len(POLICY_MIX)],
            budget=64 if i % 2 else 96,
        ))
    outputs = server.run()
    meter = server.meter
    print(f"functional serving: {len(outputs)} mixed-policy requests, "
          f"concurrency 4")
    for output in outputs:
        print(f"  req {output.request_id}: "
              f"{POLICY_MIX[output.request_id % len(POLICY_MIX)]:11s} "
              f"{output.n_generated} tokens ({output.finish_reason}), "
              f"{output.stats.bytes_transferred / 1024:.0f} KiB over PCIe")
    print(f"  meter: {meter.generated_tokens} tokens over "
          f"{meter.makespan_s:.0f} steps "
          f"({meter.tokens_per_second:.1f} tokens/step)\n")


def serve_overcommitted(seed: int = 0) -> None:
    """Part 2: a pool half the workload's KV forces preemption; a shared
    system prefix makes the prefix cache earn its keep."""
    rng = np.random.default_rng(seed)
    tokenizer = SyntheticTokenizer(vocab_size=512)
    model = TransformerLM(
        build_recall_model(tiny_test_config(n_layers=2, vocab_size=512),
                           tokenizer, rng)
    )
    system_prefix = [
        int(t) for t in tokenizer.random_filler_ids(
            np.random.default_rng(seed + 1), 48
        )
    ]

    def request(i: int) -> GenerationRequest:
        req_rng = np.random.default_rng(seed + 50 + i)
        suffix = [int(t) for t in tokenizer.random_filler_ids(req_rng, 24)]
        prompt = np.array([tokenizer.bos_id] + system_prefix + suffix)
        return GenerationRequest(
            prompt,
            sampling=SamplingParams(max_new_tokens=24),
            policy=POLICY_MIX[i % len(POLICY_MIX)],
            priority=i % 2,  # odd requests outrank even ones
        )

    # Reference: every request alone on an unpressured server.
    base = dict(budget=96, bos_id=tokenizer.bos_id, block_size=8,
                scheduler="priority")
    solo_streams = []
    for i in range(6):
        solo = SpeContextServer(model, EngineConfig(**base))
        solo.add_request(request(i))
        solo_streams.append(solo.run()[0].token_ids)

    # Over-committed: pool sized to roughly half the aggregate KV.
    block = base["block_size"]
    aggregate = sum(
        -(-(request(i).prompt_len + 24) // block) for i in range(6)
    )
    server = SpeContextServer(
        model, EngineConfig(**base, pool_blocks=aggregate // 2)
    )
    for i in range(6):
        server.add_request(request(i))
    outputs = server.run()

    stats = server.pool.stats
    print(f"over-committed pool: {aggregate // 2} blocks for a workload "
          f"needing {aggregate}")
    print(f"  {len(server.preemption_log)} preemptions "
          f"({sum(1 for o in outputs if o.stats.preemptions)} requests hit), "
          f"{stats.prefix_blocks_reused} prompt blocks reused via prefix "
          f"cache ({stats.prefix_hit_rate:.0%} hit rate)")
    identical = all(
        outputs[i].token_ids == solo_streams[i] for i in range(6)
    )
    print(f"  token streams bit-identical to solo runs: {identical}\n")


def build_queue(n: int, seed: int = 0) -> list[Request]:
    """Reasoning-heavy request mix: short prompts, long generations."""
    rng = np.random.default_rng(seed)
    shapes = [(2048, 16384), (2048, 32768), (4096, 16384)]
    return [
        Request(request_id=i, in_len=shapes[int(k)][0], out_len=shapes[int(k)][1])
        for i, k in enumerate(rng.integers(0, len(shapes), size=n))
    ]


def simulate_cloud() -> None:
    """Part 3: Table 3's serving view on the performance simulator."""
    sim = PerfSimulator(DEEPSEEK_DISTILL_LIKE_8B, CLOUD_A800, budget=2048)
    print(f"model: {DEEPSEEK_DISTILL_LIKE_8B.name}  |  GPU: {CLOUD_A800.name}")

    print("\nmemory-admitted batch sizes at [2k, 32k]:")
    for engine in ENGINES:
        cap = max_fitting_batch(sim, engine, 2048, 32768)
        print(f"  {engine.name:24s} {cap}")

    rows = []
    for engine in ENGINES:
        queue = build_queue(24)
        meter = StaticBatchScheduler(sim, engine).execute(queue)
        rows.append([
            engine.name,
            round(meter.tokens_per_second, 1),
            round(meter.mean_latency_s, 1),
            round(meter.latency_percentile(95), 1),
            len(meter.finished),
            len(meter.rejected),
        ])
    print()
    print(format_table(
        ["Engine", "tokens/s", "mean latency (s)", "p95 latency (s)",
         "finished", "rejected"],
        rows,
        title="24 mixed reasoning requests, static FIFO batching",
    ))
    print(
        "\nSpeContext packs larger batches (its KV footprint is budget-"
        "bounded) and decodes faster per step, compounding into the "
        "throughput gap of Table 3."
    )


def main() -> None:
    serve_functional()
    serve_overcommitted()
    simulate_cloud()


if __name__ == "__main__":
    main()
