"""Cloud serving walk-through: batched long-reasoning requests on an A800.

Feeds a queue of mixed-shape requests to the memory-aware batch scheduler
under three engines and compares aggregate throughput and request latency,
plus the batch sizes each engine's memory footprint admits — the serving
view behind Table 3.

Run:  python examples/cloud_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.hardware.spec import CLOUD_A800
from repro.models.config import DEEPSEEK_DISTILL_LIKE_8B
from repro.perf.capacity import max_fitting_batch
from repro.perf.engines import FLASHINFER, HF_FLASH_ATTENTION, SPECONTEXT
from repro.perf.simulate import PerfSimulator, Workload
from repro.serving.request import Request
from repro.serving.scheduler import StaticBatchScheduler
from repro.utils.tables import format_table

ENGINES = (HF_FLASH_ATTENTION, FLASHINFER, SPECONTEXT)


def build_queue(n: int, seed: int = 0) -> list[Request]:
    """Reasoning-heavy request mix: short prompts, long generations."""
    rng = np.random.default_rng(seed)
    shapes = [(2048, 16384), (2048, 32768), (4096, 16384)]
    return [
        Request(request_id=i, in_len=shapes[int(k)][0], out_len=shapes[int(k)][1])
        for i, k in enumerate(rng.integers(0, len(shapes), size=n))
    ]


def main() -> None:
    sim = PerfSimulator(DEEPSEEK_DISTILL_LIKE_8B, CLOUD_A800, budget=2048)
    print(f"model: {DEEPSEEK_DISTILL_LIKE_8B.name}  |  GPU: {CLOUD_A800.name}")

    print("\nmemory-admitted batch sizes at [2k, 32k]:")
    for engine in ENGINES:
        cap = max_fitting_batch(sim, engine, 2048, 32768)
        print(f"  {engine.name:24s} {cap}")

    rows = []
    for engine in ENGINES:
        queue = build_queue(24)
        meter = StaticBatchScheduler(sim, engine).execute(queue)
        rows.append([
            engine.name,
            round(meter.tokens_per_second, 1),
            round(meter.mean_latency_s, 1),
            round(meter.latency_percentile(95), 1),
            len(meter.finished),
            len(meter.rejected),
        ])
    print()
    print(format_table(
        ["Engine", "tokens/s", "mean latency (s)", "p95 latency (s)",
         "finished", "rejected"],
        rows,
        title="24 mixed reasoning requests, static FIFO batching",
    ))
    print(
        "\nSpeContext packs larger batches (its KV footprint is budget-"
        "bounded) and decodes faster per step, compounding into the "
        "throughput gap of Table 3."
    )


if __name__ == "__main__":
    main()
