"""The Sec. 3 insight, run end to end: distillation aligns information focus.

Trains a one-layer student against a constructed teacher with a KL
objective (the knowledge-distillation setup of Sec. 2.3) and tracks two
quantities per epoch: the KL divergence of the output distributions and
the top-k overlap between student and teacher *attention* — the
"information focus" the paper argues must align for distillation to
succeed. Watching the second rise as the first falls is the empirical
backbone of using a DLM as the retrieval algorithm.

Run:  python examples/distillation_insight.py
"""

from __future__ import annotations

import numpy as np

from repro.distill.dataset import DistillationDataset
from repro.distill.dlm import pruning_report
from repro.distill.trainer import DistillationTrainer
from repro.models.builder import build_recall_model
from repro.models.config import LLAMA_LIKE_8B, tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer


def main() -> None:
    rng = np.random.default_rng(0)
    tokenizer = SyntheticTokenizer(512)
    config = tiny_test_config(n_layers=2, vocab_size=512)
    teacher = TransformerLM(build_recall_model(config, tokenizer, rng))

    dataset = DistillationDataset(tokenizer, seq_len=96, seed=7)
    trainer = DistillationTrainer(
        teacher, dataset, seed=1, lr=2e-2, init_noise=1.0
    )
    eval_examples = dataset.batch(12)

    def mean_kl() -> float:
        return float(
            np.mean([trainer.loss_and_grads(e)[0] for e in eval_examples])
        )

    def evidence_mass() -> float:
        """Student attention mass on the planted evidence token — the
        position the teacher's induction head focuses on."""
        return float(np.mean([
            trainer.student_attention(e)[e.value_position]
            for e in eval_examples
        ]))

    print("epoch   KL(P_T||P_S)   student mass on teacher's focus token")
    print(f"{'init':>5}   {mean_kl():12.4f}   {evidence_mass():.4f}")
    for round_idx in range(4):
        trainer.train(epochs=10, batch_size=8, eval_examples=eval_examples)
        print(f"{(round_idx + 1) * 10:>5}   {mean_kl():12.4f}   "
              f"{evidence_mass():.4f}")

    print(
        "\nKL falls and the student's attention increasingly lands on the "
        "teacher's focus tokens —\nthe premise behind using a distilled "
        "model as the retrieval algorithm."
    )
    report = pruning_report(LLAMA_LIKE_8B)
    print(
        f"\nand after pruning that DLM to its retrieval head "
        f"(Llama3-8B-scale teacher):\n"
        f"  {report.dlm_params / 1e9:.2f}B DLM params -> "
        f"{report.retained_params / 1e6:.1f}M retained "
        f"({report.reduction:.1%} reduction, "
        f"{report.retained_bytes_fp16 / 1e6:.0f}MB at FP16)"
    )


if __name__ == "__main__":
    main()
