"""Cluster serving walk-through: prefix-affinity routing across replicas.

A shared-system-prompt workload — the classic production shape: many
users, few distinct system prompts — is served by a
:class:`~repro.serving.cluster.ClusterFrontend` owning three independent
:class:`~repro.serving.server.SpeContextServer` replicas, each with its
own paged KV pool and prefix cache.

Run 1 routes with ``round_robin``: group members scatter across
replicas, so most requests re-prefill a system prompt some other replica
already holds. Run 2 routes with ``prefix_affinity``: the frontend
probes every replica's prefix cache (a read-only blake2b-chain walk) and
sticks each request to the replica holding the longest match, turning
three private caches into one cluster-wide asset. Token streams are
bit-identical between the two runs — placement never changes tokens —
but the affinity run reuses far more prompt KV and answers faster.

Run:  python examples/cluster_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ClusterConfig,
    EngineConfig,
    GenerationRequest,
    SamplingParams,
)
from repro.models.builder import build_recall_model
from repro.models.config import tiny_test_config
from repro.models.llm import TransformerLM
from repro.models.tokenizer import SyntheticTokenizer
from repro.serving import ClusterFrontend
from repro.serving.trace import TraceEntry, replay_trace_cluster
from repro.utils.tables import format_table

N_REPLICAS = 3
N_GROUPS = 4  # distinct system prompts
GROUP_SIZE = 5  # users per system prompt
SYSTEM_LEN = 64
SUFFIX_LEN = 12


def shared_prompt_trace(
    tokenizer: SyntheticTokenizer, seed: int = 0
) -> list[TraceEntry]:
    """Interleaved arrivals of N_GROUPS x GROUP_SIZE shared-prefix users."""
    entries = []
    systems = [
        [
            int(t)
            for t in tokenizer.random_filler_ids(
                np.random.default_rng(seed + 50 + g), SYSTEM_LEN
            )
        ]
        for g in range(N_GROUPS)
    ]
    step = 0
    for member in range(GROUP_SIZE):
        for group in range(N_GROUPS):
            rng = np.random.default_rng(seed + 100 * group + member)
            suffix = [int(t) for t in tokenizer.random_filler_ids(rng, SUFFIX_LEN)]
            entries.append(TraceEntry(
                arrival_step=step,
                request=GenerationRequest(
                    np.array([tokenizer.bos_id] + systems[group] + suffix),
                    sampling=SamplingParams(max_new_tokens=6),
                    policy="streaming",
                    budget=64,
                ),
            ))
            step += 2  # stagger so earlier members publish their prefix
    return entries


def serve(model, tokenizer, router: str) -> ClusterFrontend:
    frontend = ClusterFrontend(
        model,
        EngineConfig(
            budget=64, bos_id=tokenizer.bos_id, block_size=8, seed=0
        ),
        ClusterConfig(
            n_replicas=N_REPLICAS, router=router, stickiness_tokens=16
        ),
    )
    replay_trace_cluster(frontend, shared_prompt_trace(tokenizer))
    return frontend


def report(frontend: ClusterFrontend, router: str) -> None:
    routing = frontend.routing
    rows = [
        [
            i,
            routing.routed[i],
            routing.affinity_hits[i],
            routing.affinity_misses[i],
            routing.cold[i],
            frontend.replicas[i].pool.stats.prefix_blocks_reused,
        ]
        for i in range(frontend.n_replicas)
    ]
    print(format_table(
        ["replica", "routed", "hits", "misses", "cold", "blocks reused"],
        rows,
        title=f"{router}: {routing.hit_rate:.0%} affinity hit rate, "
        f"{frontend.prefix_reused_tokens()} prompt tokens reused "
        "cluster-wide",
    ))
    meter = frontend.stats()
    print(
        f"  merged meter: {len(meter.finished)} finished, ttft p95 "
        f"{meter.ttft_percentile(95):.0f} steps, "
        f"{meter.busy_tokens_per_second:.2f} tokens/step busy\n"
    )


def main() -> None:
    rng = np.random.default_rng(0)
    tokenizer = SyntheticTokenizer(vocab_size=512)
    model = TransformerLM(
        build_recall_model(
            tiny_test_config(n_layers=2, vocab_size=512), tokenizer, rng
        )
    )
    print(
        f"{N_GROUPS} system prompts x {GROUP_SIZE} users over "
        f"{N_REPLICAS} replicas; arrivals interleave the groups\n"
    )
    runs = {}
    for router in ("round_robin", "prefix_affinity"):
        frontend = serve(model, tokenizer, router)
        report(frontend, router)
        runs[router] = frontend
    blind = runs["round_robin"]
    sticky = runs["prefix_affinity"]
    streams_equal = [
        o.token_ids for o in blind.outputs
    ] == [o.token_ids for o in sticky.outputs]
    gain = sticky.prefix_reused_tokens() / max(blind.prefix_reused_tokens(), 1)
    print(
        f"prefix_affinity reuses {gain:.2f}x the prompt KV of round_robin; "
        f"streams bit-identical: {streams_equal}"
    )


if __name__ == "__main__":
    main()
