"""Property-based tests for the shared paged KV pool.

The pool is the server's memory-safety foundation, so its invariants are
pinned with randomized sequences, not just examples: random
alloc/free/fork/write interleavings never leak blocks, refcounts stay
consistent with who holds what, copy-on-write forks preserve the values
readers see, and freed-block reuse is a deterministic function of the
operation history.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.pool import (
    BlockTable,
    PagedKVPool,
    PoolAuditError,
    PoolExhausted,
    hash_token_prefix,
)


def payload_of(value: float, n_layers: int = 2, block: int = 4):
    """A recognizable block payload: arrays filled with ``value``."""
    shape = (1, 2, block, 3)
    return [
        (np.full(shape, value + layer), np.full(shape, -(value + layer)))
        for layer in range(n_layers)
    ]


def payload_value(payload) -> float:
    """Recover the fill value written by :func:`payload_of`."""
    return float(payload[0][0].flat[0])


class PoolModel:
    """Shadow model: tables of expected per-slot values, driven by ops.

    The real pool and this model interpret the same operation stream; the
    model tracks only what each table should *read* — the property under
    test is that sharing and CoW never let one table's writes reach
    another's reads.
    """

    def __init__(self, pool: PagedKVPool):
        self.pool = pool
        self.tables: list[BlockTable] = []
        self.expected: list[list[float | None]] = []

    def op_new_table(self) -> None:
        self.tables.append(BlockTable())
        self.expected.append([])

    def op_alloc(self, t: int) -> None:
        try:
            block_id = self.pool.allocate()
        except PoolExhausted:
            return
        self.tables[t].block_ids.append(block_id)
        self.expected[t].append(None)

    def op_fork(self, t: int) -> None:
        if self.pool.n_free < 1 and len(self.tables[t]) > 0:
            # A post-fork CoW write would need a free block; forking is
            # still legal, but keep the random walk away from dead ends.
            return
        self.tables.append(self.pool.fork_table(self.tables[t]))
        self.expected.append(list(self.expected[t]))

    def op_write(self, t: int, slot: int, value: float) -> None:
        table = self.tables[t]
        if not table.block_ids:
            return
        slot %= len(table.block_ids)
        shared = self.pool.ref_count(table.block_ids[slot]) > 1
        if shared and self.pool.n_free == 0:
            return  # CoW fork would exhaust the pool
        self.pool.write_block(table, slot, payload_of(value))
        self.expected[t][slot] = value

    def op_free(self, t: int) -> None:
        self.pool.free_table(self.tables[t])
        self.expected[t] = []

    def check(self) -> None:
        # Full invariant audit against the live tables: refcount totals,
        # free-stack disjointness, prefix-index health, spec accounting.
        self.pool.audit(tables=self.tables)
        held = sum(len(t) for t in self.tables)
        # Every held reference is backed by an in-use block and vice versa
        # (no cached blocks in this walk, so refs come only from tables).
        in_use = {b for t in self.tables for b in t.block_ids}
        assert self.pool.n_used == len(in_use)
        for block_id in in_use:
            refs = sum(t.block_ids.count(block_id) for t in self.tables)
            assert self.pool.ref_count(block_id) == refs
        assert held >= self.pool.n_used
        for t, table in enumerate(self.tables):
            for slot, value in enumerate(self.expected[t]):
                if value is None:
                    continue
                got = self.pool.read_block(table.block_ids[slot])
                assert got is not None and payload_value(got) == value, (
                    f"table {t} slot {slot}: expected {value}"
                )


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["new", "alloc", "fork", "write", "free"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=60,
)


class TestPoolProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=ops_strategy, n_blocks=st.integers(min_value=1, max_value=24))
    def test_random_walk_never_leaks_and_cow_isolates(self, ops, n_blocks):
        model = PoolModel(PagedKVPool(n_blocks, block_size=4))
        model.op_new_table()
        value = 0.0
        for name, a, b in ops:
            if name == "new":
                model.op_new_table()
            elif name == "alloc":
                model.op_alloc(a % len(model.tables))
            elif name == "fork":
                model.op_fork(a % len(model.tables))
            elif name == "write":
                value += 1.0
                model.op_write(a % len(model.tables), b, value)
            elif name == "free":
                model.op_free(a % len(model.tables))
            model.check()
        for t in range(len(model.tables)):
            model.op_free(t)
        model.check()
        assert model.pool.n_free == model.pool.capacity  # nothing leaked
        assert model.pool.stats.allocated == model.pool.stats.freed

    @settings(max_examples=40, deadline=None)
    @given(ops=ops_strategy)
    def test_freed_block_reuse_is_deterministic(self, ops):
        """Two pools fed the same op stream hand out identical block ids."""

        def run(pool: PagedKVPool) -> list[int]:
            tables = [BlockTable()]
            trace: list[int] = []
            for name, a, _ in ops:
                t = a % len(tables)
                if name == "new":
                    tables.append(BlockTable())
                elif name == "fork":
                    tables.append(pool.fork_table(tables[t]))
                elif name == "free":
                    pool.free_table(tables[t])
                else:  # alloc and write both exercise the free stack
                    try:
                        block_id = pool.allocate()
                    except PoolExhausted:
                        continue
                    tables[t].block_ids.append(block_id)
                    trace.append(block_id)
            return trace

        assert run(PagedKVPool(12, block_size=4)) == run(
            PagedKVPool(12, block_size=4)
        )

    def test_cow_fork_preserves_read_values(self):
        pool = PagedKVPool(8, block_size=4)
        original = BlockTable()
        original.block_ids.append(pool.allocate())
        pool.write_block(original, 0, payload_of(1.0))
        forked = pool.fork_table(original)
        assert forked.block_ids == original.block_ids
        assert pool.ref_count(original.block_ids[0]) == 2

        written_id = pool.write_block(forked, 0, payload_of(2.0))
        assert written_id != original.block_ids[0]  # CoW forked a copy
        assert pool.stats.cow_forks == 1
        assert payload_value(pool.read_block(original.block_ids[0])) == 1.0
        assert payload_value(pool.read_block(forked.block_ids[0])) == 2.0
        pool.free_table(original)
        pool.free_table(forked)
        assert pool.n_free == pool.capacity

    def test_lifo_reuse_order(self):
        """Freed blocks are reused most-recently-freed first."""
        pool = PagedKVPool(4, block_size=4)
        table = BlockTable()
        ids = [pool.allocate() for _ in range(3)]
        table.block_ids.extend(ids)
        pool.release(ids[1])
        table.block_ids.remove(ids[1])
        pool.release(ids[0])
        table.block_ids.remove(ids[0])
        assert pool.allocate() == ids[0]  # last freed, first reused
        assert pool.allocate() == ids[1]


class TestPoolApi:
    def test_validation(self):
        with pytest.raises(ValueError):
            PagedKVPool(0)
        with pytest.raises(ValueError):
            PagedKVPool(4, block_size=0)
        pool = PagedKVPool(2)
        with pytest.raises(ValueError):
            pool.retain(0)  # free block
        with pytest.raises(ValueError):
            pool.release(0)

    def test_exhaustion_raises(self):
        pool = PagedKVPool(2, block_size=4)
        pool.allocate()
        pool.allocate()
        with pytest.raises(PoolExhausted):
            pool.allocate()

    def test_blocks_for_tokens(self):
        pool = PagedKVPool(8, block_size=16)
        assert pool.blocks_for_tokens(0) == 0
        assert pool.blocks_for_tokens(1) == 1
        assert pool.blocks_for_tokens(16) == 1
        assert pool.blocks_for_tokens(17) == 2


class TestPrefixCache:
    def publish(self, pool: PagedKVPool, prompt: np.ndarray, n_blocks: int):
        table = BlockTable()
        for i in range(n_blocks):
            table.block_ids.append(pool.allocate())
            pool.write_block(table, i, payload_of(float(i)))
        pool.publish_prefix(prompt, table, n_blocks)
        return table

    def test_hash_covers_whole_prefix(self):
        a = np.arange(32)
        b = np.arange(32)
        b[0] = 99  # differs before the final block
        assert hash_token_prefix(a, 32) != hash_token_prefix(b, 32)
        assert hash_token_prefix(a, 16) == hash_token_prefix(a.copy(), 16)

    def test_match_returns_longest_chain_then_stops(self):
        pool = PagedKVPool(16, block_size=4)
        prompt = np.arange(100, 120)
        self.publish(pool, prompt, 3)
        sharing = np.concatenate([prompt[:8], np.arange(500, 512)])
        chain = pool.match_prefix(sharing, sharing.size)
        assert len(chain) == 2  # blocks 0-1 shared, block 2 diverges
        assert pool.stats.prefix_hits == 1
        table = BlockTable()
        pool.acquire_prefix(chain, table)
        assert [payload_value(pool.read_block(b)) for b in table] == [0.0, 1.0]
        assert all(pool.ref_count(b) == 3 for b in chain)  # donor+cache+us

    def test_match_respects_max_tokens_cap(self):
        pool = PagedKVPool(16, block_size=4)
        prompt = np.arange(16)
        self.publish(pool, prompt, 4)
        assert len(pool.match_prefix(prompt, 15)) == 3  # 4th block > cap
        assert len(pool.match_prefix(prompt, 16)) == 4

    def test_cached_blocks_evicted_lru_only_when_unreferenced(self):
        pool = PagedKVPool(4, block_size=4)
        donor = self.publish(pool, np.arange(100, 108), 2)
        pool.free_table(donor)  # cache is now the only holder
        assert pool.n_free == 2 and pool.n_evictable() == 2
        # Exhaust free blocks, then two more allocations evict LRU entries.
        held = [pool.allocate() for _ in range(4)]
        assert pool.stats.prefix_evictions == 2
        assert pool.match_prefix(np.arange(100, 108), 8) == []
        for block_id in held:
            pool.release(block_id)
        pool.audit(tables=[])

    def test_referenced_cached_blocks_never_evicted(self):
        pool = PagedKVPool(3, block_size=4)
        donor = self.publish(pool, np.arange(8), 2)  # donor + cache hold them
        pool.allocate()
        with pytest.raises(PoolExhausted):
            pool.allocate()  # nothing evictable: donor still references
        assert len(pool.match_prefix(np.arange(8), 8)) == 2
        assert pool.ref_count(donor.block_ids[0]) >= 2

    def test_publish_requires_payload(self):
        pool = PagedKVPool(4, block_size=4)
        table = BlockTable()
        table.block_ids.append(pool.allocate())
        with pytest.raises(ValueError, match="payload"):
            pool.publish_prefix(np.arange(4), table, 1)


class TestPoolAudit:
    """The audit must *fail* on seeded corruption, not just pass clean."""

    def test_clean_pool_passes_with_tables(self):
        pool = PagedKVPool(8, block_size=4)
        table = BlockTable()
        table.block_ids.extend(pool.allocate() for _ in range(3))
        pool.audit(tables=[table])
        pool.free_table(table)
        pool.audit(tables=[])

    def test_orphaned_spec_reservation_is_caught(self):
        pool = PagedKVPool(8, block_size=4)
        reserved = pool.reserve_spec(2)
        assert len(reserved) == 2
        # Mid-wave callers may carry reservations across the check...
        pool.audit(allow_spec_outstanding=True)
        # ...but a wave that ends without promote/release is a leak.
        with pytest.raises(PoolAuditError, match="orphaned spec"):
            pool.audit()
        pool.release_spec(reserved)
        pool.audit()

    def test_refcount_drift_vs_tables_is_caught(self):
        pool = PagedKVPool(8, block_size=4)
        table = BlockTable()
        table.block_ids.append(pool.allocate())
        # Simulate a lost-reference bug: a table chains a block the pool
        # no longer counts a holder for.
        pool._blocks[table.block_ids[0]].ref_count += 1
        with pytest.raises(PoolAuditError, match="refcount"):
            pool.audit(tables=[table])

    def test_free_stack_corruption_is_caught(self):
        pool = PagedKVPool(8, block_size=4)
        block_id = pool.allocate()
        # Simulate a double-free: a live block pushed back on the stack.
        pool._free.append(block_id)
        with pytest.raises(PoolAuditError):
            pool.audit()

    def test_spec_counter_identity_is_checked(self):
        pool = PagedKVPool(8, block_size=4)
        reserved = pool.reserve_spec(1)
        table = BlockTable()
        pool.promote_spec(table, reserved)
        pool.audit(tables=[table])
        # Promotions count as allocations; the identity must notice if
        # the counters drift from the outstanding set.
        pool.stats.spec_promoted += 1
        with pytest.raises(PoolAuditError, match="spec counters"):
            pool.audit(tables=[table])
