"""Tests for the writing-task generator and the six-dimension judge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.tokenizer import SyntheticTokenizer
from repro.workloads.judge import (
    DIMENSIONS,
    JudgeScore,
    judge_generation,
    mean_scores,
)
from repro.workloads.longwriter import generate_writing_examples, make_writing_example


@pytest.fixture(scope="module")
def tokenizer():
    return SyntheticTokenizer(2048)


@pytest.fixture
def example(tokenizer):
    rng = np.random.default_rng(31)
    return make_writing_example(
        tokenizer, rng, n_sections=5, section_len=6, prompt_len=120
    )


class TestGenerator:
    def test_prompt_shape(self, example, tokenizer):
        assert example.prompt_len == 122
        assert example.prompt_ids[-2] == tokenizer.question_id
        assert example.prompt_ids[-1] == example.sections[0][0]

    def test_reference_chain_walks_sections(self, example, tokenizer):
        chain = list(example.reference_chain)
        assert chain[-1] == tokenizer.sep_id
        # Each section's contents appear in order, then the next topic.
        cursor = 0
        for i, section in enumerate(example.sections):
            _, *contents = section
            assert chain[cursor : cursor + len(contents)] == list(contents)
            cursor += len(contents)
            if i + 1 < len(example.sections):
                assert chain[cursor] == example.sections[i + 1][0]
                cursor += 1

    def test_plan_tokens_cover_topics_and_contents(self, example):
        for section in example.sections:
            assert set(section) <= example.plan_tokens

    def test_reference_bigrams_license_the_chain(self, example):
        chain = example.reference_chain
        bigrams = example.reference_bigrams
        assert all(pair in bigrams for pair in zip(chain, chain[1:]))

    def test_batch_generation(self, tokenizer):
        rng = np.random.default_rng(5)
        examples = generate_writing_examples(
            tokenizer, rng, 3, n_sections=3, section_len=4, prompt_len=64
        )
        assert len(examples) == 3

    def test_needs_two_sections(self, tokenizer):
        with pytest.raises(ValueError):
            make_writing_example(tokenizer, np.random.default_rng(0), n_sections=1)


class TestJudge:
    def test_perfect_generation_scores_max(self, example):
        score = judge_generation(list(example.reference_chain), example)
        for value in score.as_dict().values():
            assert value == pytest.approx(5.0)

    def test_empty_generation_scores_zero(self, example):
        score = judge_generation([], example)
        assert score.average == 0.0

    def test_off_plan_garbage_scores_low(self, example, tokenizer):
        garbage = [tokenizer.filler_id(i % 10) for i in range(40)]
        score = judge_generation(garbage, example)
        assert score.relevance == 0.0
        assert score.average < 1.0

    def test_repetition_loop_hurts_clarity(self, example):
        token = example.sections[0][1]
        looped = [token] * 30
        score = judge_generation(looped, example)
        assert score.clarity < 1.0
        assert score.coherence == 0.0

    def test_truncation_hurts_breadth_not_accuracy_prefix(self, example):
        half = list(example.reference_chain)[: len(example.reference_chain) // 2]
        score = judge_generation(half, example)
        full = judge_generation(list(example.reference_chain), example)
        assert score.breadth_depth < full.breadth_depth
        assert score.relevance == pytest.approx(5.0)

    def test_all_dimensions_bounded(self, example, tokenizer):
        rng = np.random.default_rng(9)
        random_tokens = [int(t) for t in rng.integers(8, 500, size=50)]
        score = judge_generation(random_tokens, example)
        for value in score.as_dict().values():
            assert 0.0 <= value <= 5.0

    def test_mean_scores_dimensionwise(self):
        a = JudgeScore(1, 1, 1, 1, 1, 1)
        b = JudgeScore(3, 3, 3, 3, 3, 3)
        mean = mean_scores([a, b])
        assert all(v == 2.0 for v in mean.as_dict().values())
        assert mean.average == 2.0

    def test_mean_scores_empty_raises(self):
        with pytest.raises(ValueError):
            mean_scores([])

    def test_dimension_names_stable(self):
        assert DIMENSIONS == (
            "relevance", "accuracy", "coherence", "clarity",
            "breadth_depth", "reading_experience",
        )
