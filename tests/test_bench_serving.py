"""The serving benchmark harness itself is part of the tested surface:
every future PR's perf trajectory depends on it emitting a valid,
self-consistent report."""

from __future__ import annotations

import importlib.util
import json
import pathlib

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_serving.py"
)
_spec = importlib.util.spec_from_file_location("bench_serving", BENCH_PATH)
bench_serving = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_serving)


class TestBenchServing:
    def run_bench(self, tmp_path, extra=()):
        out = tmp_path / "BENCH_serving.json"
        rc = bench_serving.main([
            "--sessions", "3", "--prompt-len", "24", "--max-new-tokens", "6",
            "--layers", "2", "--repeats", "1",
            "--short-sessions", "4", "--short-max-new", "6",
            "--long-prompt-len", "96", "--prefill-chunk-tokens", "16",
            "--max-step-tokens", "24",
            "--spec-periodic-sessions", "2", "--spec-filler-sessions", "1",
            "--spec-prompt-len", "25", "--spec-max-new", "8",
            "--out", str(out), *extra,
        ])
        return rc, out

    def test_report_schema_and_identical_streams(self, tmp_path, capsys):
        rc, out = self.run_bench(tmp_path)
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "serving_batched_decode"
        assert report["streams_identical"] is True
        assert report["speedup"] > 0
        for mode in ("sequential", "batched"):
            entry = report[mode]
            assert entry["generated_tokens"] > 0
            assert entry["tokens_per_s"] > 0
            assert entry["decode_tokens_per_s"] > 0
            assert set(entry["step_latency_ms"]) == {"mean", "p50", "p95"}
            assert set(entry["ttft_ms"]) == {"mean", "p50", "p95"}
            assert entry["ttft_ms"]["p95"] >= entry["ttft_ms"]["p50"] > 0
            assert set(entry["queueing_delay_steps"]) == {"mean", "p50", "p95"}
            assert entry["busy_tokens_per_step"] >= entry["tokens_per_step"] > 0
            assert "token_streams" not in entry  # raw streams stay out
        assert "speedup" in capsys.readouterr().out

    def test_chunked_prefill_section_schema(self, tmp_path, capsys):
        rc, out = self.run_bench(tmp_path)
        assert rc == 0
        section = json.loads(out.read_text())["chunked_prefill"]
        assert section["streams_identical"] is True
        assert section["ttft_p95_gain"] > 0
        assert section["decode_step_p95_gain"] > 0
        assert section["workload"]["prefill_chunk_tokens"] == 16
        for mode in ("monolithic", "chunked"):
            entry = section[mode]
            assert entry["generated_tokens"] > 0
            assert set(entry["decode_step_latency_ms"]) == {"p50", "p95"}
            assert entry["ttft_ms"]["p95"] > 0
            assert set(entry["step_tokens"]) == {"budget", "mean", "max"}
            assert "token_streams" not in entry
        # The token budget is enforced step by step in chunked mode only:
        # monolithic admission computes a whole prompt inline.
        assert section["chunked"]["step_tokens"]["budget"] == 24
        assert section["monolithic"]["step_tokens"]["max"] > 24
        assert "chunked prefill" in capsys.readouterr().out

    def test_spec_decode_section_schema(self, tmp_path, capsys):
        rc, out = self.run_bench(tmp_path)
        assert rc == 0
        section = json.loads(out.read_text())["spec_decode"]
        assert section["streams_identical"] is True
        assert section["speedup"] > 0
        assert 0.0 <= section["acceptance_rate"] <= 1.0
        assert section["spec_steps"] > 0
        assert 0 <= section["accepted"] <= section["drafted"]
        assert 1.0 <= section["tokens_per_spec_step"] <= section["workload"][
            "spec_k"
        ] + 1
        assert section["workload"]["policy"] == "full"
        assert section["workload"]["periodic_sessions"] == 2
        for mode in ("baseline", "speculative"):
            entry = section[mode]
            assert entry["generated_tokens"] > 0
            assert entry["decode_tokens_per_s"] > 0
            assert "token_streams" not in entry
        # Identical trace, identical acceptance rule: both modes must
        # emit the same number of tokens.
        assert (
            section["baseline"]["generated_tokens"]
            == section["speculative"]["generated_tokens"]
        )
        assert "spec decode" in capsys.readouterr().out

    def test_spec_smoke_lane_runs_only_spec(self, tmp_path, capsys):
        rc, out = self.run_bench(tmp_path, extra=("--spec-smoke",))
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "serving_spec_decode_smoke"
        assert set(report) == {"benchmark", "spec_decode"}
        assert report["spec_decode"]["streams_identical"] is True
        assert "spec decode" in capsys.readouterr().out

    def test_min_accept_rate_gate_fails_when_unmet(self, tmp_path, capsys):
        rc, _ = self.run_bench(
            tmp_path, extra=("--spec-smoke", "--min-accept-rate", "1.1")
        )
        assert rc == 1
        assert "acceptance rate" in capsys.readouterr().err

    def test_min_spec_speedup_gate_fails_when_unmet(self, tmp_path, capsys):
        rc, _ = self.run_bench(
            tmp_path, extra=("--spec-smoke", "--min-spec-speedup", "1e9")
        )
        assert rc == 1
        assert "speculative speedup" in capsys.readouterr().err

    def test_min_speedup_gate_fails_when_unmet(self, tmp_path, capsys):
        rc, _ = self.run_bench(tmp_path, extra=("--min-speedup", "1e9"))
        assert rc == 1
        assert "below required" in capsys.readouterr().err

    def test_min_ttft_gain_gate_fails_when_unmet(self, tmp_path, capsys):
        rc, _ = self.run_bench(tmp_path, extra=("--min-ttft-gain", "1e9"))
        assert rc == 1
        assert "TTFT" in capsys.readouterr().err

    def test_unknown_policy_rejected(self, tmp_path, capsys):
        rc = bench_serving.main(["--policy", "nope", "--out", str(tmp_path / "x")])
        assert rc == 2
