"""Tests for the shared-prefill evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import make_functional_setup
from repro.workloads.harness import (
    decode_with_policy,
    prepare_prompt,
    score_qa,
    sweep_qa,
)
from repro.workloads.longbench import make_passage_count, make_trivia


@pytest.fixture(scope="module")
def setup():
    return make_functional_setup(seed=4, head_noise=0.3)


@pytest.fixture(scope="module")
def example(setup):
    rng = np.random.default_rng(41)
    return make_trivia(setup.tokenizer, rng, context_len=384, answer_len=3)


class TestPreparedPrompt:
    def test_prefill_excludes_last_token(self, setup, example):
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        assert prepared.cache.seq_len == example.prompt_len - 1
        assert prepared.pending_token == int(example.prompt_ids[-1])

    def test_rejects_trivial_prompts(self, setup):
        with pytest.raises(ValueError):
            prepare_prompt(setup.model, np.array([5]))

    def test_decode_does_not_mutate_prepared_cache(self, setup, example):
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        before = prepared.cache.seq_len
        decode_with_policy(setup.model, prepared, None, 4)
        assert prepared.cache.seq_len == before

    def test_decode_matches_generate(self, setup, example):
        """The harness decode loop reproduces TransformerLM.generate."""
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        harness = decode_with_policy(setup.model, prepared, None, 3)
        reference = setup.model.generate(
            example.prompt_ids, 3, sparse_from_first_token=True
        )
        assert harness.token_ids == reference.token_ids

    def test_repeated_decodes_are_deterministic(self, setup, example):
        prepared = prepare_prompt(setup.model, example.prompt_ids)
        a = decode_with_policy(setup.model, prepared, None, 4)
        b = decode_with_policy(setup.model, prepared, None, 4)
        assert a.token_ids == b.token_ids


class TestPolicyBench:
    def test_all_advertised_engines_construct(self, setup):
        bench = setup.bench
        for engine in bench.available():
            policy = bench.policy(engine, 64)
            if engine == "Full":
                assert policy is None
            else:
                assert policy is not None

    def test_unknown_engine_raises(self, setup):
        with pytest.raises(KeyError):
            setup.bench.policy("vLLM", 64)

    def test_mla_bench_restricts_baselines(self):
        from repro.models.config import AttentionKind

        mla = make_functional_setup(attention=AttentionKind.MLA, seed=5)
        with pytest.raises(NotImplementedError):
            mla.bench.policy("Quest", 64)
        assert mla.bench.policy("Ours", 64) is not None


class TestScoring:
    def test_qa_score_uses_f1(self, example):
        assert score_qa(example, list(example.answer_ids)) == 1.0
        assert score_qa(example, []) == 0.0

    def test_passage_count_scoring(self, setup):
        rng = np.random.default_rng(43)
        example = make_passage_count(
            setup.tokenizer, rng, context_len=384, n_distinct=5
        )
        perfect = list(example.answer_ids)  # 4 pids then <sep>
        assert score_qa(example, perfect) == 1.0
        # Stopping early undercounts.
        short = perfect[:2] + [setup.tokenizer.sep_id]
        assert score_qa(example, short) == pytest.approx(1.0 - 2 / 5)

    def test_sweep_covers_all_cells(self, setup, example):
        cells = sweep_qa(
            setup.model, setup.bench, [example], ["Full", "Ours"], [32, 64]
        )
        assert set(cells) == {
            ("Full", 32), ("Full", 64), ("Ours", 32), ("Ours", 64),
        }
        assert all(0.0 <= v <= 1.0 for v in cells.values())

    def test_full_attention_budget_invariant(self, setup, example):
        cells = sweep_qa(setup.model, setup.bench, [example], ["Full"], [32, 256])
        assert cells[("Full", 32)] == cells[("Full", 256)]
