"""Hypothesis property tests on the workload builders and judge."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.tokenizer import SyntheticTokenizer
from repro.workloads.base import weave_context
from repro.workloads.judge import judge_generation
from repro.workloads.longbench import make_passage_count, make_trivia
from repro.workloads.longwriter import make_writing_example

TOKENIZER = SyntheticTokenizer(2048)


class TestWeaveProperties:
    @given(
        seed=st.integers(0, 10_000),
        n_segments=st.integers(1, 6),
        seg_len=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_weave_invariants(self, seed, n_segments, seg_len):
        rng = np.random.default_rng(seed)
        segments = [
            [TOKENIZER.content_id(i * seg_len + j) for j in range(seg_len)]
            for i in range(n_segments)
        ]
        context_len = 32 + n_segments * (seg_len + 4)
        ids, starts = weave_context(TOKENIZER, rng, segments, context_len)
        # Exact length, bos first, all segments intact.
        assert len(ids) == context_len
        assert ids[0] == TOKENIZER.bos_id
        for seg, start in zip(segments, starts):
            assert ids[start : start + len(seg)] == seg
        # Segments never overlap.
        spans = sorted(
            (start, start + len(seg)) for seg, start in zip(segments, starts)
        )
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_b >= end_a


class TestGeneratorProperties:
    @given(seed=st.integers(0, 5_000), answer_len=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_trivia_answer_planted_verbatim(self, seed, answer_len):
        rng = np.random.default_rng(seed)
        example = make_trivia(
            TOKENIZER, rng, context_len=256, answer_len=answer_len,
            n_distractors=4,
        )
        start = example.evidence_positions[0]
        planted = [
            int(t)
            for t in example.prompt_ids[start + 1 : start + 1 + answer_len]
        ]
        assert planted == list(example.answer_ids)
        assert example.max_new_tokens == answer_len

    @given(
        seed=st.integers(0, 5_000),
        n_distinct=st.integers(2, 8),
        n_duplicates=st.integers(0, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_passage_count_chain_consistency(self, seed, n_distinct, n_duplicates):
        rng = np.random.default_rng(seed)
        example = make_passage_count(
            TOKENIZER, rng, context_len=512, n_distinct=n_distinct,
            n_duplicates=n_duplicates, body_len=8,
        )
        assert example.meta["true_count"] == n_distinct
        assert len(example.answer_ids) == n_distinct  # pids[1:] + <sep>
        # Every answer id except the terminator is a content word.
        for token in example.answer_ids[:-1]:
            assert TOKENIZER.is_content(token)


class TestJudgeProperties:
    @given(seed=st.integers(0, 2_000), cut=st.floats(0.1, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_longer_correct_prefix_never_scores_worse(self, seed, cut):
        """Truncating a perfect generation is monotone for the judge's
        average (more of the plan written -> weakly better)."""
        rng = np.random.default_rng(seed)
        example = make_writing_example(
            TOKENIZER, rng, n_sections=4, section_len=5, prompt_len=64
        )
        reference = list(example.reference_chain)
        shorter = reference[: max(1, int(len(reference) * cut * 0.5))]
        longer = reference[: max(1, int(len(reference) * cut))]
        s_short = judge_generation(shorter, example).average
        s_long = judge_generation(longer, example).average
        assert s_long >= s_short - 1e-9

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=20, deadline=None)
    def test_judge_bounded_on_arbitrary_generations(self, seed):
        rng = np.random.default_rng(seed)
        example = make_writing_example(
            TOKENIZER, rng, n_sections=3, section_len=4, prompt_len=48
        )
        tokens = [int(t) for t in rng.integers(0, 2048, size=rng.integers(0, 60))]
        score = judge_generation(tokens, example)
        for value in score.as_dict().values():
            assert 0.0 <= value <= 5.0
