"""Tests for the benchmark metrics, with hypothesis property checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.metrics import (
    bigram_validity,
    count_score,
    distinct_ratio,
    exact_match,
    prefix_match,
    token_f1,
)

tokens = st.lists(st.integers(0, 30), min_size=0, max_size=20)
nonempty = st.lists(st.integers(0, 30), min_size=1, max_size=20)


class TestTokenF1:
    def test_perfect_match(self):
        assert token_f1([1, 2, 3], [1, 2, 3]) == 1.0

    def test_order_insensitive(self):
        assert token_f1([3, 1, 2], [1, 2, 3]) == 1.0

    def test_no_overlap(self):
        assert token_f1([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        # pred {1,2}, gold {1,3}: precision 0.5, recall 0.5 -> F1 0.5
        assert token_f1([1, 2], [1, 3]) == pytest.approx(0.5)

    def test_multiplicity_counts(self):
        # pred has one 1, gold has two: recall 0.5, precision 1.0
        assert token_f1([1], [1, 1]) == pytest.approx(2 / 3)

    def test_empty_cases(self):
        assert token_f1([], []) == 1.0
        assert token_f1([], [1]) == 0.0
        assert token_f1([1], []) == 0.0

    @given(pred=tokens, gold=tokens)
    @settings(max_examples=100, deadline=None)
    def test_bounded_and_symmetric(self, pred, gold):
        f1 = token_f1(pred, gold)
        assert 0.0 <= f1 <= 1.0
        assert f1 == pytest.approx(token_f1(gold, pred))

    @given(seq=nonempty)
    @settings(max_examples=50, deadline=None)
    def test_identity_is_one(self, seq):
        assert token_f1(seq, seq) == 1.0


class TestPrefixAndExact:
    def test_prefix_partial(self):
        assert prefix_match([1, 2, 9], [1, 2, 3, 4]) == pytest.approx(0.5)

    def test_prefix_empty_gold(self):
        assert prefix_match([1], []) == 1.0

    def test_exact(self):
        assert exact_match([1, 2], [1, 2]) == 1.0
        assert exact_match([1, 2], [2, 1]) == 0.0

    @given(pred=tokens, gold=tokens)
    @settings(max_examples=100, deadline=None)
    def test_exact_implies_full_prefix(self, pred, gold):
        if exact_match(pred, gold) == 1.0:
            assert prefix_match(pred, gold) == 1.0


class TestCountScore:
    def test_exact_count(self):
        assert count_score(5, 5) == 1.0

    def test_linear_decay(self):
        assert count_score(4, 5) == pytest.approx(0.8)
        assert count_score(10, 5) == 0.0

    def test_rejects_nonpositive_truth(self):
        with pytest.raises(ValueError):
            count_score(3, 0)

    @given(pred=st.integers(0, 100), true=st.integers(1, 50))
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, pred, true):
        assert 0.0 <= count_score(pred, true) <= 1.0


class TestTextQuality:
    def test_distinct_ratio(self):
        assert distinct_ratio([1, 1, 1, 1]) == 0.25
        assert distinct_ratio([1, 2, 3, 4]) == 1.0
        assert distinct_ratio([]) == 0.0

    def test_bigram_validity(self):
        valid = {(1, 2), (2, 3)}
        assert bigram_validity([1, 2, 3], valid) == 1.0
        assert bigram_validity([3, 2, 1], valid) == 0.0
        assert bigram_validity([1, 2, 1], valid) == pytest.approx(0.5)

    def test_bigram_short_sequences(self):
        assert bigram_validity([1], {(1, 2)}) == 1.0
        assert bigram_validity([], {(1, 2)}) == 0.0

    @given(seq=nonempty)
    @settings(max_examples=50, deadline=None)
    def test_distinct_ratio_bounds(self, seq):
        ratio = distinct_ratio(seq)
        assert 0.0 < ratio <= 1.0
