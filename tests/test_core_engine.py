"""Integration tests for SpeContextEngine (the end-to-end functional path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SpeContextEngine
from repro.core.retrieval_head import RetrievalHeadConfig
from repro.distill.dlm import full_dlm_analog
from repro.hardware.spec import EDGE_RTX4060_4GB
from tests.conftest import make_recall_prompt


@pytest.fixture
def engine(tiny_gqa_model, tiny_tokenizer):
    return SpeContextEngine(
        tiny_gqa_model,
        tiny_tokenizer.bos_id,
        budget=96,
        spec=EDGE_RTX4060_4GB,
        head_config=RetrievalHeadConfig(noise=0.1),
        rng=np.random.default_rng(0),
    )


class TestGeneration:
    def test_solves_recall_under_sparsity(self, engine, tiny_tokenizer):
        rng = np.random.default_rng(11)
        prompt, expected, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        stats = engine.generate(prompt, max_new_tokens=1)
        assert stats.text_token_ids[0] == expected

    def test_matches_full_attention_tokens(self, engine, tiny_gqa_model,
                                           tiny_tokenizer):
        rng = np.random.default_rng(12)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        sparse = engine.generate(prompt, max_new_tokens=4)
        full = tiny_gqa_model.generate(
            prompt, 4, sparse_from_first_token=True
        )
        assert sparse.text_token_ids == full.token_ids

    def test_stop_ids_terminate(self, engine, tiny_tokenizer):
        rng = np.random.default_rng(13)
        prompt, expected, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        stats = engine.generate(
            prompt, max_new_tokens=8, stop_ids=(expected,)
        )
        assert stats.result.stopped_by_eos
        assert stats.text_token_ids[-1] == expected


class TestSystemAccounting:
    def test_transfer_accounting_present(self, engine, tiny_tokenizer):
        rng = np.random.default_rng(14)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        stats = engine.generate(prompt, max_new_tokens=6)
        assert stats.bytes_transferred > 0
        assert 0.0 <= stats.mean_selection_overlap <= 1.0
        assert 0.0 <= stats.transfer_reduction < 1.0

    def test_elastic_reduces_transfer(self, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(15)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        kwargs = dict(
            bos_id=tiny_tokenizer.bos_id,
            budget=96,
            spec=EDGE_RTX4060_4GB,
            head_config=RetrievalHeadConfig(noise=0.1),
        )
        elastic = SpeContextEngine(
            tiny_gqa_model, elastic=True, rng=np.random.default_rng(0), **kwargs
        )
        naive = SpeContextEngine(
            tiny_gqa_model, elastic=False, rng=np.random.default_rng(0), **kwargs
        )
        a = elastic.generate(prompt, max_new_tokens=6)
        b = naive.generate(prompt, max_new_tokens=6)
        assert a.bytes_transferred < b.bytes_transferred
        # Same tokens either way: elastic loading is performance-only.
        assert a.text_token_ids == b.text_token_ids

    def test_pruning_ratio_exceeds_90(self, engine, tiny_gqa_model):
        dlm = full_dlm_analog(tiny_gqa_model.config)
        assert engine.pruning_ratio(dlm.total_params()) > 0.9

    def test_pruning_ratio_rejects_nonpositive(self, engine):
        with pytest.raises(ValueError):
            engine.pruning_ratio(0)

    def test_offload_events_ordered(self, engine, tiny_tokenizer):
        rng = np.random.default_rng(16)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        stats = engine.generate(prompt, max_new_tokens=4)
        lengths = [e.seq_len for e in stats.offload_events]
        assert lengths == sorted(lengths)
