"""Tests for the table/series formatting helpers."""

from __future__ import annotations

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["Engine", "tok/s"], [["Ours", 12.345], ["HF", 1.0]],
            precision=2, title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Engine" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "12.35" in text  # float rounding
        # Every row has identical rendered width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/separator/rows align

    def test_mixed_cell_types(self):
        text = format_table(["a", "b", "c"], [[1, "x", 2.5]], precision=1)
        assert "2.5" in text and "x" in text

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text


class TestFormatSeries:
    def test_series_layout(self):
        text = format_series(
            "budget", [32, 64], {"head": [0.9, 1.0], "batch": [0.5, 0.6]}
        )
        lines = text.splitlines()
        assert lines[0].startswith("budget")
        assert any(line.startswith("head") for line in lines)
        assert any(line.startswith("batch") for line in lines)
