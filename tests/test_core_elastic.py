"""Tests for elastic loading (paper Sec. 5.4), including set-algebra
invariants via hypothesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elastic import ElasticKVLoader, ElasticTransferTracker
from repro.hardware.memory import MemoryTier
from repro.kvcache.pool import TieredKVStore


class TestTracker:
    def test_first_step_is_cold_load(self):
        tracker = ElasticTransferTracker(bytes_per_token=100)
        step = tracker.observe(np.array([1, 2, 3]))
        assert step.loaded_tokens == 3
        assert step.bytes_moved == 300
        assert step.evicted_tokens == 0

    def test_identical_selection_moves_nothing(self):
        tracker = ElasticTransferTracker(bytes_per_token=100)
        tracker.observe(np.array([1, 2, 3]))
        step = tracker.observe(np.array([3, 2, 1]))
        assert step.loaded_tokens == 0
        assert step.overlap_fraction == 1.0

    def test_partial_overlap_loads_difference(self):
        tracker = ElasticTransferTracker(bytes_per_token=10)
        tracker.observe(np.array([1, 2, 3, 4]))
        step = tracker.observe(np.array([3, 4, 5, 6]))
        assert step.loaded_tokens == 2
        assert step.evicted_tokens == 2
        assert step.overlap_fraction == 0.5

    def test_non_elastic_reloads_everything(self):
        tracker = ElasticTransferTracker(bytes_per_token=10, elastic=False)
        tracker.observe(np.array([1, 2, 3]))
        step = tracker.observe(np.array([1, 2, 3]))
        assert step.loaded_tokens == 3

    def test_two_dim_selection_flattened(self):
        tracker = ElasticTransferTracker(bytes_per_token=10)
        step = tracker.observe(np.array([[1, 2], [2, 3]]))
        assert step.selection_size == 3

    def test_reduction_vs_full_reload(self):
        elastic = ElasticTransferTracker(bytes_per_token=1)
        naive = ElasticTransferTracker(bytes_per_token=1, elastic=False)
        selections = [np.arange(i, i + 50) for i in range(20)]
        for sel in selections:
            elastic.observe(sel)
            naive.observe(sel)
        assert elastic.total_bytes < naive.total_bytes
        assert 0.0 < elastic.transfer_reduction_vs_full_reload() < 1.0
        assert naive.transfer_reduction_vs_full_reload() == 0.0

    def test_mean_overlap_excludes_cold_start(self):
        tracker = ElasticTransferTracker(bytes_per_token=1)
        tracker.observe(np.array([1, 2]))
        tracker.observe(np.array([1, 2]))
        assert tracker.mean_overlap == 1.0

    @given(
        st.lists(
            st.sets(st.integers(0, 40), min_size=4, max_size=4),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fixed_budget_loads_equal_evictions(self, selections):
        """|S_last − S_now| == |S_now − S_last| under a fixed budget."""
        tracker = ElasticTransferTracker(bytes_per_token=1)
        for sel in selections:
            tracker.observe(np.array(sorted(sel)))
        for step in tracker.steps[1:]:
            assert step.loaded_tokens == step.evicted_tokens

    @given(
        st.lists(
            st.sets(st.integers(0, 30), min_size=1, max_size=8),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bytes_conservation(self, selections):
        """Total bytes equal the sum of per-step loads times token size."""
        tracker = ElasticTransferTracker(bytes_per_token=7)
        for sel in selections:
            tracker.observe(np.array(sorted(sel)))
        assert tracker.total_bytes == 7 * sum(s.loaded_tokens for s in tracker.steps)


def _store(n_tokens: int, n_kv_heads: int = 2, head_dim: int = 4) -> TieredKVStore:
    store = TieredKVStore(n_kv_heads=n_kv_heads, head_dim=head_dim)
    rng = np.random.default_rng(0)
    keys = rng.standard_normal((n_kv_heads, n_tokens, head_dim))
    values = rng.standard_normal((n_kv_heads, n_tokens, head_dim))
    store.append(keys, values, MemoryTier.CPU)
    return store


class TestLoader:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ElasticKVLoader([_store(8)], budget=0)

    def test_load_step_places_selection(self):
        store = _store(32)
        loader = ElasticKVLoader([store], budget=4)
        moved = loader.load_step(0, np.array([1, 5, 9, 13]))
        assert moved > 0
        assert loader.resident_tokens(0, 0) == frozenset({1, 5, 9, 13})

    def test_repeat_load_moves_nothing(self):
        store = _store(32)
        loader = ElasticKVLoader([store], budget=4)
        sel = np.array([1, 5, 9, 13])
        loader.load_step(0, sel)
        assert loader.load_step(0, sel) == 0

    def test_difference_only_transfer(self):
        store = _store(32)
        loader = ElasticKVLoader([store], budget=4)
        first = loader.load_step(0, np.array([1, 2, 3, 4]))
        second = loader.load_step(0, np.array([3, 4, 5, 6]))
        assert second == first // 2  # two of four tokens changed

    def test_gathered_payload_matches_store(self):
        store = _store(16)
        loader = ElasticKVLoader([store], budget=4)
        sel = np.array([2, 7, 11, 3])
        loader.load_step(0, sel)
        k, _ = loader.gather(0, 0, np.array([7, 11]))
        expected_k = store._keys[0, [7, 11]]
        np.testing.assert_allclose(np.squeeze(k), expected_k)

    def test_per_head_selection(self):
        store = _store(32)
        loader = ElasticKVLoader([store], budget=2)
        loader.load_step(0, np.array([[1, 2], [3, 4]]))
        assert loader.resident_tokens(0, 0) == frozenset({1, 2})
        assert loader.resident_tokens(0, 1) == frozenset({3, 4})

    def test_ledger_charged(self):
        store = _store(32)
        loader = ElasticKVLoader([store], budget=4)
        loader.load_step(0, np.array([0, 1, 2, 3]))
        assert store.ledger.total_bytes > 0
