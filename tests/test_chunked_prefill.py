"""Chunked prefill bit-identity suite.

The tentpole guarantee: splitting a prompt's prefill into budgeted chunks
interleaved with the decode wave NEVER changes what is generated. A
token's KV depends only on the tokens before it (the same argument behind
the prefix cache), so for every policy, chunk size and step budget the
chunked server's tokens, selection histories and transfer stats must
equal the monolithic reference exactly — including with prefix-cache hits
landing mid-chunk, preemption striking mid-prefill (swap and recompute),
and the fused batched decode path on top.

With ``prefill_chunk_tokens >= prompt`` and no step budget the chunked
scheduler degenerates to the monolithic one step for step, so there the
*entire* observable state is pinned: preemption log, offload events,
meter timestamps and the clock itself.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import EngineConfig, GenerationRequest, SamplingParams
from repro.serving import SpeContextServer, poisson_trace, replay_trace
from repro.serving.trace import solo_token_streams
from tests.test_serving_traces import (
    ALL_NAMES,
    assert_outputs_bit_identical,
    clone,
    filler_prompt,
    pool_config,
)

warnings.filterwarnings("ignore", message="One of the clusters is empty")

# (prefill_chunk_tokens, max_step_tokens): exactly one pool block, an odd
# size that never aligns with block or prompt boundaries, a budgeted odd
# size, and a chunk covering any whole prompt (degenerates to monolithic).
CHUNK_GRID = [
    pytest.param(8, None, id="one-block"),
    pytest.param(7, None, id="odd"),
    pytest.param(13, 24, id="odd-budgeted"),
    pytest.param(10_000, None, id="ge-prompt"),
]


def eight_policy_requests(tokenizer, max_new_tokens=6):
    return [
        GenerationRequest(
            filler_prompt(tokenizer, 900 + i, 26 + 3 * i),
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
            policy=name,
            budget=48 if i % 2 else 64,
            priority=i % 3,
        )
        for i, name in enumerate(ALL_NAMES)
    ]


def run_trace(model, tokenizer, requests, trace_seed=11, **overrides):
    config = pool_config(tokenizer, **overrides)
    server = SpeContextServer(model, config)
    trace = poisson_trace(
        np.random.default_rng(trace_seed), [clone(r) for r in requests], 1.5
    )
    outputs = replay_trace(server, trace)
    return server, outputs


def assert_generation_identical(chunked_outputs, mono_outputs):
    """Schedule-independent equality: everything a client can observe
    about *what was generated* — tokens, stop reasons, selection
    histories and the transfer accounting derived from them. Timing-
    dependent stats (preemptions, offload events, prefix reuse) may
    legitimately differ when chunking stretches prefill across steps."""
    assert len(chunked_outputs) == len(mono_outputs)
    for c, m in zip(chunked_outputs, mono_outputs):
        assert c.request_id == m.request_id
        assert c.token_ids == m.token_ids, c.request_id
        assert c.finish_reason == m.finish_reason
        assert c.stats.budget == m.stats.budget
        assert c.stats.bytes_transferred == m.stats.bytes_transferred
        assert c.stats.transfer_reduction == m.stats.transfer_reduction
        assert c.stats.mean_selection_overlap == m.stats.mean_selection_overlap
        assert len(c.stats.result.selections) == len(m.stats.result.selections)
        for step_c, step_m in zip(
            c.stats.result.selections, m.stats.result.selections
        ):
            assert step_c.keys() == step_m.keys()
            for layer, selection in step_m.items():
                assert np.array_equal(step_c[layer], selection), (
                    c.request_id, layer,
                )


class TestChunkedEqualsMonolithic:
    @pytest.mark.parametrize("chunk,max_step", CHUNK_GRID)
    def test_all_policies_bit_identical(
        self, chunk, max_step, tiny_gqa_model, tiny_tokenizer
    ):
        requests = eight_policy_requests(tiny_tokenizer)
        _, mono = run_trace(tiny_gqa_model, tiny_tokenizer, requests)
        _, chunked = run_trace(
            tiny_gqa_model,
            tiny_tokenizer,
            requests,
            prefill_chunk_tokens=chunk,
            max_step_tokens=max_step,
        )
        assert_generation_identical(chunked, mono)

    def test_ge_prompt_chunk_degenerates_to_monolithic(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Chunk >= prompt and no budget: the chunked scheduler runs each
        prefill whole in its admission step, so the complete observable
        state — preemption log, meter timestamps, clock — is pinned to
        the monolithic server, not just the generated streams."""
        requests = eight_policy_requests(tiny_tokenizer, max_new_tokens=12)
        mono_server, mono = run_trace(
            tiny_gqa_model, tiny_tokenizer, requests, pool_blocks=14
        )
        chunk_server, chunked = run_trace(
            tiny_gqa_model,
            tiny_tokenizer,
            requests,
            pool_blocks=14,
            prefill_chunk_tokens=10_000,
        )
        assert len(mono_server.preemption_log) > 0  # pressure actually bit
        assert_outputs_bit_identical(chunked, mono)
        assert [
            (e.request_id, e.clock, e.mode, e.blocks_freed, e.kv_bytes)
            for e in chunk_server.preemption_log
        ] == [
            (e.request_id, e.clock, e.mode, e.blocks_freed, e.kv_bytes)
            for e in mono_server.preemption_log
        ]
        assert chunk_server.clock == mono_server.clock
        assert [
            (r.request_id, r.arrival_s, r.start_s, r.first_token_s, r.finish_s)
            for r in chunk_server.meter.finished
        ] == [
            (r.request_id, r.arrival_s, r.start_s, r.first_token_s, r.finish_s)
            for r in mono_server.meter.finished
        ]

    @pytest.mark.parametrize("chunk,max_step", CHUNK_GRID)
    def test_solo_engine_stream_unchanged(
        self, chunk, max_step, tiny_gqa_model, tiny_tokenizer
    ):
        """The single-request path (what SpeContextEngine wraps) is
        chunk-invariant too."""
        request = GenerationRequest(
            filler_prompt(tiny_tokenizer, 77, 40),
            sampling=SamplingParams(max_new_tokens=5),
            policy="specontext",
        )
        solo = solo_token_streams(
            tiny_gqa_model, pool_config(tiny_tokenizer), [request], clone
        )[0]
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(
                tiny_tokenizer,
                prefill_chunk_tokens=chunk,
                max_step_tokens=max_step,
            ),
        )
        server.add_request(clone(request))
        assert server.run()[0].token_ids == solo


class TestTokenBudget:
    def test_prefill_respects_step_budget_and_decodes_keep_ticking(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """The head-of-line fix itself: while a long prompt streams in,
        (a) no step computes more prompt tokens than the budget allows,
        (b) already-running sessions emit tokens every step, and (c) the
        long prefill genuinely spans several steps."""
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(
                tiny_tokenizer, prefill_chunk_tokens=8, max_step_tokens=12
            ),
        )
        short = GenerationRequest(
            filler_prompt(tiny_tokenizer, 1, 12),
            sampling=SamplingParams(max_new_tokens=24),
            policy="streaming",
        )
        server.add_request(short)
        server.step()  # short is prefilled and decoding
        long = GenerationRequest(
            filler_prompt(tiny_tokenizer, 2, 90),
            sampling=SamplingParams(max_new_tokens=4),
            policy="streaming",
        )
        long_id = server.add_request(long)
        def still_prefilling() -> bool:
            return any(
                not s.prefill_done
                for s in (*server._active, *server._waiting)
            )

        prefilling_steps = 0
        while still_prefilling():
            server.step()
            assert server.last_step_prefill_tokens <= 12
            events = server.pop_stream_events()
            # the short session's decode never stalls behind the prefill
            assert any(e.request_id != long_id for e in events)
            if still_prefilling():
                # first long token only after its final chunk lands
                assert all(e.request_id != long_id for e in events)
            prefilling_steps += 1
        assert prefilling_steps >= 90 // 12  # spread over many steps
        server.run()
        solo = solo_token_streams(
            tiny_gqa_model,
            pool_config(tiny_tokenizer),
            [short, long],
            clone,
        )
        by_id = {o.request_id: o.token_ids for o in server.outputs}
        assert by_id[0] == solo[0]
        assert by_id[long_id] == solo[1]

    def test_unbudgeted_chunking_advances_one_chunk_per_step(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(tiny_tokenizer, prefill_chunk_tokens=16),
        )
        server.add_request(
            GenerationRequest(
                filler_prompt(tiny_tokenizer, 3, 60),
                sampling=SamplingParams(max_new_tokens=2),
                policy="full",
            )
        )
        seen = []
        while server.has_unfinished:
            server.step()
            seen.append(server.last_step_prefill_tokens)
        assert max(seen) <= 16
        assert sum(seen) == 60  # every non-reused prompt token computed once

    def test_max_step_tokens_requires_chunking(self):
        with pytest.raises(ValueError, match="requires prefill_chunk_tokens"):
            EngineConfig(max_step_tokens=32)


class TestMidPrefillPreemption:
    @pytest.mark.parametrize("mode", ["swap", "recompute"])
    def test_preempted_mid_prefill_resumes_exactly(
        self, mode, tiny_gqa_model, tiny_tokenizer
    ):
        """A decoder's growth evicts a peer whose prompt is still
        streaming in; the victim must resume at the correct chunk (swap)
        or rebuild from scratch (recompute) with streams bit-identical
        to solo runs. Two established decoders allocate growth blocks
        while the late long prompt trickles in under a tight budget, so
        pool exhaustion strikes while it is mid-prefill and fcfs picks
        it (the latest arrival) as victim."""
        shorts = [
            GenerationRequest(
                filler_prompt(tiny_tokenizer, 40 + i, 12),
                sampling=SamplingParams(max_new_tokens=24),
                policy="streaming",
            )
            for i in range(2)
        ]
        long = GenerationRequest(
            filler_prompt(tiny_tokenizer, 50, 64),
            sampling=SamplingParams(max_new_tokens=4),
            policy="quest",
        )
        solo = solo_token_streams(
            tiny_gqa_model, pool_config(tiny_tokenizer), [*shorts, long], clone
        )
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(
                tiny_tokenizer,
                pool_blocks=14,
                preempt_mode=mode,
                prefill_chunk_tokens=4,
                max_step_tokens=8,
            ),
        )
        for request in shorts:
            server.add_request(clone(request))
        server.step()
        server.step()
        server.add_request(clone(long))
        mid_prefill_preemptions = 0
        while server.has_unfinished:
            server.step()
            mid_prefill_preemptions += sum(
                1
                for s in server._waiting
                if s.preemptions and s.prefill_started and not s.prefill_done
            )
        assert len(server.preemption_log) > 0
        assert mid_prefill_preemptions > 0  # pressure hit a PREFILLING session
        outputs = sorted(server.outputs, key=lambda o: o.request_id)
        assert [o.token_ids for o in outputs] == solo

    @pytest.mark.parametrize("scheduler", ["fcfs", "priority", "sjf"])
    def test_batched_equals_sequential_under_chunked_pressure(
        self, scheduler, tiny_gqa_model, tiny_tokenizer
    ):
        """The PR-3 guarantee survives chunking: fused decode and the
        sequential reference loop stay bit-identical — outputs, stats and
        the preemption log event for event — while prompts stream in
        chunk by chunk under pool pressure."""
        requests = eight_policy_requests(tiny_tokenizer, max_new_tokens=10)[:6]
        servers, outputs = [], []
        for batched in (True, False):
            server, outs = run_trace(
                tiny_gqa_model,
                tiny_tokenizer,
                requests,
                pool_blocks=11,
                scheduler=scheduler,
                batched_decode=batched,
                prefill_chunk_tokens=6,
                max_step_tokens=16,
            )
            servers.append(server)
            outputs.append(outs)
        assert len(servers[0].preemption_log) > 0
        assert_outputs_bit_identical(outputs[0], outputs[1])
        assert [
            (e.request_id, e.clock, e.blocks_freed, e.kv_bytes)
            for e in servers[0].preemption_log
        ] == [
            (e.request_id, e.clock, e.blocks_freed, e.kv_bytes)
            for e in servers[1].preemption_log
        ]


class TestPrefixCacheDuringPrefill:
    def test_follower_hits_blocks_of_still_prefilling_peer(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Chunk-aware publishing: full prompt blocks go into the prefix
        cache as chunks complete, so a request sharing the prefix reuses
        them while the donor is *still prefilling* — and its stream stays
        bit-identical to an uncached solo run."""
        prefix = [
            int(t)
            for t in tiny_tokenizer.random_filler_ids(
                np.random.default_rng(99), 48
            )
        ]
        donor = GenerationRequest(
            filler_prompt(tiny_tokenizer, 200, 40, prefix=prefix),
            sampling=SamplingParams(max_new_tokens=4),
            policy="full",
        )
        follower = GenerationRequest(
            filler_prompt(tiny_tokenizer, 201, 10, prefix=prefix),
            sampling=SamplingParams(max_new_tokens=4),
            policy="quest",
        )
        solo = solo_token_streams(
            tiny_gqa_model,
            pool_config(tiny_tokenizer, enable_prefix_cache=False),
            [follower],
            clone,
        )[0]
        server = SpeContextServer(
            tiny_gqa_model,
            pool_config(
                tiny_tokenizer, prefill_chunk_tokens=8, max_step_tokens=16
            ),
        )
        server.add_request(clone(donor))
        server.step()
        server.step()
        donor_session = server._active[0]
        assert not donor_session.prefill_done  # donor genuinely mid-prefill
        published_at_submit = server.pool.stats.prefix_hits
        follower_id = server.add_request(clone(follower))
        outputs = server.run()
        out = next(o for o in outputs if o.request_id == follower_id)
        assert out.stats.prefix_reused_tokens > 0
        assert server.pool.stats.prefix_hits > published_at_submit
        assert out.token_ids == solo

    @pytest.mark.parametrize("chunk", [7, 8, 13])
    def test_prefix_reuse_lands_mid_chunk_for_every_policy(
        self, chunk, tiny_gqa_model, tiny_tokenizer
    ):
        """Cache hits advance the chunk cursor to a block boundary that
        need not align with the chunk size, so the resumed chunk starts
        mid-block-run; every policy must be unaffected."""
        prefix = [
            int(t)
            for t in tiny_tokenizer.random_filler_ids(
                np.random.default_rng(7), 32
            )
        ]
        for name in ALL_NAMES:
            follower = GenerationRequest(
                filler_prompt(tiny_tokenizer, 300, 20, prefix=prefix),
                sampling=SamplingParams(max_new_tokens=3),
                policy=name,
            )
            solo = solo_token_streams(
                tiny_gqa_model,
                pool_config(tiny_tokenizer, enable_prefix_cache=False),
                [follower],
                clone,
            )[0]
            server = SpeContextServer(
                tiny_gqa_model,
                pool_config(tiny_tokenizer, prefill_chunk_tokens=chunk),
            )
            donor = GenerationRequest(
                filler_prompt(tiny_tokenizer, 301, 16, prefix=prefix),
                sampling=SamplingParams(max_new_tokens=1),
                policy="full",
            )
            server.add_request(donor)
            server.run()
            server.add_request(clone(follower))
            output = server.run()[0]
            assert output.stats.prefix_reused_tokens > 0, name
            assert output.token_ids == solo, name
