"""Tests for the layer-wise KV-selection baselines (Quest, ClusterKV,
ShadowKV, StreamingLLM, H2O, sliding window, full attention)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.retrieval.clusterkv import ClusterKVPolicy
from repro.retrieval.full import FullAttentionPolicy
from repro.retrieval.h2o import H2OPolicy
from repro.retrieval.quest import QuestPolicy
from repro.retrieval.shadowkv import ShadowKVPolicy
from repro.retrieval.sliding import SlidingWindowPolicy
from repro.retrieval.streaming import StreamingLLMPolicy
from tests.conftest import make_recall_prompt

warnings.filterwarnings("ignore", message="One of the clusters is empty")

BUDGETED = (QuestPolicy, ClusterKVPolicy, ShadowKVPolicy, H2OPolicy)


def run_generation(model, prompt, policy, n_tokens=3):
    return model.generate(
        np.asarray(prompt), n_tokens, policy=policy, sparse_from_first_token=True
    )


class TestLifecycle:
    @pytest.mark.parametrize("cls", BUDGETED)
    def test_budget_must_be_positive(self, cls, tiny_gqa_model):
        with pytest.raises(ValueError):
            cls(tiny_gqa_model, budget=0)

    @pytest.mark.parametrize("cls", BUDGETED)
    def test_short_prompt_is_full_attention(self, cls, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(1)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=40)
        policy = cls(tiny_gqa_model, budget=4096)
        result = run_generation(tiny_gqa_model, prompt, policy)
        assert all(not sels for sels in result.selections)

    @pytest.mark.parametrize("cls", BUDGETED)
    def test_long_prompt_selects_within_budget(
        self, cls, tiny_gqa_model, tiny_tokenizer
    ):
        rng = np.random.default_rng(2)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        budget = 64
        policy = cls(tiny_gqa_model, budget=budget)
        result = run_generation(tiny_gqa_model, prompt, policy, n_tokens=3)
        prompt_len = prompt.size - 1
        # Quest rounds to whole pages and always keeps the partial tail
        # page, so its per-head count may exceed the budget by one page.
        slack = 1 + (policy.page_size if isinstance(policy, QuestPolicy) else 0)
        for step, sels in enumerate(result.selections):
            assert sels, "long prompt must trigger selection"
            for selection in sels.values():
                prompt_part = selection[selection < prompt_len]
                if selection.ndim == 2:
                    per_head = [
                        row[row < prompt_len].size for row in selection
                    ]
                    assert max(per_head) <= budget + slack
                else:
                    assert prompt_part.size <= budget + slack

    @pytest.mark.parametrize("cls", BUDGETED)
    def test_generated_tokens_always_retained(
        self, cls, tiny_gqa_model, tiny_tokenizer
    ):
        """Challenge 2: baselines retain every decode-phase KV pair."""
        rng = np.random.default_rng(3)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        policy = cls(tiny_gqa_model, budget=32)
        result = run_generation(tiny_gqa_model, prompt, policy, n_tokens=4)
        prompt_len = prompt.size - 1
        last_step = result.selections[-1]
        for selection in last_step.values():
            flat = np.unique(selection)
            generated = flat[flat >= prompt_len]
            # Steps 0..3 appended 4 tokens; by the final step at least the
            # previously generated positions are present.
            assert generated.size >= 3


class TestAccuracy:
    @pytest.mark.parametrize("cls", BUDGETED)
    def test_budgeted_policy_solves_recall_with_adequate_budget(
        self, cls, tiny_gqa_model, tiny_tokenizer
    ):
        rng = np.random.default_rng(4)
        prompt, expected, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        policy = cls(tiny_gqa_model, budget=128)
        result = run_generation(tiny_gqa_model, prompt, policy, n_tokens=1)
        assert result.token_ids[0] == expected

    def test_sliding_window_forgets_early_evidence(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """A window smaller than the evidence distance loses the answer."""
        rng = np.random.default_rng(5)
        prompt, expected, value_pos = make_recall_prompt(
            tiny_tokenizer, rng, n_filler=300, query_pair=0
        )
        # Ensure the evidence is far from the prompt end.
        if prompt.size - value_pos < 100:
            pytest.skip("evidence landed too close to the query")
        policy = SlidingWindowPolicy(budget=32)
        result = run_generation(tiny_gqa_model, prompt, policy, n_tokens=1)
        assert result.token_ids[0] != expected

    def test_streaming_keeps_sinks(self, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(6)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        policy = StreamingLLMPolicy(budget=32, n_sinks=4)
        result = run_generation(tiny_gqa_model, prompt, policy, n_tokens=2)
        for sels in result.selections:
            for selection in sels.values():
                assert set(range(4)) <= set(np.unique(selection).tolist())

    def test_full_attention_policy_is_noop(self, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(7)
        prompt, expected, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=200)
        policy = FullAttentionPolicy()
        result = run_generation(tiny_gqa_model, prompt, policy, n_tokens=1)
        assert result.token_ids[0] == expected
        assert all(not sels for sels in result.selections)


class TestMLASupport:
    @pytest.mark.parametrize("cls", BUDGETED)
    def test_k_cache_policies_reject_mla(self, cls, tiny_mla_model):
        """The paper's 'None Support' cells: baselines need a K cache."""
        with pytest.raises(NotImplementedError):
            cls(tiny_mla_model, budget=64)


class TestOpsAccounting:
    def test_quest_scores_fewer_candidates_than_full(
        self, tiny_gqa_model, tiny_tokenizer
    ):
        """Preprocessing exists to shrink len_keys in Eq. 3."""
        rng = np.random.default_rng(8)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        quest = QuestPolicy(tiny_gqa_model, budget=64)
        shadow = ShadowKVPolicy(tiny_gqa_model, budget=64)
        run_generation(tiny_gqa_model, prompt, quest, n_tokens=2)
        run_generation(tiny_gqa_model, prompt, shadow, n_tokens=2)
        # Quest scores page vectors (seq/page_size); ShadowKV scores every
        # (quantized) key: Quest's op count must be much smaller.
        assert quest.record.retrieval_ops < shadow.record.retrieval_ops

    def test_selection_history_recorded(self, tiny_gqa_model, tiny_tokenizer):
        rng = np.random.default_rng(9)
        prompt, _, _ = make_recall_prompt(tiny_tokenizer, rng, n_filler=300)
        policy = QuestPolicy(tiny_gqa_model, budget=64)
        run_generation(tiny_gqa_model, prompt, policy, n_tokens=4)
        assert len(policy.record.selection_history) >= 2
        layer0 = policy.record.layer_selections(0)
        assert layer0 and all(isinstance(s, np.ndarray) for s in layer0)
