"""Tests for rotary embeddings and YaRN extension."""

import numpy as np
import pytest

from repro.tensor import RotaryEmbedding, YarnConfig


def _rand(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestRotaryEmbedding:
    def test_norm_preserved(self):
        rope = RotaryEmbedding(dim=32, max_position=128)
        x = _rand((2, 10, 32))
        out = rope.apply(x, np.arange(10))
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-4
        )

    def test_position_zero_identity(self):
        rope = RotaryEmbedding(dim=16, max_position=8)
        x = _rand((1, 1, 16))
        out = rope.apply(x, np.array([0]))
        np.testing.assert_allclose(out, x, atol=1e-6)

    def test_relative_position_property(self):
        """q_i . k_j depends only on i - j."""
        rope = RotaryEmbedding(dim=32, max_position=256)
        q = _rand((1, 1, 32), seed=1)
        k = _rand((1, 1, 32), seed=2)
        dots = []
        for (i, j) in [(10, 4), (50, 44), (200, 194)]:
            qi = rope.apply(q, np.array([i]))
            kj = rope.apply(k, np.array([j]))
            dots.append(float(np.sum(qi * kj)))
        assert dots[0] == pytest.approx(dots[1], rel=1e-4)
        assert dots[0] == pytest.approx(dots[2], rel=1e-4)

    def test_self_dot_peaks_at_zero_offset(self):
        """The previous-token-head mechanism: same vector dotted across offsets."""
        rope = RotaryEmbedding(dim=64, max_position=512)
        u = np.ones((1, 1, 64), dtype=np.float32)
        base = rope.apply(u, np.array([100]))
        same = float(np.sum(base * rope.apply(u, np.array([100]))))
        for offset in (1, 2, 5, 50):
            other = float(np.sum(base * rope.apply(u, np.array([100 + offset]))))
            assert other < same

    def test_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(dim=7, max_position=16)

    def test_position_overflow_rejected(self):
        rope = RotaryEmbedding(dim=8, max_position=4)
        with pytest.raises(ValueError):
            rope.apply(_rand((1, 1, 8)), np.array([4]))

    def test_position_shape_mismatch_rejected(self):
        rope = RotaryEmbedding(dim=8, max_position=16)
        with pytest.raises(ValueError):
            rope.apply(_rand((1, 3, 8)), np.array([0, 1]))


class TestYarn:
    def test_no_scaling_matches_plain(self):
        plain = RotaryEmbedding(dim=16, max_position=64)
        yarn = RotaryEmbedding(
            dim=16, max_position=64, yarn=YarnConfig(scaling_factor=1.0)
        )
        x = _rand((1, 5, 16))
        np.testing.assert_allclose(
            plain.apply(x, np.arange(5)), yarn.apply(x, np.arange(5)), atol=1e-6
        )

    def test_attention_factor_grows_with_scale(self):
        small = YarnConfig(scaling_factor=2.0)
        big = YarnConfig(scaling_factor=16.0)
        assert 1.0 < small.attention_factor < big.attention_factor

    def test_extension_enables_long_positions(self):
        """A 2k-trained table extended 8x covers 16k positions (Sec. 4.3)."""
        yarn = YarnConfig(original_max_position=2048, scaling_factor=8.0)
        rope = RotaryEmbedding(dim=64, max_position=16384, yarn=yarn)
        x = _rand((1, 1, 64))
        out = rope.apply(x, np.array([16383]))
        assert np.isfinite(out).all()

    def test_low_frequencies_interpolated(self):
        """With YaRN, the slowest rotary frequency is slowed by ~the scale."""
        dim, base = 64, 10000.0
        plain = RotaryEmbedding(dim=dim, max_position=4096, base=base)
        yarn = RotaryEmbedding(
            dim=dim, max_position=4096, base=base,
            yarn=YarnConfig(original_max_position=512, scaling_factor=8.0),
        )
        # Slowest frequency = last column of the cos table's angle layout:
        # compare cos at a large position; interpolated table should be
        # closer to 1 (smaller accumulated angle).
        pos = 512
        plain_cos = plain._cos[pos, -1]
        yarn_cos = yarn._cos[pos, -1]
        assert yarn_cos > plain_cos

    def test_relative_property_preserved_under_yarn(self):
        yarn = YarnConfig(original_max_position=256, scaling_factor=4.0)
        rope = RotaryEmbedding(dim=32, max_position=1024, yarn=yarn)
        q = _rand((1, 1, 32), seed=3)
        k = _rand((1, 1, 32), seed=4)
        d1 = float(
            np.sum(rope.apply(q, np.array([100])) * rope.apply(k, np.array([90])))
        )
        d2 = float(
            np.sum(rope.apply(q, np.array([600])) * rope.apply(k, np.array([590])))
        )
        assert d1 == pytest.approx(d2, rel=1e-3)


class TestTableCache:
    def test_identical_params_hit_cache_and_share_tables(self):
        from repro.tensor import clear_rope_table_cache, rope_table_cache_info

        clear_rope_table_cache()
        a = RotaryEmbedding(dim=32, max_position=256)
        info = rope_table_cache_info()
        assert info["misses"] == 1 and info["hits"] == 0
        b = RotaryEmbedding(dim=32, max_position=256)
        info = rope_table_cache_info()
        assert info["hits"] == 1, "second identical construction must hit"
        # The tables are the same read-only arrays, not copies.
        assert a._cos is b._cos and a._sin is b._sin
        assert not a._cos.flags.writeable

    def test_distinct_params_are_distinct_entries(self):
        from repro.tensor import clear_rope_table_cache, rope_table_cache_info

        clear_rope_table_cache()
        RotaryEmbedding(dim=32, max_position=256)
        RotaryEmbedding(dim=32, max_position=512)
        RotaryEmbedding(dim=32, max_position=256, base=500000.0)
        RotaryEmbedding(
            dim=32,
            max_position=256,
            yarn=YarnConfig(original_max_position=128, scaling_factor=2.0),
        )
        RotaryEmbedding(dim=32, max_position=256, dtype=np.float64)
        assert rope_table_cache_info()["misses"] == 5
        assert rope_table_cache_info()["hits"] == 0

    def test_cached_tables_bit_identical_to_fresh_build(self):
        from repro.tensor import clear_rope_table_cache

        clear_rope_table_cache()
        first = RotaryEmbedding(dim=16, max_position=64)
        clear_rope_table_cache()
        rebuilt = RotaryEmbedding(dim=16, max_position=64)
        assert (first._cos == rebuilt._cos).all()
        assert (first._sin == rebuilt._sin).all()

    def test_decode_loop_reuses_tables(self):
        """Per-request head construction (the serving pattern) stays warm."""
        from repro.tensor import clear_rope_table_cache, rope_table_cache_info

        clear_rope_table_cache()
        for _ in range(8):
            RotaryEmbedding(dim=64, max_position=2048)
        assert rope_table_cache_info() == {"hits": 7, "misses": 1}
