"""The cluster benchmark harness is part of the tested surface: CI gates
on its affinity-gain number, so the report schema, the stream-identity
check and the gate's exit codes are pinned here."""

from __future__ import annotations

import importlib.util
import json
import pathlib

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "bench_cluster.py"
)
_spec = importlib.util.spec_from_file_location("bench_cluster", BENCH_PATH)
bench_cluster = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_cluster)


class TestBenchCluster:
    def run_bench(self, tmp_path, extra=()):
        out = tmp_path / "BENCH_cluster.json"
        rc = bench_cluster.main([
            "--replicas", "2", "--groups", "3", "--group-size", "3",
            "--system-len", "32", "--suffix-len", "8",
            "--max-new-tokens", "4", "--layers", "2", "--repeats", "1",
            "--block-size", "8", "--stickiness-tokens", "8",
            "--hot-group-size", "8",
            "--out", str(out), *extra,
        ])
        return rc, out

    def test_report_schema_and_identical_streams(self, tmp_path, capsys):
        rc, out = self.run_bench(tmp_path)
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "cluster_serving"
        assert report["streams_identical"] is True
        assert set(report["routers"]) == {
            "round_robin", "least_loaded", "prefix_affinity"
        }
        for entry in report["routers"].values():
            assert entry["n_replicas"] == 2
            assert entry["generated_tokens"] > 0
            assert sum(entry["per_replica"]["routed"]) == 9
            per = entry["per_replica"]
            assert (
                sum(per["affinity_hits"])
                + sum(per["affinity_misses"])
                + sum(per["cold"])
                == sum(per["routed"])
            )
            assert set(entry["ttft_ms"]) == {"mean", "p50", "p95"}
            assert entry["ttft_ms"]["p95"] >= entry["ttft_ms"]["p50"] > 0
            assert "token_streams" not in entry  # raw streams stay out
        affinity = report["routers"]["prefix_affinity"]
        assert affinity["affinity_hit_rate"] == 1.0
        assert affinity["prefix_reused_tokens"] > 0
        assert report["affinity_gain_prefix_tokens"] >= 1.0
        migration = report["migration"]
        assert set(migration["runs"]) == {"prefix_affinity", "rebalance"}
        assert migration["streams_identical"] is True
        assert migration["runs"]["prefix_affinity"]["migrations"] == 0
        assert migration["runs"]["rebalance"]["migrations"] >= 1
        assert migration["balance_gain"] > 0
        for entry in migration["runs"].values():
            assert entry["load_variance"] >= 0
            assert "token_streams" not in entry
        out_text = capsys.readouterr().out
        assert "prefix_affinity vs round_robin" in out_text
        assert "rebalance vs prefix_affinity" in out_text

    def test_gate_passes_and_fails(self, tmp_path, capsys):
        rc, _ = self.run_bench(tmp_path, extra=("--min-affinity-gain", "1.0"))
        assert rc == 0
        capsys.readouterr()
        rc, _ = self.run_bench(
            tmp_path, extra=("--min-affinity-gain", "1000")
        )
        assert rc == 1
        assert "below required" in capsys.readouterr().err

    def test_balance_gate_passes_and_fails(self, tmp_path, capsys):
        rc, out = self.run_bench(
            tmp_path, extra=("--min-balance-gain", "1.0")
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["migration"]["balance_gain"] >= 1.0
        capsys.readouterr()
        rc, _ = self.run_bench(
            tmp_path, extra=("--min-balance-gain", "1000")
        )
        assert rc == 1
        assert "balance gain" in capsys.readouterr().err

    def test_smoke_flag_shrinks_workload(self, tmp_path):
        out = tmp_path / "BENCH_cluster.json"
        rc = bench_cluster.main([
            "--smoke", "--repeats", "1", "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["smoke"] is True
        assert report["workload"]["replicas"] <= 3
        assert report["workload"]["system_len"] <= 64
